//! Pins the known ablation quirk documented in CHANGES.md (PR 2) and the
//! `correlated_sensors` example: on the skewed perfmon workload, the
//! whole-space AugmentedGrid-only ablation degenerates to (almost) a full
//! scan at every configuration — correlation-aware partitioning alone cannot
//! fix query skew, which is §4's motivation for the Grid Tree. This test
//! asserts the *documented* behavior so that a future optimizer change that
//! fixes (or worsens) it shows up as a deliberate test update, not a silent
//! drift.

use tsunami_core::TsunamiError;
use tsunami_index::{IndexVariant, TsunamiConfig};
use tsunami_suite::{Database, IndexSpec, Table};
use tsunami_workloads::perfmon;

fn avg_scanned(table: &Table, workload: &tsunami_core::Workload) -> Result<f64, TsunamiError> {
    let mut total = 0usize;
    for q in workload.queries() {
        total += table.execute_with_stats(q)?.1.points_scanned;
    }
    Ok(total as f64 / workload.len().max(1) as f64)
}

#[test]
fn augmented_grid_only_degenerates_to_a_full_scan_on_skewed_perfmon() -> Result<(), TsunamiError> {
    let rows = 12_000;
    let data = perfmon::generate(rows, 11);
    let workload = perfmon::workload(&data, 10, 12);

    let config = TsunamiConfig::fast();
    let mut db = Database::new();
    db.create_table(
        "ag_only",
        &perfmon::COLUMNS,
        data.clone(),
        &workload,
        &IndexSpec::Tsunami(config.clone().with_variant(IndexVariant::AugmentedGridOnly)),
    )?;
    db.create_table(
        "full",
        &perfmon::COLUMNS,
        data,
        &workload,
        &IndexSpec::Tsunami(config),
    )?;

    let ag_only = avg_scanned(&db.table("ag_only")?, &workload)?;
    let full = avg_scanned(&db.table("full")?, &workload)?;

    // The documented quirk: the whole-space Augmented Grid scans (nearly)
    // everything on this workload...
    assert!(
        ag_only > 0.9 * rows as f64,
        "AugmentedGrid-only no longer degenerates on skewed perfmon \
         ({ag_only:.0} of {rows} points/query) — the quirk documented in \
         CHANGES.md has changed; update the docs and this pin together"
    );
    // ...while full Tsunami's Grid-Tree regions cut the scan volume to a
    // fraction of it on the same data and workload.
    assert!(
        full < 0.5 * ag_only,
        "full Tsunami ({full:.0} points/query) no longer clearly beats the \
         AugmentedGrid-only ablation ({ag_only:.0}) on skewed perfmon"
    );
    Ok(())
}
