//! Property-style integration tests: seeded random datasets, random
//! workloads, random queries — every index must agree with the full-scan
//! oracle, and core structural invariants must hold.
//!
//! The container has no crates.io access, so instead of `proptest` these
//! tests drive the same invariants with an explicit seed loop (deterministic,
//! and the failing seed is part of every assertion message).

use tsunami_cdf::{CdfModel, Ecdf, FunctionalMapping, HistogramCdf, Rmi};
use tsunami_core::sample::SplitMix;
use tsunami_core::{CostModel, Dataset, Predicate, Query, Workload};
use tsunami_flood::FloodConfig;
use tsunami_index::TsunamiConfig;
use tsunami_suite::{IndexSpec, PageSize};

/// A small random dataset with 2-4 dimensions, where dimension 1 (when
/// present) is correlated with dimension 0.
fn random_dataset(rng: &mut SplitMix) -> Dataset {
    let dims = 2 + rng.next_below(3) as usize;
    let rows = 50 + rng.next_below(350) as usize;
    let base: Vec<u64> = (0..rows).map(|_| rng.next_below(10_000)).collect();
    let mut cols: Vec<Vec<u64>> = vec![base.clone()];
    for d in 1..dims {
        if d == 1 {
            // Correlated with dimension 0.
            cols.push(base.iter().map(|&v| v * 3 + rng.next_below(100)).collect());
        } else {
            cols.push((0..rows).map(|_| rng.next_below(10_000)).collect());
        }
    }
    Dataset::from_columns(cols).unwrap()
}

/// A random conjunctive range query over up to 3 dimensions. Draws whose
/// same-dimension predicates have an empty intersection degrade to an
/// unfiltered query rather than failing.
fn random_query(rng: &mut SplitMix, dims: usize) -> Query {
    let n_preds = rng.next_below(3) as usize;
    let preds = (0..n_preds)
        .map(|_| {
            let d = rng.next_below(dims as u64) as usize;
            let a = rng.next_below(40_000);
            let b = rng.next_below(40_000);
            Predicate::range(d, a.min(b), a.max(b)).unwrap()
        })
        .collect();
    Query::count(preds).unwrap_or_else(|_| Query::count(vec![]).unwrap())
}

#[test]
fn all_indexes_agree_with_oracle_on_random_data() {
    for seed in 0..24u64 {
        let mut rng = SplitMix::new(seed * 1_000 + 17);
        let data = random_dataset(&mut rng);
        let dims = data.num_dims();
        // A small deterministic workload for optimization.
        let workload = Workload::new(
            (0..8u64)
                .map(|i| {
                    let lo = seed.wrapping_mul(i + 1) % 8_000;
                    Query::count(vec![
                        Predicate::range((i as usize) % dims, lo, lo + 2_000).unwrap()
                    ])
                    .unwrap()
                })
                .collect(),
        );
        let cost = CostModel::default();
        let specs = [
            IndexSpec::Tsunami(TsunamiConfig::fast()),
            IndexSpec::Flood(FloodConfig::fast()),
            IndexSpec::KdTree(PageSize::Fixed(64)),
            IndexSpec::ZOrder(PageSize::Fixed(64)),
            IndexSpec::Octree(PageSize::Fixed(64)),
        ];
        let indexes: Vec<_> = specs
            .iter()
            .map(|spec| (spec.label(), spec.build(&data, &workload, &cost).unwrap()))
            .collect();

        for q in workload.queries() {
            let expected = q.execute_full_scan(&data);
            for (label, index) in &indexes {
                assert_eq!(index.execute(q), expected, "{label} seed {seed} {q:?}");
            }
        }
    }
}

#[test]
fn tsunami_answers_arbitrary_queries_correctly() {
    for seed in 0..12u64 {
        let mut rng = SplitMix::new(seed * 7_919 + 3);
        let data = random_dataset(&mut rng);
        let workload = Workload::new(
            (0..6u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(0, i * 1000, i * 1000 + 3000).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        let index = IndexSpec::Tsunami(TsunamiConfig::fast())
            .build(&data, &workload, &CostModel::default())
            .unwrap();
        for _ in 0..6 {
            let q = random_query(&mut rng, 2);
            assert_eq!(
                index.execute(&q),
                q.execute_full_scan(&data),
                "seed {seed} {q:?}"
            );
        }
    }
}

#[test]
fn cdf_models_are_monotone_and_bounded() {
    for seed in 0..16u64 {
        let mut rng = SplitMix::new(seed * 31 + 5);
        let n = 2 + rng.next_below(498) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
        let ecdf = Ecdf::new(&values);
        let hist = HistogramCdf::build(&values, 32);
        let rmi = Rmi::build(&values, 16);
        let mut probes: Vec<u64> = values.clone();
        probes.push(0);
        probes.push(u64::MAX / 2);
        probes.sort_unstable();
        for model in [&ecdf as &dyn CdfModel, &hist, &rmi] {
            let mut prev = -1.0f64;
            for &v in &probes {
                let c = model.cdf(v);
                assert!((0.0..=1.0).contains(&c), "seed {seed}: cdf({v}) = {c}");
                assert!(
                    c >= prev - 0.05,
                    "seed {seed}: CDF decreased: {c} after {prev}"
                );
                prev = prev.max(c);
            }
        }
    }
}

#[test]
fn functional_mapping_containment_holds_on_random_correlated_pairs() {
    for seed in 0..20u64 {
        let mut rng = SplitMix::new(seed * 101 + 9);
        let rows = 10 + rng.next_below(290) as usize;
        let slope = 1 + rng.next_below(4);
        let noise = 1 + rng.next_below(499);
        let ys: Vec<u64> = (0..rows).map(|_| rng.next_below(100_000)).collect();
        let xs: Vec<u64> = ys
            .iter()
            .map(|&y| y * slope + rng.next_below(noise))
            .collect();
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        // Any training point inside a queried Y range must fall inside the
        // mapped X range.
        let y_lo = rng.next_below(100_000);
        let y_hi = y_lo + rng.next_below(20_000);
        let (x_lo, x_hi) = fm.map_range(y_lo, y_hi);
        for i in 0..rows {
            if ys[i] >= y_lo && ys[i] <= y_hi {
                assert!(
                    xs[i] >= x_lo && xs[i] <= x_hi,
                    "seed {seed}: x={} outside mapped [{x_lo}, {x_hi}]",
                    xs[i]
                );
            }
        }
    }
}

#[test]
fn equi_depth_partitions_are_balanced() {
    for seed in 0..16u64 {
        let mut rng = SplitMix::new(seed * 977 + 1);
        let n = 64 + rng.next_below(536) as usize;
        let values: Vec<u64> = (0..n).map(|_| rng.next_below(100_000)).collect();
        let model = HistogramCdf::build(&values, 8);
        let mut counts = vec![0usize; model.num_buckets()];
        for &v in &values {
            counts[model.bucket_of(v)] += 1;
        }
        // No bucket may hold more than ~4x its fair share (ties can force
        // imbalance, but gross imbalance would defeat the design).
        let fair = values.len() / model.num_buckets();
        for &c in &counts {
            assert!(
                c <= fair * 4 + 8,
                "seed {seed}: bucket with {c} of {} values",
                values.len()
            );
        }
    }
}
