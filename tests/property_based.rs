//! Property-based integration tests (proptest): random datasets, random
//! workloads, random queries — every index must agree with the full-scan
//! oracle, and core structural invariants must hold.

use proptest::prelude::*;

use tsunami_baselines::{HyperOctree, KdTree, ZOrderIndex};
use tsunami_cdf::{CdfModel, Ecdf, FunctionalMapping, HistogramCdf, Rmi};
use tsunami_core::{CostModel, Dataset, MultiDimIndex, Predicate, Query, Workload};
use tsunami_flood::FloodIndex;
use tsunami_index::{TsunamiConfig, TsunamiIndex};

/// Strategy: a small random dataset with 2-4 dimensions, where dimension 1
/// (when present) is correlated with dimension 0.
fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..=4, 50usize..400, any::<u64>()).prop_map(|(dims, rows, seed)| {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut cols: Vec<Vec<u64>> = Vec::new();
        let base: Vec<u64> = (0..rows).map(|_| next() % 10_000).collect();
        cols.push(base.clone());
        for d in 1..dims {
            if d == 1 {
                // Correlated with dimension 0.
                cols.push(base.iter().map(|&v| v * 3 + next() % 100).collect());
            } else {
                cols.push((0..rows).map(|_| next() % 10_000).collect());
            }
        }
        Dataset::from_columns(cols).unwrap()
    })
}

/// Strategy: a random conjunctive range query over up to 3 dimensions.
///
/// Two random predicates on the same dimension can have an empty
/// intersection, which `Query::new` rejects; such draws degrade to an
/// unfiltered query rather than failing the strategy.
fn query_strategy(dims: usize) -> impl Strategy<Value = Query> {
    proptest::collection::vec((0usize..dims, 0u64..40_000, 0u64..40_000), 0..3).prop_map(|preds| {
        let preds = preds
            .into_iter()
            .map(|(d, a, b)| Predicate::range(d, a.min(b), a.max(b)).unwrap())
            .collect();
        Query::count(preds).unwrap_or_else(|_| Query::count(vec![]).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_indexes_agree_with_oracle_on_random_data(
        data in dataset_strategy(),
        seed in any::<u64>(),
    ) {
        let dims = data.num_dims();
        // A small deterministic workload for optimization.
        let workload = Workload::new(
            (0..8u64)
                .map(|i| {
                    let lo = (seed.wrapping_mul(i + 1)) % 8_000;
                    Query::count(vec![Predicate::range((i as usize) % dims, lo, lo + 2_000).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        let cost = CostModel::default();
        let tsunami = TsunamiIndex::build_with_cost(&data, &workload, &cost, &TsunamiConfig::fast()).unwrap();
        let flood = FloodIndex::build(&data, &workload, &cost, &tsunami_flood::FloodConfig::fast());
        let kd = KdTree::build(&data, &workload, 64);
        let z = ZOrderIndex::build(&data, &workload, 64);
        let oct = HyperOctree::build(&data, &workload, 64);

        for q in workload.queries() {
            let expected = q.execute_full_scan(&data);
            prop_assert_eq!(tsunami.execute(q), expected, "tsunami");
            prop_assert_eq!(flood.execute(q), expected, "flood");
            prop_assert_eq!(kd.execute(q), expected, "kdtree");
            prop_assert_eq!(z.execute(q), expected, "zorder");
            prop_assert_eq!(oct.execute(q), expected, "octree");
        }
    }

    #[test]
    fn tsunami_answers_arbitrary_queries_correctly(
        data in dataset_strategy(),
        queries in proptest::collection::vec(query_strategy(2), 1..6),
    ) {
        let workload = Workload::new(
            (0..6u64)
                .map(|i| Query::count(vec![Predicate::range(0, i * 1000, i * 1000 + 3000).unwrap()]).unwrap())
                .collect(),
        );
        let index = TsunamiIndex::build_with_cost(
            &data, &workload, &CostModel::default(), &TsunamiConfig::fast()).unwrap();
        for q in &queries {
            prop_assert_eq!(index.execute(q), q.execute_full_scan(&data));
        }
    }

    #[test]
    fn cdf_models_are_monotone_and_bounded(values in proptest::collection::vec(0u64..1_000_000, 2..500)) {
        let ecdf = Ecdf::new(&values);
        let hist = HistogramCdf::build(&values, 32);
        let rmi = Rmi::build(&values, 16);
        let mut probes: Vec<u64> = values.clone();
        probes.push(0);
        probes.push(u64::MAX / 2);
        probes.sort_unstable();
        for model in [&ecdf as &dyn CdfModel, &hist, &rmi] {
            let mut prev = -1.0f64;
            for &v in &probes {
                let c = model.cdf(v);
                prop_assert!((0.0..=1.0).contains(&c));
                prop_assert!(c >= prev - 0.05, "CDF decreased: {} after {}", c, prev);
                prev = prev.max(c);
            }
        }
    }

    #[test]
    fn functional_mapping_containment_holds_on_random_correlated_pairs(
        rows in 10usize..300,
        slope in 1u64..5,
        noise in 1u64..500,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let ys: Vec<u64> = (0..rows).map(|_| next() % 100_000).collect();
        let xs: Vec<u64> = ys.iter().map(|&y| y * slope + next() % noise).collect();
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        // Any training point inside a queried Y range must fall inside the
        // mapped X range.
        let y_lo = next() % 100_000;
        let y_hi = y_lo + next() % 20_000;
        let (x_lo, x_hi) = fm.map_range(y_lo, y_hi);
        for i in 0..rows {
            if ys[i] >= y_lo && ys[i] <= y_hi {
                prop_assert!(xs[i] >= x_lo && xs[i] <= x_hi);
            }
        }
    }

    #[test]
    fn equi_depth_partitions_are_balanced(values in proptest::collection::vec(0u64..100_000, 64..600)) {
        let p = 8;
        let model = HistogramCdf::build(&values, p);
        let mut counts = vec![0usize; model.num_buckets()];
        for &v in &values {
            counts[model.bucket_of(v)] += 1;
        }
        // No bucket may hold more than ~4x its fair share (ties can force
        // imbalance, but gross imbalance would defeat the design).
        let fair = values.len() / model.num_buckets();
        for &c in &counts {
            prop_assert!(c <= fair * 4 + 8, "bucket with {} of {} values", c, values.len());
        }
    }
}
