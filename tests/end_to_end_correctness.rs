//! Cross-crate integration tests: every index in the workspace must return
//! exactly the same results as the full-scan oracle on every generated
//! dataset/workload bundle.

use tsunami_baselines::{ClusteredSingleDimIndex, FullScanIndex, HyperOctree, KdTree, ZOrderIndex};
use tsunami_core::{CostModel, MultiDimIndex, Workload};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{TsunamiConfig, TsunamiIndex};
use tsunami_workloads::DatasetBundle;

fn small_bundles() -> Vec<DatasetBundle> {
    DatasetBundle::standard(4_000, 4, 1234)
}

fn tsunami_config() -> TsunamiConfig {
    TsunamiConfig::fast()
}

#[test]
fn every_index_agrees_with_the_oracle_on_every_bundle() {
    let cost = CostModel::default();
    for bundle in small_bundles() {
        let data = &bundle.data;
        let workload = &bundle.workload;

        let indexes: Vec<Box<dyn MultiDimIndex>> = vec![
            Box::new(
                TsunamiIndex::build_with_cost(data, workload, &cost, &tsunami_config()).unwrap(),
            ),
            Box::new(FloodIndex::build(
                data,
                workload,
                &cost,
                &FloodConfig::fast(),
            )),
            Box::new(ClusteredSingleDimIndex::build(data, workload)),
            Box::new(ZOrderIndex::build(data, workload, 512)),
            Box::new(HyperOctree::build(data, workload, 512)),
            Box::new(KdTree::build(data, workload, 512)),
            Box::new(FullScanIndex::build(data)),
        ];

        for q in workload.queries() {
            let expected = q.execute_full_scan(data);
            for index in &indexes {
                assert_eq!(
                    index.execute(q),
                    expected,
                    "{} disagrees with the oracle on {} for {q:?}",
                    index.name(),
                    bundle.name
                );
            }
        }
    }
}

#[test]
fn learned_indexes_scan_fewer_points_than_full_scan() {
    let cost = CostModel::default();
    for bundle in small_bundles() {
        let data = &bundle.data;
        let workload = &bundle.workload;
        let tsunami =
            TsunamiIndex::build_with_cost(data, workload, &cost, &tsunami_config()).unwrap();
        let flood = FloodIndex::build(data, workload, &cost, &FloodConfig::fast());

        let avg_scanned = |index: &dyn MultiDimIndex| -> f64 {
            let mut total = 0usize;
            for q in workload.queries() {
                let (_, stats) = index.execute_with_stats(q);
                total += stats.points_scanned;
            }
            total as f64 / workload.len() as f64
        };
        let t = avg_scanned(&tsunami);
        let f = avg_scanned(&flood);
        let full = data.len() as f64;
        assert!(
            t < full,
            "{}: Tsunami scans everything ({t} of {full})",
            bundle.name
        );
        assert!(
            f < full,
            "{}: Flood scans everything ({f} of {full})",
            bundle.name
        );
    }
}

#[test]
fn index_sizes_exclude_data_and_stay_below_data_size() {
    // The learned index structures (cell tables, CDF models, tree nodes)
    // must stay well below the size of the data they index. The fast test
    // config still allocates thousands of cells, so we check at a scale where
    // the data is comfortably larger than those fixed layout overheads; at
    // benchmark scale the gap is orders of magnitude (Fig 8).
    let cost = CostModel::default();
    let bundle = DatasetBundle::standard(16_000, 4, 1234).remove(0);
    let data_bytes = bundle.data.len() * bundle.data.num_dims() * 8;

    let tsunami =
        TsunamiIndex::build_with_cost(&bundle.data, &bundle.workload, &cost, &tsunami_config())
            .unwrap();
    let flood = FloodIndex::build(&bundle.data, &bundle.workload, &cost, &FloodConfig::fast());

    assert!(
        tsunami.size_bytes() < data_bytes,
        "Tsunami index ({}) should be smaller than the data ({data_bytes})",
        tsunami.size_bytes()
    );
    assert!(
        flood.size_bytes() < data_bytes,
        "Flood index ({}) should be smaller than the data ({data_bytes})",
        flood.size_bytes()
    );
}

#[test]
fn indexes_handle_queries_outside_the_trained_workload() {
    use tsunami_core::{Predicate, Query};
    let cost = CostModel::default();
    let bundle = &small_bundles()[1]; // Taxi-like
    let data = &bundle.data;
    let index =
        TsunamiIndex::build_with_cost(data, &bundle.workload, &cost, &tsunami_config()).unwrap();

    // Queries with filter shapes never seen during optimization.
    let unseen = vec![
        Query::count(vec![Predicate::range(3, 0, 100_000).unwrap()]).unwrap(),
        Query::count(vec![
            Predicate::range(0, 0, 1_000_000).unwrap(),
            Predicate::range(8, 5, 200).unwrap(),
        ])
        .unwrap(),
        Query::count(vec![Predicate::eq(6, 4)]).unwrap(),
        Query::count(vec![]).unwrap(),
    ];
    for q in &unseen {
        assert_eq!(index.execute(q), q.execute_full_scan(data), "{q:?}");
    }
}

#[test]
fn empty_workload_build_still_answers_queries() {
    let bundle = &small_bundles()[2];
    let index = TsunamiIndex::build_with_cost(
        &bundle.data,
        &Workload::default(),
        &CostModel::default(),
        &tsunami_config(),
    )
    .unwrap();
    for q in bundle.workload.queries().iter().take(5) {
        assert_eq!(index.execute(q), q.execute_full_scan(&bundle.data));
    }
}
