//! Cross-crate integration tests, driven through the `tsunami-engine`
//! facade: every index family in the workspace, registered as a database
//! table, must return exactly the same results as the full-scan oracle on
//! every generated dataset/workload bundle.

use tsunami_core::{TsunamiError, Workload};
use tsunami_flood::FloodConfig;
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec};
use tsunami_workloads::DatasetBundle;

fn small_bundles() -> Vec<DatasetBundle> {
    DatasetBundle::standard(4_000, 4, 1234)
}

fn database_for(bundle: &DatasetBundle) -> Database {
    let mut db = Database::new();
    for spec in IndexSpec::all_fast() {
        db.create_table(
            spec.label(),
            &bundle.columns,
            bundle.data.clone(),
            &bundle.workload,
            &spec,
        )
        .expect("table builds");
    }
    db
}

#[test]
fn every_index_agrees_with_the_oracle_on_every_bundle() {
    for bundle in small_bundles() {
        let db = database_for(&bundle);
        assert_eq!(db.num_tables(), 7);
        for q in bundle.workload.queries() {
            let expected = q.execute_full_scan(&bundle.data);
            for table in db.tables() {
                assert_eq!(
                    table.execute(q).unwrap(),
                    expected,
                    "{} disagrees with the oracle on {} for {q:?}",
                    table.name(),
                    bundle.name
                );
            }
        }
    }
}

#[test]
fn learned_indexes_scan_fewer_points_than_full_scan() {
    for bundle in small_bundles() {
        let db = database_for(&bundle);
        let avg_scanned = |name: &str| -> f64 {
            let table = db.table(name).unwrap();
            let prepared = table.prepare_workload(&bundle.workload).unwrap();
            let total: usize = prepared
                .iter()
                .map(|q| q.execute_with_stats().1.points_scanned)
                .sum();
            total as f64 / prepared.len() as f64
        };
        let t = avg_scanned("Tsunami");
        let f = avg_scanned("Flood");
        let full = bundle.data.len() as f64;
        assert!(
            t < full,
            "{}: Tsunami scans everything ({t} of {full})",
            bundle.name
        );
        assert!(
            f < full,
            "{}: Flood scans everything ({f} of {full})",
            bundle.name
        );
    }
}

#[test]
fn index_sizes_exclude_data_and_stay_below_data_size() {
    // The learned index structures (cell tables, CDF models, tree nodes)
    // must stay well below the size of the data they index. The fast test
    // config still allocates thousands of cells, so we check at a scale where
    // the data is comfortably larger than those fixed layout overheads; at
    // benchmark scale the gap is orders of magnitude (Fig 8).
    let bundle = DatasetBundle::standard(16_000, 4, 1234).remove(0);
    let data_bytes = bundle.data.len() * bundle.data.num_dims() * 8;

    let mut db = Database::new();
    for spec in [
        IndexSpec::Tsunami(TsunamiConfig::fast()),
        IndexSpec::Flood(FloodConfig::fast()),
    ] {
        db.create_table(
            spec.label(),
            &bundle.columns,
            bundle.data.clone(),
            &bundle.workload,
            &spec,
        )
        .unwrap();
    }
    for table in db.tables() {
        assert!(
            table.index().size_bytes() < data_bytes,
            "{} index ({}) should be smaller than the data ({data_bytes})",
            table.name(),
            table.index().size_bytes()
        );
    }
}

#[test]
fn indexes_handle_queries_outside_the_trained_workload() {
    let bundle = &small_bundles()[1]; // Taxi-like, 9 dims.
    let mut db = Database::new();
    let table = db
        .create_table(
            "taxi",
            &bundle.columns,
            bundle.data.clone(),
            &bundle.workload,
            &IndexSpec::Tsunami(TsunamiConfig::fast()),
        )
        .unwrap();

    // Queries with filter shapes never seen during optimization, built
    // through the fluent API against real column names.
    let unseen = vec![
        table.query().range("trip_distance", 0, 100_000).unwrap(),
        table
            .query()
            .range("pickup_time", 0, 1_000_000)
            .unwrap()
            .range("dropoff_zone", 5, 200)
            .unwrap(),
        table.query().eq("passenger_count", 4).unwrap(),
        table.query(),
    ];
    for builder in unseen {
        let q = builder.prepare().unwrap();
        assert_eq!(q.execute(), q.execute_oracle(), "{q:?}");
    }
}

#[test]
fn empty_workload_build_still_answers_queries() {
    let bundle = &small_bundles()[2];
    let mut db = Database::new();
    let table = db
        .create_table(
            "t",
            &bundle.columns,
            bundle.data.clone(),
            &Workload::default(),
            &IndexSpec::Tsunami(TsunamiConfig::fast()),
        )
        .unwrap();
    for q in bundle.workload.queries().iter().take(5) {
        assert_eq!(table.execute(q).unwrap(), q.execute_full_scan(&bundle.data));
    }
}

#[test]
fn facade_rejects_malformed_queries_at_the_boundary() {
    let bundle = &small_bundles()[0];
    let mut db = Database::new();
    let table = db
        .create_table(
            "lineitem",
            &bundle.columns,
            bundle.data.clone(),
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();

    assert!(matches!(
        table.query().range("no_such_column", 0, 1).err(),
        Some(TsunamiError::UnknownColumn(_))
    ));
    assert!(matches!(
        table.query().sum(99usize).err(),
        Some(TsunamiError::DimensionOutOfBounds { dim: 99, .. })
    ));
    assert!(matches!(
        table.query().range(0usize, 10, 2).err(),
        Some(TsunamiError::InvalidPredicate { .. })
    ));
    assert!(matches!(
        db.table("no_such_table").err(),
        Some(TsunamiError::UnknownTable(_))
    ));
}
