//! Wire-protocol coverage: a seeded round-trip property loop over every
//! request/response variant, rejection of truncated/oversized/garbage
//! frames, and a multi-client loopback differential asserting sharded
//! results bit-identical to an unsharded `Database` for all five
//! aggregations, through ingest.

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use tsunami_core::sample::SplitMix;
use tsunami_core::{AggResult, Aggregation, Dataset, Point, Predicate, Query, Workload};
use tsunami_engine::{Database, IndexSpec, ShardedDatabase};
use tsunami_server::protocol::{
    read_frame, write_frame, FrameError, FrameRead, WireError, DEFAULT_MAX_FRAME,
};
use tsunami_server::{
    transient_connect_error, Client, ClientConfig, ClientError, Request, Response, Server,
    ServerConfig,
};

fn arbitrary_aggregation(rng: &mut SplitMix) -> Aggregation {
    let dim = rng.next_below(64) as usize;
    match rng.next_below(5) {
        0 => Aggregation::Count,
        1 => Aggregation::Sum(dim),
        2 => Aggregation::Min(dim),
        3 => Aggregation::Max(dim),
        _ => Aggregation::Avg(dim),
    }
}

fn arbitrary_string(rng: &mut SplitMix) -> String {
    let len = rng.next_below(20) as usize;
    (0..len)
        .map(|_| char::from(b'a' + rng.next_below(26) as u8))
        .collect()
}

fn arbitrary_request(rng: &mut SplitMix) -> Request {
    match rng.next_below(3) {
        0 => {
            let n = rng.next_below(6) as usize;
            let predicates = (0..n)
                .map(|_| {
                    let lo = rng.next_u64();
                    // Unvalidated on the wire: inverted ranges must survive
                    // transport so the server can reject them semantically.
                    Predicate {
                        dim: rng.next_below(64) as usize,
                        lo,
                        hi: lo.wrapping_add(rng.next_below(1 << 20)),
                    }
                })
                .collect();
            Request::Query {
                table: arbitrary_string(rng),
                predicates,
                aggregation: arbitrary_aggregation(rng),
            }
        }
        1 => {
            let cols = 1 + rng.next_below(6) as usize;
            let n = rng.next_below(10) as usize;
            let rows = (0..n)
                .map(|_| (0..cols).map(|_| rng.next_u64()).collect::<Point>())
                .collect();
            Request::Insert {
                table: arbitrary_string(rng),
                rows,
            }
        }
        _ => Request::Ping,
    }
}

fn arbitrary_response(rng: &mut SplitMix) -> Response {
    let opt = |rng: &mut SplitMix| {
        if rng.next_below(4) == 0 {
            None
        } else {
            Some(rng.next_u64())
        }
    };
    match rng.next_below(4) {
        0 => Response::Result(match rng.next_below(5) {
            0 => AggResult::Count(rng.next_u64()),
            1 => AggResult::Sum((rng.next_u64() as u128) << 64 | rng.next_u64() as u128),
            2 => AggResult::Min(opt(rng)),
            3 => AggResult::Max(opt(rng)),
            _ => AggResult::Avg(opt(rng).map(|v| v as f64 / 7.0)),
        }),
        1 => Response::Error {
            code: rng.next_below(u16::MAX as u64 + 1) as u16,
            message: arbitrary_string(rng),
        },
        2 => Response::Pong,
        _ => Response::Inserted(rng.next_u64()),
    }
}

#[test]
fn every_message_variant_round_trips_through_its_frame() {
    let mut rng = SplitMix::new(0xf2a3e);
    let (mut saw_query, mut saw_insert, mut saw_ping) = (false, false, false);
    for _ in 0..500 {
        let request = arbitrary_request(&mut rng);
        match request {
            Request::Query { .. } => saw_query = true,
            Request::Insert { .. } => saw_insert = true,
            Request::Ping => saw_ping = true,
        }
        let payload = request.encode().unwrap();
        assert_eq!(Request::decode(&payload).unwrap(), request);
        // Through the framed transport too.
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        match read_frame(&mut &buf[..], DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, payload),
            FrameRead::Eof => panic!("lost the frame"),
        }

        let response = arbitrary_response(&mut rng);
        let payload = response.encode().unwrap();
        assert_eq!(Response::decode(&payload).unwrap(), response);
    }
    assert!(saw_query && saw_insert && saw_ping, "variant coverage hole");
}

#[test]
fn truncated_frames_are_rejected_at_every_cut_point() {
    let request = Request::Query {
        table: "trips".to_string(),
        predicates: vec![Predicate::range(0, 5, 10).unwrap()],
        aggregation: Aggregation::Avg(1),
    };
    let payload = request.encode().unwrap();
    for cut in 0..payload.len() {
        let err = Request::decode(&payload[..cut]).unwrap_err();
        assert!(
            matches!(err, WireError::Truncated),
            "cut at {cut} gave {err:?}"
        );
    }
    let response = Response::Result(AggResult::Sum(u128::MAX - 3));
    let payload = response.encode().unwrap();
    for cut in 0..payload.len() {
        assert!(Response::decode(&payload[..cut]).is_err(), "cut at {cut}");
    }
}

#[test]
fn garbage_and_oversized_frames_are_rejected() {
    // Deterministic garbage payloads: decoding must error, never panic or
    // silently accept.
    let mut rng = SplitMix::new(77);
    let mut rejected = 0;
    for _ in 0..300 {
        let len = rng.next_below(64) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        if Request::decode(&bytes).is_err() {
            rejected += 1;
        }
    }
    // Random bytes occasionally spell a valid tiny message (e.g. a Ping);
    // near-all must be rejected.
    assert!(
        rejected >= 295,
        "only {rejected}/300 garbage frames rejected"
    );

    // An oversized length prefix fails before the payload is read.
    let mut buf = Vec::new();
    buf.extend(((DEFAULT_MAX_FRAME + 1) as u32).to_be_bytes());
    assert!(matches!(
        read_frame(&mut &buf[..], DEFAULT_MAX_FRAME),
        Err(FrameError::Oversized { .. })
    ));
}

fn test_dataset(n: u64) -> Dataset {
    Dataset::from_columns(vec![
        (0..n).collect(),
        (0..n).map(|v| v.wrapping_mul(13) % 997).collect(),
        (0..n).map(|v| v / 3).collect(),
    ])
    .unwrap()
}

fn all_aggregations(dim: usize) -> [Aggregation; 5] {
    [
        Aggregation::Count,
        Aggregation::Sum(dim),
        Aggregation::Min(dim),
        Aggregation::Max(dim),
        Aggregation::Avg(dim),
    ]
}

/// The satellite differential: several clients hammer a K=4 sharded server
/// concurrently, every response is compared bit-for-bit against an
/// unsharded `Database` over the same rows, for all five aggregations —
/// then again after rows arrive over the wire.
#[test]
fn multi_client_sharded_results_match_unsharded_through_ingest() {
    let data = test_dataset(4_000);
    let columns = ["a", "b", "c"];
    let spec = IndexSpec::FullScan;

    let mut oracle = Database::new();
    oracle
        .create_table("t", &columns, data.clone(), &Workload::default(), &spec)
        .unwrap();

    let mut sharded = ShardedDatabase::new(4);
    sharded
        .create_table("t", &columns, &data, &Workload::default(), &spec)
        .unwrap();
    let db = Arc::new(RwLock::new(sharded));
    let mut server = Server::spawn(Arc::clone(&db), ServerConfig::default()).unwrap();
    let addr = server.addr();

    let check_clients = |oracle: &Database| {
        let solo = oracle.table("t").unwrap();
        std::thread::scope(|scope| {
            for client_id in 0..4u64 {
                let solo = solo.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let mut rng = SplitMix::new(0xc11e47 + client_id);
                    for _ in 0..25 {
                        let dim = rng.next_below(3) as usize;
                        let lo = rng.next_below(4_000);
                        let hi = lo + rng.next_below(2_000);
                        let preds = vec![Predicate::range(0, lo, hi).unwrap()];
                        for agg in all_aggregations(dim) {
                            let expected = solo
                                .execute(&Query::new(preds.clone(), agg).unwrap())
                                .unwrap();
                            let got = client.query("t", preds.clone(), agg).unwrap();
                            assert_eq!(got, expected, "client {client_id} diverged on {agg:?}");
                        }
                    }
                });
            }
        });
    };

    check_clients(&oracle);

    // Ingest over the wire, mirror into the oracle, re-check.
    let extra: Vec<Point> = (4_000u64..4_500)
        .map(|v| vec![v, v.wrapping_mul(13) % 997, v / 3])
        .collect();
    let mut writer = Client::connect(addr).unwrap();
    assert_eq!(writer.insert("t", extra.clone()).unwrap(), 500);
    oracle.insert_batch("t", &extra).unwrap();
    assert_eq!(db.read().unwrap().num_rows("t").unwrap(), 4_500);

    check_clients(&oracle);

    server.shutdown();
}

#[test]
fn semantic_errors_come_back_typed_and_the_connection_survives() {
    let data = test_dataset(100);
    let mut sharded = ShardedDatabase::new(2);
    sharded
        .create_table(
            "t",
            &["a", "b", "c"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
    let mut server =
        Server::spawn(Arc::new(RwLock::new(sharded)), ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // Unknown table.
    match client.query("missing", vec![], Aggregation::Count) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, tsunami_server::protocol::code::UNKNOWN_TABLE)
        }
        other => panic!("expected UNKNOWN_TABLE, got {other:?}"),
    }
    // Out-of-bounds aggregation dimension.
    match client.query("t", vec![], Aggregation::Sum(9)) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, tsunami_server::protocol::code::INVALID_QUERY)
        }
        other => panic!("expected INVALID_QUERY, got {other:?}"),
    }
    // Inverted range survives the wire and is rejected semantically.
    match client.query(
        "t",
        vec![Predicate {
            dim: 0,
            lo: 9,
            hi: 3,
        }],
        Aggregation::Count,
    ) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, tsunami_server::protocol::code::INVALID_QUERY)
        }
        other => panic!("expected INVALID_QUERY, got {other:?}"),
    }
    // Mismatched insert arity leaves the table untouched.
    match client.insert("t", vec![vec![1, 2]]) {
        Err(ClientError::Server { code, .. }) => {
            assert_eq!(code, tsunami_server::protocol::code::INVALID_QUERY)
        }
        other => panic!("expected INVALID_QUERY, got {other:?}"),
    }
    // The connection still serves after every rejection.
    client.ping().unwrap();
    assert_eq!(
        client.query("t", vec![], Aggregation::Count).unwrap(),
        AggResult::Count(100)
    );
    assert!(
        server
            .stats()
            .errors
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 4
    );
    server.shutdown();
}

#[test]
fn reopt_daemon_fires_on_watermark_and_results_stay_correct() {
    let data = test_dataset(2_000);
    let mut sharded = ShardedDatabase::new(2);
    sharded
        .create_table(
            "t",
            &["a", "b", "c"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
    let mut server = Server::spawn(
        Arc::new(RwLock::new(sharded)),
        ServerConfig {
            reopt_watermark: 16,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    for i in 0..64u64 {
        let preds = vec![Predicate::range(0, i * 8, i * 8 + 200).unwrap()];
        client.query("t", preds, Aggregation::Count).unwrap();
    }
    server.daemon().quiesce();
    assert!(
        server.daemon().passes() >= 1,
        "watermark 16 never fired over 64 served queries"
    );
    // Still answering correctly after any daemon activity.
    assert_eq!(
        client.query("t", vec![], Aggregation::Count).unwrap(),
        AggResult::Count(2_000)
    );
    server.shutdown();
}

/// Robustness satellite: a connection that goes silent is reaped by the
/// server's idle read timeout — its thread exits, its socket closes, and
/// clients that keep talking are unaffected.
#[test]
fn idle_connections_are_reaped_while_active_ones_survive() {
    let data = test_dataset(100);
    let mut sharded = ShardedDatabase::new(2);
    sharded
        .create_table(
            "t",
            &["a", "b", "c"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
    let mut server = Server::spawn(
        Arc::new(RwLock::new(sharded)),
        ServerConfig {
            idle_timeout: Some(Duration::from_millis(60)),
            ..ServerConfig::default()
        },
    )
    .unwrap();

    let mut active = Client::connect(server.addr()).unwrap();
    let mut silent = Client::connect(server.addr()).unwrap();

    // The active client keeps pinging well inside the idle window; the
    // silent one never sends a frame and must get reaped.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        active.ping().unwrap();
        let reaped = server
            .stats()
            .reaped_idle
            .load(std::sync::atomic::Ordering::Relaxed);
        if reaped >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "silent connection was never reaped"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The reaped socket is really closed: the silent client's next call
    // fails instead of hanging.
    assert!(silent.ping().is_err());
    // Staying chatty kept the active connection alive through many windows.
    active.ping().unwrap();
    assert_eq!(
        active.query("t", vec![], Aggregation::Count).unwrap(),
        AggResult::Count(100)
    );
    server.shutdown();
}

/// Robustness satellite: transient connect failures are retried with
/// bounded exponential backoff and surface as a typed error once the
/// budget is exhausted; a live server connects on the first try with the
/// same configuration, and timeouts ride along on the session.
#[test]
fn connect_retry_is_bounded_typed_and_transient_only() {
    // A freshly released loopback port: connecting gets REFUSED, which is
    // transient (a restarting server would produce exactly this).
    let vacant = {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        listener.local_addr().unwrap()
    };
    let config = ClientConfig {
        connect_retries: 2,
        retry_backoff: Duration::from_millis(5),
        connect_timeout: Some(Duration::from_millis(500)),
        ..ClientConfig::default()
    };
    let start = Instant::now();
    match Client::connect_with_config(vacant, &config) {
        Err(ClientError::ConnectExhausted { attempts, last }) => {
            assert_eq!(attempts, 3, "1 try + 2 retries");
            assert!(transient_connect_error(&last), "{last:?}");
        }
        other => panic!("expected ConnectExhausted, got {other:?}"),
    }
    // Backoff 5ms + 10ms actually elapsed (no busy spin-loop).
    assert!(start.elapsed() >= Duration::from_millis(15));

    // The same config against a live server connects and serves normally,
    // read timeout and all.
    let data = test_dataset(50);
    let mut sharded = ShardedDatabase::new(2);
    sharded
        .create_table(
            "t",
            &["a", "b", "c"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
    let mut server =
        Server::spawn(Arc::new(RwLock::new(sharded)), ServerConfig::default()).unwrap();
    let mut client = Client::connect_with_config(server.addr(), &config).unwrap();
    client.ping().unwrap();
    assert_eq!(
        client.query("t", vec![], Aggregation::Count).unwrap(),
        AggResult::Count(50)
    );
    server.shutdown();
}
