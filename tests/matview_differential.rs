//! Differential tests for the materialized-aggregate layer.
//!
//! Two properties, both *bit-identity* (not tolerance):
//!
//! 1. **Region cube.** A Tsunami index answering covered queries from
//!    pre-folded per-region partials must be indistinguishable in results
//!    from the same index with materialization disabled, for all five
//!    aggregations, serial and parallel — and both must match the full-scan
//!    oracle — through every mutation that permutes or invalidates cube
//!    entries: `ingest` (delta-merged), `delete_where` (lazy re-fold, with
//!    region compaction swaps forced via a low staleness bar), and
//!    `reoptimize` (entries carried only for regions the restructure did
//!    not split).
//!
//! 2. **Registered views.** A `Database` view's answer must be bit-identical
//!    to executing its query against the table from scratch, after every
//!    engine mutation — and insert maintenance must be incremental (the
//!    state stays fresh through inserts; deletes invalidate it).

use tsunami_core::sample::SplitMix;
use tsunami_core::{
    Aggregation, CostModel, Dataset, MultiDimIndex, Point, Predicate, Query, TsunamiError, Workload,
};
use tsunami_index::{TsunamiConfig, TsunamiIndex};
use tsunami_suite::{Database, IndexSpec};

const ALL_AGGREGATIONS: [fn(usize) -> Aggregation; 5] = [
    |_| Aggregation::Count,
    Aggregation::Sum,
    Aggregation::Min,
    Aggregation::Max,
    Aggregation::Avg,
];

fn dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed);
    let d0: Vec<u64> = (0..rows).map(|_| rng.next_below(40_000)).collect();
    let d1: Vec<u64> = d0.iter().map(|&v| v / 2 + rng.next_below(5_000)).collect();
    let d2: Vec<u64> = (0..rows).map(|_| rng.next_below(128)).collect();
    Dataset::from_columns(vec![d0, d1, d2]).unwrap()
}

/// A workload mixing narrow bands (mostly rim scans) with wide bands (many
/// whole regions covered — the case the cube answers).
fn workload(data: &Dataset, n: usize, seed: u64) -> Workload {
    let mut rng = SplitMix::new(seed);
    Workload::new(
        (0..n)
            .map(|i| {
                let dim = i % data.num_dims();
                let (lo_d, hi_d) = data.domain(dim).unwrap();
                let width = if i % 2 == 0 {
                    (hi_d - lo_d) / 2 + 1
                } else {
                    (hi_d - lo_d) / 20 + 1
                };
                let lo = lo_d + rng.next_below(hi_d - lo_d + 1);
                Query::count(vec![
                    Predicate::range(dim, lo, (lo + width).min(hi_d)).unwrap()
                ])
                .unwrap()
            })
            .collect(),
    )
}

/// The workload's predicate sets expanded across all five aggregations,
/// plus whole-domain queries (every region covered — the pure-partial plan).
fn probes(data: &Dataset, workload: &Workload) -> Vec<Query> {
    let mut out = Vec::new();
    let mut preds: Vec<Vec<Predicate>> = workload
        .queries()
        .iter()
        .map(|q| q.predicates().to_vec())
        .collect();
    for dim in 0..data.num_dims() {
        preds.push(vec![Predicate::range(dim, 0, u64::MAX).unwrap()]);
    }
    for (i, p) in preds.into_iter().enumerate() {
        for agg in ALL_AGGREGATIONS {
            out.push(Query::new(p.clone(), agg(i % data.num_dims())).unwrap());
        }
    }
    out
}

/// Asserts `on` (cube enabled) and `off` answer every probe identically to
/// the oracle over `live`, serial and parallel.
fn assert_bit_identical(
    label: &str,
    on: &TsunamiIndex,
    off: &TsunamiIndex,
    live: &Dataset,
    probes: &[Query],
) {
    assert!(on.matview_enabled() && !off.matview_enabled());
    for q in probes {
        let oracle = q.execute_full_scan(live);
        assert_eq!(on.execute(q), oracle, "{label}: matview-on vs oracle {q:?}");
        assert_eq!(
            off.execute(q),
            oracle,
            "{label}: matview-off vs oracle {q:?}"
        );
        let (par, _) = on.execute_parallel(q, 4);
        assert_eq!(par, oracle, "{label}: matview-on parallel {q:?}");
    }
}

/// Rebuilds the pair with materialization toggled per side.
fn build_pair(
    data: &Dataset,
    workload: &Workload,
    config: &TsunamiConfig,
) -> (TsunamiIndex, TsunamiIndex) {
    let cost = CostModel::default();
    let mut on = TsunamiIndex::build_with_cost(data, workload, &cost, config).unwrap();
    let mut off = TsunamiIndex::build_with_cost(data, workload, &cost, config).unwrap();
    on.set_matview(true);
    off.set_matview(false);
    (on, off)
}

#[test]
fn cube_answers_are_bit_identical_through_every_mutation() -> Result<(), TsunamiError> {
    // Low region-staleness bar so the delete below forces physical
    // compaction swaps (regions re-gridded, bases shifted) without the
    // whole-index rebuild escalation.
    let config = TsunamiConfig::fast().with_ingest_staleness(0.05, 0.9);
    let mut live = dataset(9_000, 7);
    let wl = workload(&live, 8, 11);
    let (mut on, mut off) = build_pair(&live, &wl, &config);
    assert_bit_identical("built", &on, &off, &live, &probes(&live, &wl));

    // Ingest: cube entries of touched regions delta-merge; answers stay
    // exact through re-gridding and out-of-domain tails.
    let mut rng = SplitMix::new(23);
    let batch: Vec<Point> = (0..700)
        .map(|_| {
            vec![
                rng.next_below(44_000),
                rng.next_below(27_000),
                rng.next_below(160),
            ]
        })
        .collect();
    for chunk in batch.chunks(250) {
        for row in chunk {
            live.push_row(row)?;
        }
        on = on.ingest(chunk, &config)?.0;
        off = off.ingest(chunk, &config)?.0;
    }
    assert_bit_identical("ingested", &on, &off, &live, &probes(&live, &wl));

    // Delete a band: touched entries invalidate and re-fold lazily; the low
    // staleness bar makes this a compaction swap for the dense regions.
    let band = Query::count(vec![Predicate::range(0, 4_000, 12_000)?])?;
    let keep: Vec<usize> = (0..live.len())
        .filter(|&r| !band.matches_point(&live.row(r)))
        .collect();
    let (next_on, report) = on.delete_where(&band, &config)?;
    let (next_off, _) = off.delete_where(&band, &config)?;
    assert!(report.rows_deleted > 0);
    assert!(
        report.regions_compacted > 0 && !report.rebuilt,
        "fixture must exercise compaction swaps, got {report:?}"
    );
    live = live.select_rows(&keep);
    on = next_on;
    off = next_off;
    assert_bit_identical("deleted", &on, &off, &live, &probes(&live, &wl));

    // Reoptimize for a shifted workload: cold regions carry entries, split
    // regions drop them; either way answers are exact.
    let shifted = workload(&live, 8, 301);
    on = on.reoptimize(&live, &shifted, &config)?;
    off = off.reoptimize(&live, &shifted, &config)?;
    assert_bit_identical("reoptimized", &on, &off, &live, &probes(&live, &shifted));
    Ok(())
}

#[test]
fn covered_queries_skip_scanning_via_partials() {
    let data = dataset(12_000, 77);
    let wl = workload(&data, 6, 78);
    let (on, off) = build_pair(&data, &wl, &TsunamiConfig::fast());

    // Whole-domain COUNT: every region is contained in the query, so the
    // materialized plan is pure partials — zero rows visited.
    let q = Query::count(vec![Predicate::range(0, 0, u64::MAX).unwrap()]).unwrap();
    let (res_on, stats_on) = on.execute_with_stats(&q);
    let (res_off, stats_off) = off.execute_with_stats(&q);
    assert_eq!(res_on, res_off);
    assert_eq!(stats_on.points_matched, stats_off.points_matched);
    assert_eq!(stats_on.points_scanned, 0, "covered plan must not scan");
    assert_eq!(stats_off.points_scanned, data.len());

    // Parallel executors apply the same partials exactly once.
    for threads in [2, 8] {
        let (par, par_stats) = on.execute_parallel(&q, threads);
        assert_eq!(par, res_on);
        assert_eq!(
            par_stats, stats_on,
            "counters diverged at {threads} threads"
        );
    }
}

#[test]
fn registered_views_track_the_table_through_engine_mutations() -> Result<(), TsunamiError> {
    let data = dataset(6_000, 91);
    let wl = workload(&data, 6, 92);
    let mut db = Database::new();
    db.create_table(
        "trips",
        &["pickup", "fare", "passengers"],
        data,
        &wl,
        &IndexSpec::Tsunami(TsunamiConfig::fast()),
    )?;

    // One view per aggregation kind, built through the fluent builder.
    type AggCtor = fn(usize) -> Aggregation;
    let specs: [(&str, AggCtor); 5] = [
        ("v_count", ALL_AGGREGATIONS[0]),
        ("v_sum", ALL_AGGREGATIONS[1]),
        ("v_min", ALL_AGGREGATIONS[2]),
        ("v_max", ALL_AGGREGATIONS[3]),
        ("v_avg", ALL_AGGREGATIONS[4]),
    ];
    for (name, agg) in specs {
        let query = Query::new(vec![Predicate::range(0, 2_000, 30_000)?], agg(1))?;
        db.register_view("trips", name, query)?;
    }
    // The builder hands the same Query type to register_view.
    let built = db
        .table("trips")?
        .query()
        .range("pickup", 0, 10_000)?
        .avg("fare")?
        .into_query()?;
    db.register_view("trips", "v_builder", built)?;
    assert_eq!(
        db.register_view("trips", "v_builder", Query::count(vec![])?)
            .err(),
        Some(TsunamiError::DuplicateView("v_builder".into()))
    );
    assert!(matches!(
        db.view_value("nope").err(),
        Some(TsunamiError::UnknownView(_))
    ));

    let check = |db: &Database, label: &str| -> Result<(), TsunamiError> {
        let table = db.table("trips")?;
        for view in db.views() {
            let fresh = table.execute(view.query())?;
            assert_eq!(
                db.view_value(view.name())?,
                fresh,
                "{label}: view {} diverged",
                view.name()
            );
        }
        Ok(())
    };
    check(&db, "registered")?;

    // Inserts maintain the folded state incrementally: reading, then
    // inserting, leaves every view fresh (no recompute pending).
    let mut rng = SplitMix::new(93);
    let batch: Vec<Point> = (0..400)
        .map(|_| {
            vec![
                rng.next_below(45_000),
                rng.next_below(28_000),
                rng.next_below(128),
            ]
        })
        .collect();
    db.insert_batch("trips", &batch)?;
    check(&db, "inserted")?;
    assert!(db.views().all(|v| v.is_fresh()));
    db.insert_batch("trips", &batch[..50])?;
    assert!(
        db.views().all(|v| v.is_fresh()),
        "insert must fold a delta, not invalidate"
    );
    check(&db, "inserted-again")?;

    // Deletes invalidate; the next read lazily re-folds to the exact answer.
    db.delete("trips", &[Predicate::range(1, 5_000, 9_000)?])?;
    assert!(db.views().all(|v| !v.is_fresh()), "delete must invalidate");
    check(&db, "deleted")?;
    assert!(db.views().all(|v| v.is_fresh()));

    // Restructures permute the physical layout only; answers stay exact.
    let table = db.table("trips")?;
    let shifted = workload(table.dataset(), 6, 301);
    drop(table);
    db.reoptimize(
        "trips",
        &shifted,
        &IndexSpec::Tsunami(TsunamiConfig::fast()),
    )?;
    check(&db, "reoptimized")?;

    // Views over a dropped table disappear with it.
    db.drop_table("trips")?;
    assert!(matches!(
        db.view_value("v_count").err(),
        Some(TsunamiError::UnknownView(_))
    ));
    Ok(())
}
