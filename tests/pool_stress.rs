//! Work-stealing pool stress suite: the morsel-driven pooled executor must
//! be bit-identical to serial execution across every index family, every
//! worker count, and morsel sizes that straddle block boundaries — and the
//! pool itself must shut down cleanly (no leaked threads, idempotent
//! shutdown) under concurrent inter-query load.

use std::sync::Arc;

use tsunami_core::exec::{
    self, execute_plan_pooled_tiered, KernelTier, WorkStealingPool, BLOCK_ROWS,
};
use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Predicate, Query, Workload};
use tsunami_suite::{Database, IndexSpec, Scheduler, SchedulerConfig};

fn dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed);
    Dataset::from_columns(vec![
        (0..rows).map(|_| rng.next_below(50_000)).collect(),
        (0..rows).map(|_| rng.next_below(5_000)).collect(),
        (0..rows).map(|_| rng.next_below(500)).collect(),
    ])
    .unwrap()
}

/// Mixed-aggregation workload over random ranges, including empty matches.
fn mixed_workload(n: usize, dims: usize, seed: u64) -> Workload {
    let mut rng = SplitMix::new(seed);
    Workload::new(
        (0..n)
            .map(|i| {
                let d = rng.next_below(dims as u64) as usize;
                let lo = rng.next_below(60_000);
                let hi = lo + rng.next_below(20_000);
                let agg_dim = rng.next_below(dims as u64) as usize;
                let agg = match i % 5 {
                    0 => Aggregation::Count,
                    1 => Aggregation::Sum(agg_dim),
                    2 => Aggregation::Min(agg_dim),
                    3 => Aggregation::Max(agg_dim),
                    _ => Aggregation::Avg(agg_dim),
                };
                Query::new(vec![Predicate::range(d, lo, hi).unwrap()], agg).unwrap()
            })
            .collect(),
    )
}

/// Current thread count of this process, from `/proc/self/status`. Returns
/// `None` off Linux so the leak check degrades to a no-op there.
fn process_threads() -> Option<usize> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("Threads:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Bit-identity vs serial across all seven index families at 1, 2, and 8
/// workers, each worker count on its own private pool. The dataset is large
/// enough (> 4 blocks) that the pooled path does not fall back to serial.
#[test]
fn pooled_executor_bit_identical_to_serial_across_all_families() {
    let data = dataset(10 * BLOCK_ROWS, 0xbeef);
    let workload = mixed_workload(24, data.num_dims(), 17);
    let mut db = Database::new();
    for spec in IndexSpec::all_fast() {
        db.create_table_unnamed(spec.label(), data.clone(), &workload, &spec)
            .expect("table builds");
    }
    assert_eq!(db.num_tables(), 7);

    for workers in [1usize, 2, 8] {
        let pool = WorkStealingPool::new(workers);
        for table in db.tables() {
            let index = table.index();
            for q in workload.queries() {
                let plan = index.plan(q);
                let (serial, serial_counters) = exec::execute_plan(index.source(), q, &plan);
                let (pooled, pooled_counters) = execute_plan_pooled_tiered(
                    index.source(),
                    q,
                    &plan,
                    &pool,
                    workers,
                    exec::DEFAULT_MORSEL_ROWS,
                    KernelTier::default(),
                );
                assert_eq!(
                    pooled,
                    serial,
                    "workers={workers} {}: pooled result != serial on {q:?}",
                    table.name()
                );
                assert_eq!(
                    pooled_counters,
                    serial_counters,
                    "workers={workers} {}: pooled counters != serial on {q:?}",
                    table.name()
                );
            }
        }
    }
}

/// Morsel sizes straddling block boundaries (sub-block, exactly one block,
/// one row past a block, a ragged multiple) must not change results or
/// counters, at any worker count.
#[test]
fn morsel_sizes_straddling_block_boundaries_stay_bit_identical() {
    let data = dataset(9 * BLOCK_ROWS + 137, 0x5eed);
    let workload = mixed_workload(16, data.num_dims(), 23);
    let mut db = Database::new();
    let table = db
        .create_table_unnamed("t", data, &workload, &IndexSpec::tsunami())
        .unwrap();
    let index = table.index();
    let pool = WorkStealingPool::new(3);

    for q in workload.queries() {
        let plan = index.plan(q);
        let (serial, serial_counters) = exec::execute_plan(index.source(), q, &plan);
        for morsel_rows in [
            BLOCK_ROWS / 2, // clamped up to one block inside the executor
            BLOCK_ROWS,
            BLOCK_ROWS + 1,
            3 * BLOCK_ROWS + 17,
        ] {
            for threads in [2usize, 5] {
                let (pooled, pooled_counters) = execute_plan_pooled_tiered(
                    index.source(),
                    q,
                    &plan,
                    &pool,
                    threads,
                    morsel_rows,
                    KernelTier::default(),
                );
                assert_eq!(
                    (pooled, pooled_counters),
                    (serial, serial_counters),
                    "morsel={morsel_rows} threads={threads} diverged on {q:?}"
                );
            }
        }
    }
}

/// Seeded mixed submit/poll stress through a `Scheduler` running on a
/// private pool, with intra-query parallelism on the same pool — every
/// handle must come back with its own query's serial result.
#[test]
fn mixed_submit_poll_on_private_pool_preserves_results() {
    let data = dataset(6 * BLOCK_ROWS, 0xab);
    let workload = mixed_workload(20, data.num_dims(), 31);
    let mut db = Database::new();
    let pool = Arc::new(WorkStealingPool::new(2));
    db.set_pool(Arc::clone(&pool));
    let table = db
        .create_table_unnamed("t", data, &workload, &IndexSpec::tsunami())
        .unwrap();
    let prepared = table.prepare_workload(&workload).unwrap();
    let expected: Vec<_> = prepared.iter().map(|q| q.execute()).collect();

    for seed in 0..4u64 {
        let mut rng = SplitMix::new(seed * 7_919 + 3);
        let scheduler = Scheduler::on_pool(
            Arc::clone(&pool),
            SchedulerConfig {
                workers: 1 + seed as usize % 3,
                queue_capacity: 6,
                intra_query_threads: 1 + seed as usize % 2,
            },
        );
        let mut pending: Vec<(usize, tsunami_suite::QueryHandle)> = Vec::new();
        let mut submitted = 0usize;
        let total = 80usize;
        while submitted < total || !pending.is_empty() {
            for _ in 0..=rng.next_below(5) {
                if submitted >= total {
                    break;
                }
                let qi = rng.next_below(prepared.len() as u64) as usize;
                pending.push((qi, scheduler.submit(prepared[qi].clone()).unwrap()));
                submitted += 1;
            }
            if !pending.is_empty() {
                let pi = rng.next_below(pending.len() as u64) as usize;
                if let Some(result) = pending[pi].1.poll() {
                    let qi = pending[pi].0;
                    assert_eq!(result.unwrap(), expected[qi], "seed {seed}: poll mismatch");
                    pending.swap_remove(pi);
                }
            }
            if pending.len() > 12 || (submitted >= total && !pending.is_empty()) {
                let (qi, handle) =
                    pending.swap_remove(rng.next_below(pending.len() as u64) as usize);
                assert_eq!(
                    handle.wait().unwrap(),
                    expected[qi],
                    "seed {seed}: wait mismatch"
                );
            }
        }
        assert_eq!(scheduler.completed() as usize, total, "seed {seed}");
    }
}

/// Pool shutdown must join every worker (no leaked threads), survive being
/// called twice, and run any still-queued tasks rather than dropping them.
#[test]
fn shutdown_joins_workers_and_is_idempotent() {
    let before = process_threads();
    {
        let mut pool = WorkStealingPool::new(4);
        if let (Some(b), Some(now)) = (before, process_threads()) {
            assert!(now >= b + 4, "expected 4 pool threads: {b} -> {now}");
        }
        let ran = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        for _ in 0..64 {
            let ran = Arc::clone(&ran);
            pool.spawn(move || {
                ran.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            });
        }
        pool.shutdown();
        assert_eq!(ran.load(std::sync::atomic::Ordering::SeqCst), 64);
        // Second shutdown and the implicit drop-shutdown are both no-ops.
        pool.shutdown();
    }
    if let (Some(b), Some(after)) = (before, process_threads()) {
        assert_eq!(after, b, "pool leaked threads: {b} -> {after}");
    }
}

/// Dropping a scheduler while results are still unpolled must drain its
/// in-flight drainer tasks without touching the shared pool's workers, so a
/// second scheduler on the same pool keeps working.
#[test]
fn scheduler_drop_leaves_the_shared_pool_usable() {
    let data = dataset(4 * BLOCK_ROWS, 0xdd);
    let workload = mixed_workload(10, data.num_dims(), 41);
    let mut db = Database::new();
    let pool = Arc::new(WorkStealingPool::new(2));
    db.set_pool(Arc::clone(&pool));
    let table = db
        .create_table_unnamed("t", data, &workload, &IndexSpec::tsunami())
        .unwrap();
    let prepared = table.prepare_workload(&workload).unwrap();

    let mut handles = Vec::new();
    {
        let scheduler = db.scheduler(2);
        for q in &prepared {
            handles.push(scheduler.submit(q.clone()).unwrap());
        }
        // Drop with handles unpolled: Drop must wait for in-flight jobs.
    }
    for (handle, q) in handles.iter().zip(&prepared) {
        assert_eq!(handle.wait().unwrap(), q.execute());
    }

    // The pool is still fully functional for a fresh scheduler.
    let scheduler = db.scheduler(2);
    let results = scheduler.execute_batch(&prepared).unwrap();
    for (r, q) in results.iter().zip(&prepared) {
        assert_eq!(*r, q.execute());
    }
}
