//! The durability tentpole's fault-injection harness: kill the writer at
//! every [`CrashPoint`] before / during / after every mutation in a
//! scripted sequence, reopen the database from disk, and differentially
//! assert that the recovered state answers **all five aggregations
//! bit-identically** to an in-memory oracle that replayed only the durably
//! committed prefix — serially and through the parallel scheduler.
//!
//! The sequence is built to cross every interesting durability boundary:
//! a Tsunami table with tight staleness bars (so deletes escalate through
//! per-region compaction and a whole-index rebuild during recovery), a
//! mid-sequence checkpoint (so both checkpoint crash windows are
//! reachable), and inserts both before and after the checkpoint.

use tsunami_core::{Aggregation, Dataset, Predicate, Query, Workload};
use tsunami_engine::{CrashPoint, Database, IndexSpec, Table};
use tsunami_index::TsunamiConfig;

const DIMS: usize = 3;

fn base_rows() -> Vec<Vec<u64>> {
    (0..1_500u64)
        .map(|v| vec![v, v * 2 + v % 13, (v * 7919) % 10_000])
        .collect()
}

fn workload() -> Workload {
    Workload::new(
        (0..10u64)
            .map(|i| {
                Query::count(vec![Predicate::range(0, i * 120, i * 120 + 300).unwrap()]).unwrap()
            })
            .collect(),
    )
}

fn spec() -> IndexSpec {
    // Tight bars: the small delete already compacts touched regions, and
    // the big one escalates to a whole-index rebuild — recovery replays
    // straight through both escalation paths.
    IndexSpec::Tsunami(TsunamiConfig::fast().with_ingest_staleness(0.05, 0.3))
}

/// One scripted mutation after the initial create.
enum Step {
    Insert(Vec<Vec<u64>>),
    Delete(Vec<Predicate>),
    RegisterView(&'static str, Query),
    Checkpoint,
}

impl Step {
    fn label(&self) -> String {
        match self {
            Step::Insert(rows) => format!("insert({})", rows.len()),
            Step::Delete(preds) => format!("delete({} preds)", preds.len()),
            Step::RegisterView(name, _) => format!("register_view({name})"),
            Step::Checkpoint => "checkpoint".to_string(),
        }
    }

    /// The crash points that can actually fire while this step runs.
    fn crash_points(&self) -> &'static [CrashPoint] {
        match self {
            Step::Checkpoint => &[CrashPoint::MidCheckpoint, CrashPoint::AfterCheckpointRename],
            _ => &[CrashPoint::MidRecord, CrashPoint::BeforeSync],
        }
    }
}

fn steps() -> Vec<Step> {
    vec![
        Step::Insert(
            (0..200u64)
                .map(|i| vec![1_500 + i, i * 3, i * 17 % 10_000])
                .collect(),
        ),
        // Registered before the checkpoint: this view's spec must survive
        // via the checkpoint *snapshot*, not the (reset) WAL tail.
        Step::RegisterView(
            "v_sum",
            Query::new(
                vec![Predicate::range(0, 300, 2_000).unwrap()],
                Aggregation::Sum(1),
            )
            .unwrap(),
        ),
        // Small band: tombstones, with touched regions compacting past the
        // tight region bar.
        Step::Delete(vec![Predicate::range(0, 100, 219).unwrap()]),
        Step::Checkpoint,
        Step::Insert((0..150u64).map(|i| vec![i * 11, i * 5, i * 13]).collect()),
        // Registered after the checkpoint: survives via the WAL tail.
        Step::RegisterView("v_avg", Query::new(vec![], Aggregation::Avg(2)).unwrap()),
        // Big band: escalates to a whole-index rebuild over the live rows.
        Step::Delete(vec![Predicate::range(0, 0, 899).unwrap()]),
    ]
}

fn apply(db: &mut Database, step: &Step) -> tsunami_core::Result<()> {
    match step {
        Step::Insert(rows) => db.insert_batch("t", rows).map(|_| ()),
        Step::Delete(preds) => db.delete("t", preds).map(|_| ()),
        Step::RegisterView(name, q) => db.register_view("t", name, q.clone()),
        Step::Checkpoint => db.checkpoint(),
    }
}

/// The in-memory oracle: plain rows, no index, no WAL.
fn oracle_after(upto: usize) -> Vec<Vec<u64>> {
    let mut rows = base_rows();
    for step in steps().iter().take(upto) {
        match step {
            Step::Insert(batch) => rows.extend(batch.iter().cloned()),
            Step::Delete(preds) => {
                let q = Query::count(preds.clone()).unwrap();
                rows.retain(|r| !q.matches_point(r));
            }
            Step::RegisterView(..) | Step::Checkpoint => {}
        }
    }
    rows
}

/// The views registered by the durable prefix, in registration order.
fn views_after(upto: usize) -> Vec<(&'static str, Query)> {
    steps()
        .into_iter()
        .take(upto)
        .filter_map(|s| match s {
            Step::RegisterView(name, q) => Some((name, q)),
            _ => None,
        })
        .collect()
}

fn probes() -> Vec<Query> {
    let bands: [Vec<Predicate>; 3] = [
        vec![],
        vec![Predicate::range(0, 0, 1_200).unwrap()],
        vec![
            Predicate::range(1, 0, 2_500).unwrap(),
            Predicate::range(2, 0, 8_000).unwrap(),
        ],
    ];
    let mut out = Vec::new();
    for preds in bands {
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(2),
            Aggregation::Max(0),
            Aggregation::Avg(1),
        ] {
            out.push(Query::new(preds.clone(), agg).unwrap());
        }
    }
    out
}

/// Asserts the table answers every probe bit-identically to the oracle
/// rows, both serially and through the parallel scheduler.
fn assert_matches_oracle(db: &Database, table: &Table, rows: &[Vec<u64>], ctx: &str) {
    assert_eq!(table.num_rows(), rows.len(), "{ctx}: row count");
    let oracle = Dataset::from_rows(DIMS, rows).unwrap();
    let probes = probes();
    for q in &probes {
        assert_eq!(
            table.execute(q).unwrap(),
            q.execute_full_scan(&oracle),
            "{ctx}: serial diverged on {q:?}"
        );
    }
    let prepared: Vec<_> = probes
        .iter()
        .map(|q| table.prepare(q.clone()).unwrap())
        .collect();
    let parallel = db.scheduler(4).execute_batch(&prepared).unwrap();
    for (q, got) in probes.iter().zip(parallel) {
        assert_eq!(
            got,
            q.execute_full_scan(&oracle),
            "{ctx}: parallel diverged on {q:?}"
        );
    }
}

/// Asserts the recovered database has exactly the views registered by the
/// durable prefix, and that each answers bit-identically to its aggregate
/// freshly computed over the oracle rows (view state is never persisted —
/// recovery re-registers the spec and the first read re-folds).
fn assert_views_match_oracle(db: &Database, rows: &[Vec<u64>], upto: usize, ctx: &str) {
    let expected = views_after(upto);
    assert_eq!(db.views().count(), expected.len(), "{ctx}: view count");
    let oracle = Dataset::from_rows(DIMS, rows).unwrap();
    for (name, q) in &expected {
        let view = db
            .view(name)
            .unwrap_or_else(|_| panic!("{ctx}: lost view {name}"));
        assert_eq!(view.table(), "t", "{ctx}");
        assert_eq!(
            db.view_value(name).unwrap(),
            q.execute_full_scan(&oracle),
            "{ctx}: view {name} diverged from the durable prefix"
        );
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tsunami_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn create(db: &mut Database) {
    let data = Dataset::from_rows(DIMS, &base_rows()).unwrap();
    db.create_table_unnamed("t", data, &workload(), &spec())
        .unwrap();
}

/// The matrix: for every step and every crash point that step can hit,
/// crash there, reopen, and differential-check against the durable prefix.
#[test]
fn every_crash_point_recovers_exactly_the_durable_prefix() {
    let all = steps();
    for (k, step) in all.iter().enumerate() {
        for &crash in step.crash_points() {
            let ctx = format!("crash {crash:?} during step {k} ({})", step.label());
            let dir = temp_dir(&format!("{k}_{crash:?}"));
            {
                let mut db = Database::open(&dir).unwrap();
                create(&mut db);
                for prior in &all[..k] {
                    apply(&mut db, prior).unwrap();
                }
                db.set_crash_point(crash);
                let err = apply(&mut db, step);
                assert!(err.is_err(), "{ctx}: the injected crash must surface");
            } // "process" dies here

            // Whatever the crash point, the recovered state is exactly the
            // mutations committed before the crashed step — the torn /
            // unsynced / checkpoint-interrupted tail never half-applies.
            let recovered = Database::open(&dir).unwrap();
            assert_eq!(recovered.num_tables(), 1, "{ctx}");
            let table = recovered.table("t").unwrap();
            let durable_rows = oracle_after(k);
            assert_matches_oracle(&recovered, &table, &durable_rows, &ctx);
            assert_views_match_oracle(&recovered, &durable_rows, k, &ctx);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// A crash while logging the initial create leaves a recoverable empty
/// database (the torn CreateTable record is amputated on replay).
#[test]
fn crash_during_create_table_recovers_to_empty() {
    for crash in [CrashPoint::MidRecord, CrashPoint::BeforeSync] {
        let dir = temp_dir(&format!("create_{crash:?}"));
        {
            let mut db = Database::open(&dir).unwrap();
            db.set_crash_point(crash);
            let data = Dataset::from_rows(DIMS, &base_rows()).unwrap();
            assert!(db
                .create_table_unnamed("t", data, &workload(), &spec())
                .is_err());
        }
        let recovered = Database::open(&dir).unwrap();
        assert_eq!(recovered.num_tables(), 0, "{crash:?}");
        assert!(recovered.table("t").is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// The no-crash control: the full sequence survives a clean reopen, and a
/// second reopen (replay-of-replay) is stable.
#[test]
fn clean_reopen_replays_the_full_sequence() {
    let dir = temp_dir("clean");
    {
        let mut db = Database::open(&dir).unwrap();
        create(&mut db);
        for step in &steps() {
            apply(&mut db, step).unwrap();
        }
        let table = db.table("t").unwrap();
        let rows = oracle_after(steps().len());
        assert_matches_oracle(&db, &table, &rows, "pre-crash");
        assert_views_match_oracle(&db, &rows, steps().len(), "pre-crash");
    }
    for reopen in 0..2 {
        let db = Database::open(&dir).unwrap();
        let table = db.table("t").unwrap();
        let ctx = format!("reopen {reopen}");
        let rows = oracle_after(steps().len());
        assert_matches_oracle(&db, &table, &rows, &ctx);
        assert_views_match_oracle(&db, &rows, steps().len(), &ctx);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
