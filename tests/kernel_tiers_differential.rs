//! Differential tests for the executor's kernel tiers: the branchless
//! selection-vector path, the word-packed selection-bitmap path, and the
//! adaptive per-block switch must all be bit-identical — results *and*
//! [`ScanCounters`] — to the scalar oracle loop, across a seeded sweep of
//! selectivities (0%, ~1%, ~50%, ~99%, 100%), predicate counts (1–4), and
//! block-boundary offsets, for all five aggregations, serial and parallel,
//! and for all seven index families.
//!
//! Block encoding rides the same harness: stores built fully plain
//! ([`EncodePolicy::disabled`]), fully encoded (FOR + Dict + Plain blocks
//! under the default policy), and mixed (encoded blocks behind a plain
//! freshly-appended tail) must all answer bit-identically — and stay
//! bit-identical after tombstone deletes and again after physical
//! compaction re-encodes the survivors. The seven-family test exercises the
//! same property end-to-end: every index re-encodes after restructuring, so
//! its store mixes packed full blocks with a plain partial tail.

use tsunami_baselines::{ClusteredSingleDimIndex, FullScanIndex, HyperOctree, KdTree, ZOrderIndex};
use tsunami_core::exec::{
    execute_plan_parallel_tiered, execute_plan_tiered, KernelTier, ScanPlan, BLOCK_ROWS,
};
use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, CostModel, Dataset, MultiDimIndex, Predicate, Query, Workload};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{TsunamiConfig, TsunamiIndex};
use tsunami_store::{ColumnStore, EncodePolicy};

const ALL_AGGREGATIONS: [Aggregation; 5] = [
    Aggregation::Count,
    Aggregation::Sum(4),
    Aggregation::Min(4),
    Aggregation::Max(4),
    Aggregation::Avg(4),
];

/// Uniform values below `DOMAIN` on 4 predicate dims plus one aggregation
/// input dim, deliberately *not* block-aligned in length.
const DOMAIN: u64 = 1_000;

fn sweep_dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed);
    let mut cols: Vec<Vec<u64>> = (0..4)
        .map(|_| (0..rows).map(|_| rng.next_below(DOMAIN)).collect())
        .collect();
    cols.push((0..rows).map(|_| rng.next_below(1_000_000)).collect());
    Dataset::from_columns(cols).unwrap()
}

/// First-predicate ranges for the selectivity sweep: 0% lies outside the
/// domain, 100% covers it entirely.
fn selectivity_ranges() -> [(u64, u64); 5] {
    [
        (DOMAIN + 1, DOMAIN + 2),   // 0%
        (0, DOMAIN / 100 - 1),      // ~1%
        (0, DOMAIN / 2 - 1),        // ~50%
        (0, DOMAIN / 100 * 99 - 1), // ~99%
        (0, DOMAIN),                // 100%
    ]
}

/// Plans hitting block boundaries in awkward ways: gaps right at, just
/// before, and just after multiples of `BLOCK_ROWS`, plus tiny fragments.
fn boundary_plans(rows: usize) -> Vec<ScanPlan> {
    let b = BLOCK_ROWS;
    vec![
        ScanPlan::full(rows),
        ScanPlan::from_ranges([
            (0..b - 1, false),
            (b..2 * b + 1, false),
            (2 * b + 3..rows, false),
        ]),
        ScanPlan::from_ranges([
            (1..17, false),
            (b - 1..b, false),
            (b + 1..3 * b - 5, false),
            (3 * b..rows.min(3 * b + 9), false),
        ]),
    ]
}

#[test]
fn tier_sweep_selectivity_predicates_and_block_offsets() {
    let rows = 3 * BLOCK_ROWS + 517;
    let data = sweep_dataset(rows, 0xeca1);
    for (lo, hi) in selectivity_ranges() {
        for npreds in 1..=4usize {
            let mut preds = vec![Predicate::range(0, lo, hi).unwrap()];
            for dim in 1..npreds {
                // Wide but not full, so every predicate is genuinely checked.
                preds.push(Predicate::range(dim, 1, DOMAIN).unwrap());
            }
            for plan in boundary_plans(rows) {
                for agg in ALL_AGGREGATIONS {
                    let q = Query::new(preds.clone(), agg).unwrap();
                    // Independent oracle over exactly the planned rows.
                    let planned: Vec<usize> =
                        plan.ranges().iter().flat_map(|r| r.range.clone()).collect();
                    let expected = q.execute_full_scan(&data.select_rows(&planned));
                    let (scalar, scalar_counters) =
                        execute_plan_tiered(&data, &q, &plan, KernelTier::Scalar);
                    assert_eq!(scalar, expected, "scalar vs oracle ({lo}..={hi}, {agg:?})");
                    for tier in KernelTier::ALL {
                        let (res, counters) = execute_plan_tiered(&data, &q, &plan, tier);
                        assert_eq!(res, scalar, "{tier:?} result ({lo}..={hi}, {npreds} preds)");
                        assert_eq!(
                            counters, scalar_counters,
                            "{tier:?} counters ({lo}..={hi}, {npreds} preds)"
                        );
                        let (par, par_counters) =
                            execute_plan_parallel_tiered(&data, &q, &plan, 3, tier);
                        assert_eq!(par, scalar, "{tier:?} parallel result");
                        assert_eq!(par_counters, scalar_counters, "{tier:?} parallel counters");
                    }
                }
            }
        }
    }
}

fn build_all(data: &Dataset, workload: &Workload) -> Vec<Box<dyn MultiDimIndex>> {
    let cost = CostModel::default();
    vec![
        Box::new(
            TsunamiIndex::build_with_cost(data, workload, &cost, &TsunamiConfig::fast()).unwrap(),
        ),
        Box::new(FloodIndex::build(
            data,
            workload,
            &cost,
            &FloodConfig::fast(),
        )),
        Box::new(ClusteredSingleDimIndex::build(data, workload)),
        Box::new(ZOrderIndex::build(data, workload, 128)),
        Box::new(HyperOctree::build(data, workload, 128)),
        Box::new(KdTree::build(data, workload, 128)),
        Box::new(FullScanIndex::build(data)),
    ]
}

#[test]
fn all_seven_indexes_are_bit_identical_across_tiers_serial_and_parallel() {
    let mut rng = SplitMix::new(0x7157);
    let data = sweep_dataset(2_400, 0x7158);
    let workload = Workload::new(
        (0..8)
            .map(|i| {
                let dim = (i % 4) as usize;
                let lo = rng.next_below(DOMAIN - 200);
                let width = 1 + rng.next_below(DOMAIN / 2);
                Query::count(vec![Predicate::range(dim, lo, lo + width).unwrap()]).unwrap()
            })
            .collect(),
    );
    let indexes = build_all(&data, &workload);
    for q in workload.queries() {
        for agg in ALL_AGGREGATIONS {
            let q = Query::new(q.predicates().to_vec(), agg).unwrap();
            let expected = q.execute_full_scan(&data);
            for idx in &indexes {
                let (scalar, scalar_stats) = idx.execute_tiered(&q, KernelTier::Scalar);
                assert_eq!(
                    scalar,
                    expected,
                    "{} scalar vs oracle ({agg:?})",
                    idx.name()
                );
                for tier in KernelTier::ALL {
                    let (res, stats) = idx.execute_tiered(&q, tier);
                    assert_eq!(res, scalar, "{} {tier:?} ({agg:?})", idx.name());
                    assert_eq!(
                        stats,
                        scalar_stats,
                        "{} {tier:?} stats ({agg:?})",
                        idx.name()
                    );
                    let (par, par_stats) = idx.execute_parallel_tiered(&q, 4, tier);
                    assert_eq!(par, scalar, "{} {tier:?} parallel ({agg:?})", idx.name());
                    assert_eq!(
                        par_stats,
                        scalar_stats,
                        "{} {tier:?} parallel stats ({agg:?})",
                        idx.name()
                    );
                }
            }
        }
    }
}

/// Base offset of the FOR-compressible dimension: deltas fit 12 bits, so
/// the default policy frame-of-reference packs it, but absolute values need
/// 21 bits — a scan that forgot the reference would be loudly wrong.
const FOR_BASE: u64 = 1 << 20;
/// Spread of the dictionary dimension: 6 distinct values `k * DICT_STEP`
/// span ~53 bits (FOR-ineligible) but dictionary-code down to 3-bit fields.
const DICT_STEP: u64 = 1 << 50;

/// Four-dim dataset engineered so the default policy picks every block
/// format at once: dim0 FOR, dim1 Dict, dim2 stays Plain (full-width
/// high-cardinality values), dim3 is the aggregation input.
fn encoding_dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed);
    let d0: Vec<u64> = (0..rows).map(|_| FOR_BASE + rng.next_below(4096)).collect();
    let d1: Vec<u64> = (0..rows).map(|_| rng.next_below(6) * DICT_STEP).collect();
    let d2: Vec<u64> = (0..rows).map(|_| rng.next_below(u64::MAX)).collect();
    let d3: Vec<u64> = (0..rows).map(|_| rng.next_below(1_000_000)).collect();
    Dataset::from_columns(vec![d0, d1, d2, d3]).unwrap()
}

/// Queries spanning the interesting encoded-scan shapes: packed-only
/// predicates at 0% / ~50% / 100% selectivity (the 100% case drives the
/// exact-range dense paths over packed data), dictionary and plain-block
/// predicates, and multi-dim combinations that force mask intersection
/// across differently-encoded columns.
fn encoding_queries() -> Vec<Vec<Predicate>> {
    vec![
        vec![Predicate::range(0, FOR_BASE, FOR_BASE + 2047).unwrap()],
        vec![Predicate::range(0, 0, 10).unwrap()],
        vec![Predicate::range(0, 0, FOR_BASE + 4096).unwrap()],
        vec![Predicate::range(1, 0, 2 * DICT_STEP).unwrap()],
        vec![
            Predicate::range(0, FOR_BASE, FOR_BASE + 2047).unwrap(),
            Predicate::range(1, 0, 4 * DICT_STEP).unwrap(),
        ],
        vec![
            Predicate::range(0, FOR_BASE + 100, FOR_BASE + 3000).unwrap(),
            Predicate::range(1, DICT_STEP, 4 * DICT_STEP).unwrap(),
            Predicate::range(2, 0, u64::MAX / 2).unwrap(),
        ],
    ]
}

/// Runs every query × aggregation × plan × tier, serial and parallel, on
/// `store`, asserting each run bit-identical (result *and* counters) to the
/// store's own scalar run, and the scalar run equal to an independent
/// full-scan oracle over the planned live rows.
fn assert_store_matches_oracle(store: &ColumnStore, label: &str) {
    let physical = store.slice_dataset(0..store.len());
    let plans = [
        ScanPlan::full(store.len()),
        ScanPlan::from_ranges([
            (1..BLOCK_ROWS - 1, false),
            (BLOCK_ROWS..2 * BLOCK_ROWS + 3, false),
            (2 * BLOCK_ROWS + 5..store.len(), false),
        ]),
    ];
    let aggs = [
        Aggregation::Count,
        Aggregation::Sum(3),
        Aggregation::Min(3),
        Aggregation::Max(3),
        Aggregation::Avg(3),
    ];
    for preds in encoding_queries() {
        for agg in aggs {
            let q = Query::new(preds.clone(), agg).unwrap();
            for plan in &plans {
                let planned: Vec<usize> = plan
                    .ranges()
                    .iter()
                    .flat_map(|r| r.range.clone())
                    .filter(|&row| !store.tombstones().is_deleted(row))
                    .collect();
                let expected = q.execute_full_scan(&physical.select_rows(&planned));
                let (scalar, scalar_counters) =
                    execute_plan_tiered(store, &q, plan, KernelTier::Scalar);
                assert_eq!(scalar, expected, "{label} scalar vs oracle ({q:?})");
                for tier in KernelTier::ALL {
                    let (res, counters) = execute_plan_tiered(store, &q, plan, tier);
                    assert_eq!(res, scalar, "{label} {tier:?} result ({q:?})");
                    assert_eq!(
                        counters, scalar_counters,
                        "{label} {tier:?} counters ({q:?})"
                    );
                    let (par, par_counters) =
                        execute_plan_parallel_tiered(store, &q, plan, 3, tier);
                    assert_eq!(par, scalar, "{label} {tier:?} parallel result ({q:?})");
                    assert_eq!(
                        par_counters, scalar_counters,
                        "{label} {tier:?} parallel counters ({q:?})"
                    );
                }
            }
        }
    }
}

#[test]
fn encoded_plain_and_mixed_stores_stay_bit_identical_under_deletes_and_compaction() {
    let rows = 3 * BLOCK_ROWS + 517;
    let data = encoding_dataset(rows, 0xb10c);
    let tail = encoding_dataset(700, 0xb10d);

    let mut plain = ColumnStore::from_dataset(&data);
    plain.encode_blocks_with(&EncodePolicy::disabled());
    let mut encoded = ColumnStore::from_dataset(&data);
    encoded.encode_blocks_with(&EncodePolicy::default());
    // Mixed: packed full blocks behind a freshly-appended (plain) tail.
    let mut mixed = ColumnStore::from_dataset(&data);
    mixed.encode_blocks_with(&EncodePolicy::default());
    mixed.append_dataset(&tail);

    // The dataset must actually exercise every format at once.
    let (nfor, ndict, nplain, _) = plain.encoding_stats();
    assert_eq!((nfor, ndict, nplain), (0, 0, 0), "disabled policy encoded");
    let (nfor, ndict, nplain, tail_rows) = encoded.encoding_stats();
    assert!(nfor > 0, "no FOR blocks chosen");
    assert!(ndict > 0, "no Dict blocks chosen");
    assert!(nplain > 0, "no Plain blocks chosen");
    assert!(
        tail_rows > 0,
        "partial trailing block should stay unencoded"
    );
    let (_, _, _, mixed_tail) = mixed.encoding_stats();
    assert!(
        mixed_tail >= 4 * tail.len(),
        "appended tail must stay plain"
    );

    let mut stores = [
        ("plain", plain, EncodePolicy::disabled()),
        ("encoded", encoded, EncodePolicy::default()),
        ("mixed", mixed, EncodePolicy::default()),
    ];

    for (label, store, _) in &stores {
        assert_store_matches_oracle(store, label);
    }

    // Tombstone a band of the FOR dimension — the same logical rows in every
    // store — and re-run the whole sweep on the live remainder.
    let del = Query::count(vec![
        Predicate::range(0, FOR_BASE + 1000, FOR_BASE + 2400).unwrap()
    ])
    .unwrap();
    let deleted = stores[0].1.delete_where(&del);
    assert!(deleted > 0, "delete band matched nothing");
    for (label, store, _) in &mut stores[1..] {
        let d = store.delete_where(&del);
        assert!(d >= deleted, "{label} deleted fewer rows than plain");
    }
    for (label, store, _) in &stores {
        assert_store_matches_oracle(store, &format!("{label}+tombstones"));
    }

    // Physically compact and re-encode the survivors: rows shift across
    // block boundaries, so every block is rebuilt from scratch.
    for (label, store, policy) in &mut stores {
        let n = store.len();
        let removed = store.drop_deleted_in(0..n);
        assert!(removed > 0, "{label} compaction removed nothing");
        assert_eq!(store.tombstones().deleted(), 0);
        store.encode_blocks_with(policy);
        assert_store_matches_oracle(store, &format!("{label}+compacted"));
    }
}

#[test]
fn residual_elimination_keeps_every_planner_consistent_with_the_oracle() {
    // Queries whose predicates span whole dimension domains are exactly the
    // ones residual elimination fires on (every visited partition / page
    // bbox is fully contained): the plans must still answer identically to
    // the oracle, and whole-domain predicates must actually be dropped from
    // the residual where the planner supports elimination.
    let data = sweep_dataset(3_000, 0x9e51);
    let workload = Workload::new(vec![Query::count(vec![
        Predicate::range(0, 0, DOMAIN / 4).unwrap()
    ])
    .unwrap()]);
    let indexes = build_all(&data, &workload);
    let cases = vec![
        // Whole-domain predicate on dim1 + selective filter on dim0.
        Query::count(vec![
            Predicate::range(0, 100, 400).unwrap(),
            Predicate::range(1, 0, DOMAIN).unwrap(),
        ])
        .unwrap(),
        // Everything whole-domain: plans may drop every residual check.
        Query::count(vec![
            Predicate::range(0, 0, DOMAIN).unwrap(),
            Predicate::range(2, 0, DOMAIN).unwrap(),
        ])
        .unwrap(),
        // Mixed: one selective, one wide, one whole-domain.
        Query::count(vec![
            Predicate::range(0, 50, 150).unwrap(),
            Predicate::range(1, 10, DOMAIN - 10).unwrap(),
            Predicate::range(3, 0, DOMAIN).unwrap(),
        ])
        .unwrap(),
    ];
    for q in &cases {
        let expected = q.execute_full_scan(&data);
        for idx in &indexes {
            assert_eq!(idx.execute(q), expected, "{} on {q:?}", idx.name());
            let plan = idx.plan(q);
            let residual = plan.residual(q);
            assert!(
                residual.len() <= q.predicates().len(),
                "{} residual grew",
                idx.name()
            );
            // Whole-domain predicates never survive into the residual of the
            // planners that perform elimination (everything except the plain
            // full scan, which guarantees nothing by construction).
            if idx.name() != "FullScan" {
                for p in residual {
                    assert!(
                        !(p.lo == 0 && p.hi >= DOMAIN),
                        "{} kept a whole-domain predicate in its residual: {p:?}",
                        idx.name()
                    );
                }
            }
        }
    }
}
