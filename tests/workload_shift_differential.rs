//! Differential shift-testing harness: incremental re-optimization
//! (`Database::reoptimize`) must be indistinguishable from both the stale
//! index and a from-scratch rebuild in *results* — bit-identical answers for
//! all five aggregations, serial and parallel, with residual-predicate
//! elimination intact — while keeping the shifted workload's scan volume
//! within a small tolerance of the fresh rebuild's.

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Predicate, Query, TsunamiError, Workload};
use tsunami_flood::FloodConfig;
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, Table};
use tsunami_workloads::{synthetic, tpch};

/// Every learned index spec: Tsunami takes the true incremental path,
/// Flood exercises the reindex fallback behind the same API.
fn learned_specs() -> Vec<IndexSpec> {
    vec![
        IndexSpec::Tsunami(TsunamiConfig::fast()),
        IndexSpec::Flood(FloodConfig::fast()),
    ]
}

/// A shifted workload for the synthetic datasets: the original workload
/// skews toward the upper range of the first dimensions, so shift to the
/// *last* dimensions with no skew.
fn synthetic_shifted(data: &Dataset, queries: usize, seed: u64) -> Workload {
    let d = data.num_dims();
    let mut rng = SplitMix::new(seed);
    Workload::new(
        (0..queries)
            .map(|i| {
                let lo = rng.next_below(synthetic::DOMAIN * 7 / 10);
                let span = synthetic::DOMAIN / if i % 2 == 0 { 50 } else { 8 };
                Query::count(vec![
                    Predicate::range(d - 1, lo, lo + span).unwrap(),
                    Predicate::range(d - 2, lo / 2, lo / 2 + 3 * span).unwrap(),
                ])
                .unwrap()
            })
            .collect(),
    )
}

/// (name, data, original workload, shifted workload) sweep cases.
fn cases() -> Vec<(&'static str, Dataset, Workload, Workload)> {
    let tpch_data = tpch::generate(10_000, 21);
    let tpch_original = tpch::workload(&tpch_data, 6, 22);
    let tpch_shifted = tpch::shifted_workload(&tpch_data, 6, 23);

    let corr = synthetic::correlated(6_000, 6, 24);
    let corr_original = synthetic::workload(&corr, 8, 25);
    let corr_shifted = synthetic_shifted(&corr, 24, 26);

    let unc = synthetic::uncorrelated(5_000, 4, 27);
    let unc_original = synthetic::workload(&unc, 8, 28);
    let unc_shifted = synthetic_shifted(&unc, 20, 29);

    vec![
        ("tpch", tpch_data, tpch_original, tpch_shifted),
        ("synthetic-correlated", corr, corr_original, corr_shifted),
        ("synthetic-uncorrelated", unc, unc_original, unc_shifted),
    ]
}

/// Expands a workload's predicate sets across all five aggregations, cycling
/// the aggregation input dimension.
fn all_aggregations(workload: &Workload, dims: usize) -> Vec<Query> {
    let mut out = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        let agg_dim = i % dims;
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(agg_dim),
            Aggregation::Min(agg_dim),
            Aggregation::Max(agg_dim),
            Aggregation::Avg(agg_dim),
        ] {
            out.push(Query::new(q.predicates().to_vec(), agg).unwrap());
        }
    }
    out
}

#[test]
fn incremental_reopt_is_bit_identical_to_stale_and_rebuild() -> Result<(), TsunamiError> {
    for (name, data, original, shifted) in cases() {
        for spec in learned_specs() {
            let mut db = Database::new();
            db.create_table_unnamed("t", data.clone(), &original, &spec)?;
            let stale = db.table("t")?;
            let incremental = db.reoptimize("t", &shifted, &spec)?;
            let rebuilt = db.reindex("t", &shifted, &spec)?;

            // Results are layout-independent: every aggregation, on both the
            // shifted and the original queries, serially and in parallel,
            // with counters proving the parallel executor ran the same plan.
            let mut probes = all_aggregations(&shifted, data.num_dims());
            probes.extend(all_aggregations(&original, data.num_dims()));
            for q in &probes {
                let oracle = q.execute_full_scan(&data);
                for (label, table) in [
                    ("stale", &stale),
                    ("incremental", &incremental),
                    ("rebuilt", &rebuilt),
                ] {
                    let (serial, serial_stats) = table.execute_with_stats(q)?;
                    assert_eq!(
                        serial,
                        oracle,
                        "{name}/{}/{label} diverged on {q:?}",
                        spec.label()
                    );
                    let (parallel, parallel_stats) = table.index().execute_parallel(q, 4);
                    assert_eq!(
                        parallel,
                        oracle,
                        "{name}/{}/{label} parallel diverged on {q:?}",
                        spec.label()
                    );
                    assert_eq!(
                        parallel_stats,
                        serial_stats,
                        "{name}/{}/{label} parallel counters diverged on {q:?}",
                        spec.label()
                    );
                }
            }
        }
    }
    Ok(())
}

#[test]
fn incremental_reopt_keeps_residual_elimination_intact() -> Result<(), TsunamiError> {
    // Whole-domain predicates must still be dropped from the residual after
    // incremental re-optimization — including for regions whose cell
    // enumeration fell back to a whole-region scan, where the guarantee
    // comes from the Grid-Tree region bounds instead of the grid.
    let (name, data, original, shifted) = cases().remove(0);
    let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
    let mut db = Database::new();
    db.create_table_unnamed("t", data.clone(), &original, &spec)?;
    let incremental = db.reoptimize("t", &shifted, &spec)?;

    // Probe with a whole-domain predicate on `discount` (dim 2): it is
    // uncorrelated with every other TPC-H dimension, so no region maps it
    // away (filtered *mapped* dimensions stay residual by design).
    const PROBE_DIM: usize = 2;
    let (qlo, qhi) = data.domain(PROBE_DIM).expect("non-empty");
    let whole = Predicate::range(PROBE_DIM, qlo, qhi).unwrap();
    for base in shifted.queries().iter().step_by(5) {
        let mut predicates = vec![whole];
        predicates.extend(
            base.predicates()
                .iter()
                .copied()
                .filter(|p| p.dim != PROBE_DIM),
        );
        let q = Query::count(predicates).unwrap();
        assert_eq!(
            incremental.execute(&q)?,
            q.execute_full_scan(&data),
            "{name}: {q:?}"
        );
        let plan = incremental.index().plan(&q);
        assert!(
            plan.residual(&q).iter().all(|p| p.dim != PROBE_DIM),
            "{name}: whole-domain predicate survived into the residual of {q:?}"
        );
    }
    Ok(())
}

fn avg_scanned(table: &Table, workload: &Workload) -> Result<f64, TsunamiError> {
    let mut total = 0usize;
    for q in workload.queries() {
        total += table.execute_with_stats(q)?.1.points_scanned;
    }
    Ok(total as f64 / workload.len().max(1) as f64)
}

#[test]
fn incremental_reopt_scan_volume_stays_close_to_a_fresh_rebuild() -> Result<(), TsunamiError> {
    // Re-optimization must actually adapt the layout: on the shifted
    // workload its scan volume may not exceed the fresh rebuild's by more
    // than a modest factor (cold regions with stale-but-rarely-hit layouts
    // are allowed; wholesale staleness is not).
    for (name, data, original, shifted) in cases() {
        for spec in learned_specs() {
            let mut db = Database::new();
            db.create_table_unnamed("t", data.clone(), &original, &spec)?;
            let incremental = db.reoptimize("t", &shifted, &spec)?;
            let rebuilt = db.reindex("t", &shifted, &spec)?;

            let inc = avg_scanned(&incremental, &shifted)?;
            let fresh = avg_scanned(&rebuilt, &shifted)?;
            // Absolute slack keeps tiny-scan cases (a few hundred points)
            // from flapping on block-granularity effects.
            let tolerance = fresh * 1.5 + 256.0;
            assert!(
                inc <= tolerance,
                "{name}/{}: incremental re-opt scans {inc:.0} points/query vs {fresh:.0} \
                 after a fresh rebuild (tolerance {tolerance:.0})",
                spec.label()
            );
        }
    }
    Ok(())
}
