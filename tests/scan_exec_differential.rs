//! Differential tests for the shared scan-execution engine: every index in
//! the workspace — Tsunami, Flood, and all five baselines — must agree with
//! the deliberately scalar, row-at-a-time `Query::execute_full_scan` oracle
//! on randomized workloads across all five aggregations, through both the
//! serial and the parallel executor.
//!
//! The oracle never touches `tsunami_core::exec`, so these tests genuinely
//! cross-check the vectorized selection-vector kernels, the exact-range fast
//! paths (including the MIN/MAX value-fold fallback), and the plan-merging
//! logic against an independent implementation.

use tsunami_baselines::{ClusteredSingleDimIndex, FullScanIndex, HyperOctree, KdTree, ZOrderIndex};
use tsunami_core::sample::SplitMix;
use tsunami_core::{
    AggResult, Aggregation, CostModel, Dataset, MultiDimIndex, Predicate, Query, Workload,
};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{TsunamiConfig, TsunamiIndex};

const ALL_AGGREGATIONS: [fn(usize) -> Aggregation; 5] = [
    |_| Aggregation::Count,
    Aggregation::Sum,
    Aggregation::Min,
    Aggregation::Max,
    Aggregation::Avg,
];

/// A random dataset with one correlated dimension and one low-cardinality
/// dimension (provoking duplicate-heavy cells and exact ranges).
fn random_dataset(rng: &mut SplitMix) -> Dataset {
    let rows = 400 + rng.next_below(1_600) as usize;
    let d0: Vec<u64> = (0..rows).map(|_| rng.next_below(20_000)).collect();
    let d1: Vec<u64> = d0.iter().map(|&v| v * 2 + rng.next_below(500)).collect();
    let d2: Vec<u64> = (0..rows).map(|_| rng.next_below(16)).collect();
    Dataset::from_columns(vec![d0, d1, d2]).unwrap()
}

fn random_workload(rng: &mut SplitMix, dims: usize, n: usize) -> Workload {
    Workload::new(
        (0..n)
            .map(|_| {
                let dim = rng.next_below(dims as u64) as usize;
                let lo = rng.next_below(18_000);
                Query::count(vec![Predicate::range(dim, lo, lo + 2_500).unwrap()]).unwrap()
            })
            .collect(),
    )
}

fn build_all(data: &Dataset, workload: &Workload) -> Vec<Box<dyn MultiDimIndex>> {
    let cost = CostModel::default();
    vec![
        Box::new(
            TsunamiIndex::build_with_cost(data, workload, &cost, &TsunamiConfig::fast()).unwrap(),
        ),
        Box::new(FloodIndex::build(
            data,
            workload,
            &cost,
            &FloodConfig::fast(),
        )),
        Box::new(ClusteredSingleDimIndex::build(data, workload)),
        Box::new(ZOrderIndex::build(data, workload, 128)),
        Box::new(HyperOctree::build(data, workload, 128)),
        Box::new(KdTree::build(data, workload, 128)),
        Box::new(FullScanIndex::build(data)),
    ]
}

#[test]
fn every_index_agrees_with_oracle_on_every_aggregation() {
    for seed in 0..6u64 {
        let mut rng = SplitMix::new(seed * 911 + 13);
        let data = random_dataset(&mut rng);
        let workload = random_workload(&mut rng, data.num_dims(), 10);
        let indexes = build_all(&data, &workload);
        for q in workload.queries() {
            for agg_ctor in ALL_AGGREGATIONS {
                let agg = agg_ctor(1);
                let q = Query::new(q.predicates().to_vec(), agg).unwrap();
                let expected = q.execute_full_scan(&data);
                for idx in &indexes {
                    assert_eq!(
                        idx.execute(&q),
                        expected,
                        "{} disagrees with oracle (seed {seed}, {agg:?}, {q:?})",
                        idx.name()
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_executor_matches_serial_for_every_index_and_aggregation() {
    let mut rng = SplitMix::new(4242);
    // Large enough that the parallel executor actually splits work.
    let rows = 30_000usize;
    let d0: Vec<u64> = (0..rows).map(|_| rng.next_below(50_000)).collect();
    let d1: Vec<u64> = d0.iter().map(|&v| v * 3 + rng.next_below(1_000)).collect();
    let d2: Vec<u64> = (0..rows).map(|_| rng.next_below(64)).collect();
    let data = Dataset::from_columns(vec![d0, d1, d2]).unwrap();
    let workload = random_workload(&mut rng, 3, 6);
    let indexes = build_all(&data, &workload);
    for q in workload.queries() {
        for agg_ctor in ALL_AGGREGATIONS {
            let q = Query::new(q.predicates().to_vec(), agg_ctor(1)).unwrap();
            for idx in &indexes {
                let (serial, serial_stats) = idx.execute_with_stats(&q);
                for threads in [2, 8] {
                    let (parallel, parallel_stats) = idx.execute_parallel(&q, threads);
                    assert_eq!(
                        serial,
                        parallel,
                        "{} result ({threads} threads)",
                        idx.name()
                    );
                    assert_eq!(
                        serial_stats,
                        parallel_stats,
                        "{} counters ({threads} threads)",
                        idx.name()
                    );
                }
            }
        }
    }
}

#[test]
fn exact_range_min_max_fallback_is_exercised_and_correct() {
    // A clustered single-dimension index filtered only on its sort dimension
    // plans a single *exact* range; MIN/MAX aggregations must then take the
    // value-fold fallback (the bulk-count/bulk-sum shortcut cannot answer
    // them) and still agree with the oracle.
    let mut rng = SplitMix::new(777);
    let data = random_dataset(&mut rng);
    let idx = ClusteredSingleDimIndex::build_on_dim(&data, 0);
    for _ in 0..25 {
        let lo = rng.next_below(18_000);
        let preds = vec![Predicate::range(0, lo, lo + 3_000).unwrap()];
        // The plan really is exact: one range, flagged exact.
        let probe = Query::count(preds.clone()).unwrap();
        let plan = idx.plan(&probe);
        assert!(plan.num_ranges() <= 1);
        if let Some(r) = plan.ranges().first() {
            assert!(r.exact, "single-filtered sort dim must plan an exact range");
        }
        for agg in [Aggregation::Min(1), Aggregation::Max(1)] {
            let q = Query::new(preds.clone(), agg).unwrap();
            assert_eq!(q.execute_full_scan(&data), idx.execute(&q), "{agg:?}");
        }
    }
    // Exact ranges also arise from fully contained tree leaves; cross-check
    // MIN/MAX there too.
    let w = random_workload(&mut rng, data.num_dims(), 8);
    let kd = KdTree::build(&data, &w, 64);
    for q in w.queries() {
        for agg in [Aggregation::Min(2), Aggregation::Max(2)] {
            let q = Query::new(q.predicates().to_vec(), agg).unwrap();
            assert_eq!(kd.execute(&q), q.execute_full_scan(&data), "{agg:?}");
        }
    }
}

#[test]
fn single_dim_residual_predicates_stay_correct() {
    // Multi-dimension queries on the single-dim index go through the
    // residual-predicate path (the sort dimension is guaranteed by binary
    // search and only the other predicates are re-checked).
    let mut rng = SplitMix::new(31337);
    let data = random_dataset(&mut rng);
    let idx = ClusteredSingleDimIndex::build_on_dim(&data, 0);
    for _ in 0..25 {
        let lo0 = rng.next_below(15_000);
        let lo2 = rng.next_below(12);
        let q = Query::count(vec![
            Predicate::range(0, lo0, lo0 + 4_000).unwrap(),
            Predicate::range(2, lo2, lo2 + 3).unwrap(),
        ])
        .unwrap();
        assert_eq!(idx.execute(&q), q.execute_full_scan(&data), "{q:?}");
    }
}

#[test]
fn empty_and_degenerate_queries_are_consistent() {
    let mut rng = SplitMix::new(99);
    let data = random_dataset(&mut rng);
    let workload = random_workload(&mut rng, data.num_dims(), 4);
    let indexes = build_all(&data, &workload);
    let cases = vec![
        // No predicates: whole-table aggregate.
        Query::new(vec![], Aggregation::Avg(1)).unwrap(),
        // Out-of-domain: empty result.
        Query::new(
            vec![Predicate::range(0, 1_000_000, 2_000_000).unwrap()],
            Aggregation::Min(1),
        )
        .unwrap(),
        // Point query.
        Query::new(vec![Predicate::eq(2, 7)], Aggregation::Sum(0)).unwrap(),
    ];
    for q in &cases {
        let expected = q.execute_full_scan(&data);
        for idx in &indexes {
            assert_eq!(idx.execute(q), expected, "{} on {q:?}", idx.name());
        }
    }
    // Out-of-domain MIN is None everywhere.
    assert_eq!(cases[1].execute_full_scan(&data), AggResult::Min(None));
}
