//! Scheduler correctness: concurrent execution through the engine's worker
//! pool must be indistinguishable from serial execution — across every index
//! family, every aggregation kind, and arbitrary submit/poll interleavings.

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Predicate, Query, Workload};
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, Scheduler};

fn dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed);
    Dataset::from_columns(vec![
        (0..rows).map(|_| rng.next_below(10_000)).collect(),
        (0..rows).map(|_| rng.next_below(1_000)).collect(),
        (0..rows).map(|_| rng.next_below(100_000)).collect(),
    ])
    .unwrap()
}

/// A mixed-aggregation workload: COUNT, SUM, MIN, MAX, AVG over random
/// ranges, including some empty-match ranges.
fn mixed_workload(n: usize, dims: usize, seed: u64) -> Workload {
    let mut rng = SplitMix::new(seed);
    Workload::new(
        (0..n)
            .map(|i| {
                let d = rng.next_below(dims as u64) as usize;
                let lo = rng.next_below(12_000);
                let hi = lo + rng.next_below(4_000);
                let agg_dim = rng.next_below(dims as u64) as usize;
                let agg = match i % 5 {
                    0 => Aggregation::Count,
                    1 => Aggregation::Sum(agg_dim),
                    2 => Aggregation::Min(agg_dim),
                    3 => Aggregation::Max(agg_dim),
                    _ => Aggregation::Avg(agg_dim),
                };
                Query::new(vec![Predicate::range(d, lo, hi).unwrap()], agg).unwrap()
            })
            .collect(),
    )
}

#[test]
fn concurrent_batches_match_serial_execution_across_all_indexes() {
    let data = dataset(3_000, 42);
    let workload = mixed_workload(40, data.num_dims(), 7);
    let mut db = Database::new();
    for spec in IndexSpec::all_fast() {
        db.create_table_unnamed(spec.label(), data.clone(), &workload, &spec)
            .expect("table builds");
    }
    assert_eq!(db.num_tables(), 7);

    // One shared batch interleaving queries from all 7 tables.
    let mut batch = Vec::new();
    for table in db.tables() {
        batch.extend(table.prepare_workload(&workload).unwrap());
    }

    for workers in [1usize, 2, 4, 8] {
        let scheduler = Scheduler::new(workers);
        let concurrent = scheduler.execute_batch(&batch).unwrap();
        assert_eq!(scheduler.completed() as usize, batch.len());
        for (i, (got, q)) in concurrent.iter().zip(&batch).enumerate() {
            let serial = q.execute();
            let oracle = q.execute_oracle();
            assert_eq!(
                *got,
                serial,
                "workers={workers} query {i} on {}: scheduler != serial",
                q.table().name()
            );
            assert_eq!(
                *got,
                oracle,
                "workers={workers} query {i} on {}: scheduler != oracle",
                q.table().name()
            );
        }
    }
}

#[test]
fn seeded_submit_poll_stress_preserves_per_handle_results() {
    let data = dataset(2_000, 99);
    let workload = mixed_workload(30, data.num_dims(), 13);
    let mut db = Database::new();
    let table = db
        .create_table_unnamed(
            "t",
            data,
            &workload,
            &IndexSpec::Tsunami(TsunamiConfig::fast()),
        )
        .unwrap();
    let prepared = table.prepare_workload(&workload).unwrap();
    let expected: Vec<_> = prepared.iter().map(|q| q.execute()).collect();

    // Seeded stress: random bursts of submissions interleaved with random
    // polls and waits; every handle must come back with its own query's
    // result no matter the interleaving or queue pressure.
    for seed in 0..6u64 {
        let mut rng = SplitMix::new(seed * 1_117 + 5);
        let workers = 1 + (seed as usize % 4);
        let scheduler = Scheduler::with_queue_capacity(workers, 8);
        let mut pending: Vec<(usize, tsunami_suite::QueryHandle)> = Vec::new();
        let mut submitted = 0usize;
        let total = 120usize;
        while submitted < total || !pending.is_empty() {
            let burst = 1 + rng.next_below(7) as usize;
            for _ in 0..burst {
                if submitted >= total {
                    break;
                }
                let qi = rng.next_below(prepared.len() as u64) as usize;
                // Blocking submit exercises backpressure on the tiny queue.
                let handle = scheduler.submit(prepared[qi].clone()).unwrap();
                pending.push((qi, handle));
                submitted += 1;
            }
            // Poll a random pending handle; wait on another.
            if !pending.is_empty() {
                let pi = rng.next_below(pending.len() as u64) as usize;
                let (qi, handle) = &pending[pi];
                if let Some(result) = handle.poll() {
                    assert_eq!(result.unwrap(), expected[*qi], "seed {seed}: poll mismatch");
                    assert!(handle.is_done());
                    pending.swap_remove(pi);
                }
            }
            if pending.len() > 16 || (submitted >= total && !pending.is_empty()) {
                let (qi, handle) =
                    pending.swap_remove(rng.next_below(pending.len() as u64) as usize);
                assert_eq!(
                    handle.wait().unwrap(),
                    expected[qi],
                    "seed {seed}: wait mismatch"
                );
            }
        }
        assert_eq!(scheduler.completed() as usize, total, "seed {seed}");
    }
}

#[test]
fn batch_results_preserve_submission_order() {
    let data = dataset(2_000, 3);
    let mut db = Database::new();
    let table = db
        .create_table_unnamed("t", data, &Workload::default(), &IndexSpec::FullScan)
        .unwrap();
    // Queries with pairwise-distinct COUNT results so order mix-ups surface.
    let batch: Vec<_> = (0..50u64)
        .map(|i| {
            table
                .query()
                .range(0usize, 0, 100 + i * 37)
                .unwrap()
                .prepare()
                .unwrap()
        })
        .collect();
    let scheduler = Scheduler::new(4);
    let results = scheduler.execute_batch(&batch).unwrap();
    for (r, q) in results.iter().zip(&batch) {
        assert_eq!(*r, q.execute());
    }
}
