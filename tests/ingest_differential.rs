//! Differential ingest-testing harness: absorbing new rows into a built
//! index (`Database::insert_batch`, backed by `TsunamiIndex::ingest` /
//! `FloodIndex::ingest` / `ClusteredSingleDimIndex::ingest`) must be
//! indistinguishable from an index rebuilt over the full dataset in
//! *results* — bit-identical answers for all five aggregations, serial and
//! parallel, with residual-predicate elimination intact — while keeping the
//! post-ingest scan volume within a small tolerance of the fresh rebuild's.

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Point, Predicate, Query, TsunamiError, Workload};
use tsunami_flood::FloodConfig;
use tsunami_index::TsunamiConfig;
use tsunami_suite::{Database, IndexSpec, Table};
use tsunami_workloads::{synthetic, tpch};

/// Every ingest-capable index family: Tsunami routes rows through its Grid
/// Tree, Flood and SingleDim take the sorted-merge path, FullScan appends.
fn ingest_specs() -> Vec<IndexSpec> {
    vec![
        IndexSpec::Tsunami(TsunamiConfig::fast()),
        IndexSpec::Flood(FloodConfig::fast()),
        IndexSpec::SingleDim,
        IndexSpec::FullScan,
    ]
}

/// An ingest batch continuing the dataset's own generator (the realistic
/// stream), plus a tail of rows *outside* the build-time domain of every
/// dimension — the case that breaks naive ingest, because grid models and
/// region bounds learned at build time know nothing about those values.
fn batch_for(full: &Dataset, base_rows: usize, seed: u64) -> Vec<Point> {
    let mut rows: Vec<Point> = (base_rows..full.len()).map(|r| full.row(r)).collect();
    let mut rng = SplitMix::new(seed);
    let maxes: Vec<u64> = (0..full.num_dims())
        .map(|d| full.domain(d).unwrap().1)
        .collect();
    for _ in 0..rows.len() / 20 + 2 {
        rows.push(
            maxes
                .iter()
                .map(|&m| m + 1 + rng.next_below(m / 4 + 10))
                .collect(),
        );
    }
    rows
}

/// (name, base data, full generator output, workload) sweep cases. The base
/// dataset is the full stream truncated; the batch is its continuation.
fn cases() -> Vec<(&'static str, Dataset, Vec<Point>, Workload)> {
    let tpch_full = tpch::generate(9_000, 41);
    let tpch_base = Dataset::from_columns(
        (0..tpch_full.num_dims())
            .map(|d| tpch_full.column(d)[..8_200].to_vec())
            .collect(),
    )
    .unwrap();
    let tpch_workload = tpch::workload(&tpch_base, 6, 42);
    let tpch_batch = batch_for(&tpch_full, 8_200, 43);

    let corr_full = synthetic::correlated(5_500, 5, 44);
    let corr_base = Dataset::from_columns(
        (0..corr_full.num_dims())
            .map(|d| corr_full.column(d)[..5_000].to_vec())
            .collect(),
    )
    .unwrap();
    let corr_workload = synthetic::workload(&corr_base, 8, 45);
    let corr_batch = batch_for(&corr_full, 5_000, 46);

    vec![
        ("tpch", tpch_base, tpch_batch, tpch_workload),
        ("synthetic-correlated", corr_base, corr_batch, corr_workload),
    ]
}

/// Expands a workload's predicate sets across all five aggregations, cycling
/// the aggregation input dimension.
fn all_aggregations(workload: &Workload, dims: usize) -> Vec<Query> {
    let mut out = Vec::new();
    for (i, q) in workload.queries().iter().enumerate() {
        let agg_dim = i % dims;
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(agg_dim),
            Aggregation::Min(agg_dim),
            Aggregation::Max(agg_dim),
            Aggregation::Avg(agg_dim),
        ] {
            out.push(Query::new(q.predicates().to_vec(), agg).unwrap());
        }
    }
    out
}

/// Queries probing exactly where ingest can go wrong: the out-of-domain tail
/// beyond every build-time max, and the seam spanning old and new domains.
fn tail_probes(base: &Dataset, merged: &Dataset) -> Vec<Query> {
    let mut out = Vec::new();
    for dim in 0..base.num_dims() {
        let (_, old_hi) = base.domain(dim).unwrap();
        let (_, new_hi) = merged.domain(dim).unwrap();
        out.push(Query::count(vec![Predicate::range(dim, old_hi + 1, new_hi).unwrap()]).unwrap());
        out.push(
            Query::new(
                vec![Predicate::range(dim, old_hi / 2, new_hi).unwrap()],
                Aggregation::Sum((dim + 1) % base.num_dims()),
            )
            .unwrap(),
        );
    }
    out
}

fn merged_dataset(base: &Dataset, batch: &[Point]) -> Dataset {
    let mut merged = base.clone();
    for row in batch {
        merged.push_row(row).unwrap();
    }
    merged
}

/// Registers `base` under `spec`, ingests `batch` in three sub-batches
/// through the engine, and returns the post-ingest table.
fn ingest_through_engine(
    db: &mut Database,
    base: &Dataset,
    batch: &[Point],
    workload: &Workload,
    spec: &IndexSpec,
) -> Result<Table, TsunamiError> {
    db.create_table_unnamed("t", base.clone(), workload, spec)?;
    let third = batch.len().div_ceil(3);
    let mut table = db.table("t")?;
    for chunk in batch.chunks(third.max(1)) {
        table = db.insert_batch("t", chunk)?;
    }
    Ok(table)
}

#[test]
fn ingest_is_bit_identical_to_a_full_rebuild() -> Result<(), TsunamiError> {
    for (name, base, batch, workload) in cases() {
        let merged = merged_dataset(&base, &batch);
        for spec in ingest_specs() {
            let mut db = Database::new();
            let ingested = ingest_through_engine(&mut db, &base, &batch, &workload, &spec)?;
            assert_eq!(ingested.num_rows(), merged.len());
            // The reference: the same family built from the full dataset.
            let rebuilt = db.create_table_unnamed("rebuilt", merged.clone(), &workload, &spec)?;

            let mut probes = all_aggregations(&workload, base.num_dims());
            probes.extend(tail_probes(&base, &merged));
            for q in &probes {
                let oracle = q.execute_full_scan(&merged);
                for (label, table) in [("ingested", &ingested), ("rebuilt", &rebuilt)] {
                    let (serial, serial_stats) = table.execute_with_stats(q)?;
                    assert_eq!(
                        serial,
                        oracle,
                        "{name}/{}/{label} diverged on {q:?}",
                        spec.label()
                    );
                    let (parallel, parallel_stats) = table.index().execute_parallel(q, 4);
                    assert_eq!(
                        parallel,
                        oracle,
                        "{name}/{}/{label} parallel diverged on {q:?}",
                        spec.label()
                    );
                    assert_eq!(
                        parallel_stats,
                        serial_stats,
                        "{name}/{}/{label} parallel counters diverged on {q:?}",
                        spec.label()
                    );
                }
            }
        }
    }
    Ok(())
}

/// The probe queries for the residual check: each of the workload's sampled
/// predicate sets with a `(lo, hi)` whole-domain predicate on `dim` spliced
/// in.
fn residual_probes(workload: &Workload, dim: usize, lo: u64, hi: u64) -> Vec<Query> {
    workload
        .queries()
        .iter()
        .step_by(4)
        .map(|base_q| {
            let mut preds = vec![Predicate::range(dim, lo, hi).unwrap()];
            preds.extend(base_q.predicates().iter().copied().filter(|p| p.dim != dim));
            Query::count(preds).unwrap()
        })
        .collect()
}

#[test]
fn residual_elimination_stays_sound_post_ingest() -> Result<(), TsunamiError> {
    // Two directions, both over the *widened* reality: a whole-domain
    // predicate the pre-ingest index eliminated from the residual must still
    // be eliminated afterwards (over the merged domain), and a predicate
    // covering only the *old* domain must NOT be treated as whole-domain
    // anymore — the ingested tail falls outside it.
    let (name, base, batch, workload) = cases().remove(0);
    let merged = merged_dataset(&base, &batch);
    // Staleness escalation stays off for the Tsunami table: a local layout
    // re-optimization may legitimately *map away* the probe dimension in
    // some region (filtered mapped dims always stay residual by design),
    // which would invalidate the probe's premise, not the property. The
    // pure re-grid path — re-fit models, widened bounds and domains — is
    // what must keep elimination sound.
    let specs = vec![
        IndexSpec::Tsunami(TsunamiConfig::fast().with_ingest_staleness(1.0, 1.0)),
        IndexSpec::Flood(FloodConfig::fast()),
        IndexSpec::SingleDim,
    ];
    for spec in specs {
        // Calibrate per (dimension, probe query): where does the
        // *pre-ingest* index eliminate a whole-domain predicate? (A query
        // whose planned regions include one that maps the dimension away
        // keeps it residual by design — a property of the layout, not of
        // ingest.)
        let mut pre_db = Database::new();
        let pre = pre_db.create_table_unnamed("pre", base.clone(), &workload, &spec)?;
        let mut qualified: Vec<(usize, usize)> = Vec::new();
        for dim in 0..base.num_dims() {
            let (lo, hi) = base.domain(dim).unwrap();
            for (i, q) in residual_probes(&workload, dim, lo, hi).iter().enumerate() {
                if pre.index().plan(q).residual(q).iter().all(|p| p.dim != dim) {
                    qualified.push((dim, i));
                }
            }
        }
        assert!(
            !qualified.is_empty(),
            "{name}/{}: no (dimension, query) pair qualifies for the residual probe",
            spec.label()
        );

        let mut db = Database::new();
        let ingested = ingest_through_engine(&mut db, &base, &batch, &workload, &spec)?;
        for &(dim, i) in &qualified {
            let (mlo, mhi) = merged.domain(dim).unwrap();
            let q = &residual_probes(&workload, dim, mlo, mhi)[i];
            assert_eq!(
                ingested.execute(q)?,
                q.execute_full_scan(&merged),
                "{name}/{}: {q:?}",
                spec.label()
            );
            let plan = ingested.index().plan(q);
            assert!(
                plan.residual(q).iter().all(|p| p.dim != dim),
                "{name}/{}: merged-whole-domain predicate on dim {dim} survived into \
                 the residual of {q:?}",
                spec.label()
            );
            // The old domain no longer covers the table: results must
            // exclude the ingested out-of-domain tail.
            let (olo, ohi) = base.domain(dim).unwrap();
            let q = &residual_probes(&workload, dim, olo, ohi)[i];
            assert_eq!(
                ingested.execute(q)?,
                q.execute_full_scan(&merged),
                "{name}/{}: stale-domain predicate mishandled in {q:?}",
                spec.label()
            );
        }
    }
    Ok(())
}

fn avg_scanned(table: &Table, workload: &Workload) -> Result<f64, TsunamiError> {
    let mut total = 0usize;
    for q in workload.queries() {
        total += table.execute_with_stats(q)?.1.points_scanned;
    }
    Ok(total as f64 / workload.len().max(1) as f64)
}

#[test]
fn ingest_scan_volume_stays_close_to_a_fresh_rebuild() -> Result<(), TsunamiError> {
    // Ingest must keep the layout effective, not just correct: on the
    // optimized-for workload the post-ingest scan volume may not exceed the
    // fresh rebuild's by more than a modest factor.
    for (name, base, batch, workload) in cases() {
        let merged = merged_dataset(&base, &batch);
        for spec in [
            IndexSpec::Tsunami(TsunamiConfig::fast()),
            IndexSpec::Flood(FloodConfig::fast()),
            IndexSpec::SingleDim,
        ] {
            let mut db = Database::new();
            let ingested = ingest_through_engine(&mut db, &base, &batch, &workload, &spec)?;
            let rebuilt = db.create_table_unnamed("rebuilt", merged.clone(), &workload, &spec)?;

            let ing = avg_scanned(&ingested, &workload)?;
            let fresh = avg_scanned(&rebuilt, &workload)?;
            // Absolute slack keeps tiny-scan cases from flapping on
            // block-granularity effects.
            let tolerance = fresh * 1.5 + 256.0;
            assert!(
                ing <= tolerance,
                "{name}/{}: post-ingest scans {ing:.0} points/query vs {fresh:.0} after a \
                 fresh rebuild (tolerance {tolerance:.0})",
                spec.label()
            );
        }
    }
    Ok(())
}
