//! Sharded scatter-gather vs a single unsharded `Database`: bit-identical
//! results across index families, shard counts, all five aggregations, and
//! ingest + auto-reoptimization.

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Point, Predicate, Query};
use tsunami_engine::{shard_of, Database, IndexSpec, ShardedDatabase};
use tsunami_index::TsunamiConfig;
use tsunami_workloads::tpch;

fn small_tsunami() -> IndexSpec {
    IndexSpec::Tsunami(TsunamiConfig {
        optimizer_sample_size: 400,
        optimizer_max_iters: 3,
        max_cells_per_grid: 1 << 10,
        max_tree_depth: 3,
        ..TsunamiConfig::default()
    })
}

fn check_queries(data: &Dataset, seed: u64) -> Vec<Query> {
    let mut rng = SplitMix::new(seed);
    let n = data.len() as u64;
    let mut queries = Vec::new();
    for i in 0..12 {
        let dim = i % data.num_dims();
        let lo = rng.next_below(n.max(1));
        let preds = vec![Predicate::range(0, lo, lo + rng.next_below(n.max(1))).unwrap()];
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(dim),
            Aggregation::Min(dim),
            Aggregation::Max(dim),
            Aggregation::Avg(dim),
        ] {
            queries.push(Query::new(preds.clone(), agg).unwrap());
        }
    }
    queries
}

#[test]
fn learned_indexes_stay_bit_identical_across_shard_counts() {
    let data = tpch::generate(3_000, 21);
    let workload = tpch::workload(&data, 4, 22);
    let columns: Vec<&str> = tpch::COLUMNS.to_vec();
    for spec in [small_tsunami(), IndexSpec::FullScan] {
        let mut oracle = Database::new();
        oracle
            .create_table("lineitem", &columns, data.clone(), &workload, &spec)
            .unwrap();
        let solo = oracle.table("lineitem").unwrap();
        for shards in [1, 4, 6] {
            let mut sharded = ShardedDatabase::new(shards);
            sharded
                .create_table("lineitem", &columns, &data, &workload, &spec)
                .unwrap();
            let wide = sharded.table("lineitem").unwrap();
            for q in check_queries(&data, 31) {
                assert_eq!(
                    wide.execute(&q).unwrap(),
                    solo.execute(&q).unwrap(),
                    "{} K={shards} diverged on {q:?}",
                    spec.label()
                );
            }
        }
    }
}

#[test]
fn ingest_then_auto_reoptimize_preserves_bit_identity() {
    let data = tpch::generate(2_000, 5);
    let workload = tpch::workload(&data, 4, 6);
    let columns: Vec<&str> = tpch::COLUMNS.to_vec();
    let spec = small_tsunami();

    let mut oracle = Database::new();
    oracle
        .create_table("lineitem", &columns, data.clone(), &workload, &spec)
        .unwrap();
    let mut sharded = ShardedDatabase::new(4);
    sharded
        .create_table("lineitem", &columns, &data, &workload, &spec)
        .unwrap();

    // Grow both sides by 40% — enough to cross the data-drift bar.
    let mut rng = SplitMix::new(99);
    let extra: Vec<Point> = (0..800)
        .map(|_| {
            (0..data.num_dims())
                .map(|_| rng.next_below(10_000))
                .collect()
        })
        .collect();
    oracle.insert_batch("lineitem", &extra).unwrap();
    sharded.insert_batch("lineitem", &extra).unwrap();
    assert_eq!(sharded.num_rows("lineitem").unwrap(), 2_800);

    let solo = oracle.table("lineitem").unwrap();
    let wide = sharded.table("lineitem").unwrap();
    for q in check_queries(&data, 41) {
        assert_eq!(wide.execute(&q).unwrap(), solo.execute(&q).unwrap());
    }

    // Data drift (40% inserted) must trigger shard re-optimizations, and
    // the rebuilt layouts must still answer identically.
    let reoptimized = sharded.auto_reoptimize_all().unwrap();
    assert!(reoptimized > 0, "40% growth triggered no re-optimization");
    let wide = sharded.table("lineitem").unwrap();
    for q in check_queries(&data, 41) {
        assert_eq!(wide.execute(&q).unwrap(), solo.execute(&q).unwrap());
    }
}

#[test]
fn hash_routing_is_stable_and_total() {
    let data = tpch::generate(500, 3);
    for k in [1usize, 2, 5, 16] {
        let mut counts = vec![0usize; k];
        for r in 0..data.len() {
            let row = data.row(r);
            let s = shard_of(&row, k);
            assert_eq!(s, shard_of(&row, k), "unstable placement");
            counts[s] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), data.len());
        if k > 1 {
            // FNV over 8 correlated columns should not collapse to one shard.
            assert!(
                counts.iter().filter(|&&c| c > 0).count() > 1,
                "all rows landed on one of {k} shards"
            );
        }
    }
}
