//! `tsunami-suite` is the workspace-level package that hosts the repository's
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`). It intentionally exposes no API of its own; see the
//! `tsunami-index` crate for the library entry point.
