//! `tsunami-suite` is the workspace-level package that hosts the repository's
//! runnable examples (`examples/`) and cross-crate integration tests
//! (`tests/`), and re-exports the `tsunami-engine` front-end as the
//! suite's public API.
//!
//! Application code starts here:
//!
//! ```
//! use tsunami_suite::{Database, IndexSpec};
//! use tsunami_core::{Dataset, Workload};
//!
//! let data = Dataset::from_columns(vec![(0..100u64).collect(), (0..100u64).collect()]).unwrap();
//! let mut db = Database::new();
//! db.create_table("t", &["a", "b"], data, &Workload::default(), &IndexSpec::tsunami())?;
//! let hits = db.table("t")?.query().range("a", 10, 29)?.execute()?;
//! assert_eq!(hits.as_count(), Some(20));
//! # Ok::<(), tsunami_core::TsunamiError>(())
//! ```
//!
//! Lower layers remain available for direct use: `tsunami-index` for the
//! learned index itself, `tsunami-core` for the data/query model and the
//! shared scan executor.

pub use tsunami_engine::{
    shard_of, ColumnRef, Database, IndexSpec, PageSize, PreparedQuery, QueryBuilder, QueryHandle,
    ReoptReport, Scheduler, SchedulerConfig, Schema, ShardedDatabase, ShardedTable, SharedIndex,
    ShiftReport, Table, WorkloadMonitor,
};
