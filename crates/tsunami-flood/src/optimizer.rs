//! Cost-model-driven optimization of Flood's per-dimension partition counts.
//!
//! Flood learns which dimensions to prioritize by adjusting the number of
//! partitions per dimension to minimize the predicted average query time
//! (§2.2.1). We initialize partition counts proportionally to how selective
//! the workload is in each dimension, then run a coordinate-wise gradient
//! descent over the (integer) partition counts, re-estimating cost with the
//! sample-based estimator at every step.

use crate::config::FloodConfig;
use crate::estimator::predicted_cost;
use tsunami_core::sample::sample_dataset;
use tsunami_core::{CostModel, Dataset, Workload};

/// Result of the partition-count optimization.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizedPartitions {
    /// The chosen per-dimension partition counts.
    pub partitions: Vec<usize>,
    /// The predicted average query cost for the chosen counts.
    pub predicted_cost: f64,
    /// Number of candidate layouts evaluated.
    pub evaluations: usize,
}

/// Initializes partition counts proportional to the average per-dimension
/// filter selectivity of the workload: dimensions in which queries are more
/// selective get more partitions. The total cell count stays below
/// `max_cells`.
pub fn initial_partitions(
    data_sample: &Dataset,
    workload: &Workload,
    max_cells: usize,
) -> Vec<usize> {
    let d = data_sample.num_dims();
    if d == 0 {
        return vec![];
    }
    // Average selectivity of each dimension across queries that filter it
    // (1.0 when never filtered).
    let mut weights = vec![0.0f64; d];
    for (dim, weight) in weights.iter_mut().enumerate() {
        let mut sel_sum = 0.0;
        let mut count = 0usize;
        for q in workload.queries() {
            if q.predicate_on(dim).is_some() {
                sel_sum += q.dim_selectivity(data_sample, dim);
                count += 1;
            }
        }
        let avg_sel: f64 = if count == 0 {
            1.0
        } else {
            sel_sum / count as f64
        };
        // More selective (smaller fraction) => larger weight. The frequency
        // with which the dimension is filtered also matters.
        let freq = count as f64 / workload.len().max(1) as f64;
        *weight = (1.0 / avg_sel.max(1e-3)).ln().max(0.0) * freq + 1e-6;
    }
    let total_weight: f64 = weights.iter().sum();
    // Allocate a log-space budget: product of partitions <= max_cells.
    let log_budget = (max_cells as f64).ln();
    let mut partitions = vec![1usize; d];
    for dim in 0..d {
        let share = weights[dim] / total_weight;
        let p = (share * log_budget).exp().round() as usize;
        partitions[dim] = p.clamp(1, 1 << 12);
    }
    clamp_to_budget(&mut partitions, max_cells);
    partitions
}

/// Scales partition counts down (largest first) until their product fits the
/// cell budget.
pub fn clamp_to_budget(partitions: &mut [usize], max_cells: usize) {
    let max_cells = max_cells.max(1);
    loop {
        let product: usize = partitions
            .iter()
            .fold(1usize, |acc, &p| acc.saturating_mul(p));
        if product <= max_cells {
            return;
        }
        // Reduce the largest partition count.
        if let Some(max_idx) = (0..partitions.len()).max_by_key(|&i| partitions[i]) {
            if partitions[max_idx] <= 1 {
                return;
            }
            partitions[max_idx] = (partitions[max_idx] * 3 / 4).max(1);
        } else {
            return;
        }
    }
}

/// Optimizes per-dimension partition counts for a dataset and workload by
/// gradient descent over the predicted cost.
pub fn optimize_partitions(
    data: &Dataset,
    workload: &Workload,
    cost: &CostModel,
    config: &FloodConfig,
) -> OptimizedPartitions {
    let sample = sample_dataset(data, config.sample_size, config.seed);
    let total = data.len();
    let mut current = initial_partitions(&sample, workload, config.max_cells);
    let mut evaluations = 0usize;
    let mut best_cost = predicted_cost(&sample, &current, total, workload, cost);
    evaluations += 1;

    for _ in 0..config.max_iters {
        let mut improved = false;
        for dim in 0..current.len() {
            // Try increasing and decreasing this dimension's partition count
            // by ~25%, keeping whichever move lowers predicted cost most.
            let candidates = [
                (current[dim] as f64 * 1.5).ceil() as usize,
                (current[dim] as f64 * 0.67).floor().max(1.0) as usize,
                current[dim] + 1,
                current[dim].saturating_sub(1).max(1),
            ];
            for &cand in &candidates {
                if cand == current[dim] {
                    continue;
                }
                let mut trial = current.clone();
                trial[dim] = cand;
                clamp_to_budget(&mut trial, config.max_cells);
                let c = predicted_cost(&sample, &trial, total, workload, cost);
                evaluations += 1;
                if c < best_cost * 0.999 {
                    best_cost = c;
                    current = trial;
                    improved = true;
                }
            }
        }
        if !improved {
            break;
        }
    }

    OptimizedPartitions {
        partitions: current,
        predicted_cost: best_cost,
        evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..4000u64).collect(),
            (0..4000u64).map(|v| (v * 7) % 4000).collect(),
            (0..4000u64).map(|v| (v * 31) % 4000).collect(),
        ])
        .unwrap()
    }

    /// Workload that is very selective on dim 0 and never filters dim 2.
    fn workload() -> Workload {
        let mut qs = Vec::new();
        for i in 0..20u64 {
            qs.push(
                Query::count(vec![
                    Predicate::range(0, i * 100, i * 100 + 80).unwrap(),
                    Predicate::range(1, 0, 3200).unwrap(),
                ])
                .unwrap(),
            );
        }
        Workload::new(qs)
    }

    #[test]
    fn initial_partitions_prioritize_selective_dims() {
        let d = data();
        let w = workload();
        let p = initial_partitions(&d, &w, 1 << 12);
        assert_eq!(p.len(), 3);
        // dim0 is filtered selectively; dim2 is never filtered.
        assert!(p[0] > p[2], "expected more partitions on dim0: {p:?}");
        let cells: usize = p.iter().product();
        assert!(cells <= 1 << 12);
    }

    #[test]
    fn clamp_to_budget_respects_cap() {
        let mut p = vec![100, 100, 100];
        clamp_to_budget(&mut p, 10_000);
        assert!(p.iter().product::<usize>() <= 10_000);
        assert!(p.iter().all(|&x| x >= 1));
        let mut p = vec![1, 1];
        clamp_to_budget(&mut p, 1);
        assert_eq!(p, vec![1, 1]);
    }

    #[test]
    fn optimization_does_not_increase_cost() {
        let d = data();
        let w = workload();
        let cost = CostModel::default();
        let cfg = FloodConfig::fast();
        let sample = sample_dataset(&d, cfg.sample_size, cfg.seed);
        let init = initial_partitions(&sample, &w, cfg.max_cells);
        let init_cost = predicted_cost(&sample, &init, d.len(), &w, &cost);
        let opt = optimize_partitions(&d, &w, &cost, &cfg);
        assert!(opt.predicted_cost <= init_cost * 1.001);
        assert!(opt.evaluations >= 1);
        assert!(opt.partitions.iter().product::<usize>() <= cfg.max_cells);
    }

    #[test]
    fn optimizer_allocates_partitions_to_filtered_dims() {
        let d = data();
        let w = workload();
        let opt = optimize_partitions(&d, &w, &CostModel::default(), &FloodConfig::fast());
        // dim2 is never filtered: it should get essentially no partitions.
        assert!(opt.partitions[2] <= 2, "{:?}", opt.partitions);
        assert!(opt.partitions[0] >= 2, "{:?}", opt.partitions);
    }
}
