//! The uniform grid layout: per-dimension equi-depth partitions, cell
//! numbering, and partition-range computation for queries.

use tsunami_cdf::{CdfModel, HistogramCdf};
use tsunami_core::{Dataset, Predicate, Query, Value};

/// A Flood-style grid layout: every dimension partitioned independently,
/// uniformly in its CDF.
///
/// Cell ids are row-major with the *last* dimension varying fastest, so cells
/// adjacent along the last dimension are contiguous in physical storage and
/// merge into a single cell range.
#[derive(Debug, Clone)]
pub struct GridLayout {
    partitions: Vec<usize>,
    models: Vec<HistogramCdf>,
    /// Stride of each dimension in the cell numbering.
    strides: Vec<usize>,
    num_cells: usize,
}

/// The inclusive per-dimension partition ranges a query intersects, plus the
/// sub-ranges that are fully contained in the filter (used for the
/// exact-range scan optimization).
#[derive(Debug, Clone)]
pub struct PartitionRanges {
    /// For each dimension, the inclusive `[lo, hi]` partition range the query
    /// intersects.
    pub intersecting: Vec<(usize, usize)>,
    /// For each dimension, the inclusive partition range that is *fully
    /// contained* in the query filter, or `None` if no partition is fully
    /// contained. Unfiltered dimensions are fully contained everywhere.
    pub exact: Vec<Option<(usize, usize)>>,
}

impl GridLayout {
    /// Builds a layout over a dataset with the given per-dimension partition
    /// counts (each at least 1).
    ///
    /// The *effective* partition count of a dimension may be lower than
    /// requested when the data has fewer distinct equi-depth boundaries
    /// (e.g. heavy duplicates); partitions are always aligned with the CDF
    /// model's bucket boundaries so that partition membership and partition
    /// value bounds agree exactly.
    pub fn build(data: &Dataset, partitions: &[usize]) -> Self {
        assert_eq!(partitions.len(), data.num_dims());
        let models: Vec<HistogramCdf> = (0..data.num_dims())
            .map(|d| HistogramCdf::build(data.column(d), partitions[d].max(1)))
            .collect();
        let effective: Vec<usize> = models.iter().map(HistogramCdf::num_buckets).collect();
        Self::from_parts(effective, models)
    }

    /// Builds a layout from pre-computed CDF models. The partition counts
    /// must equal each model's bucket count.
    pub fn from_parts(partitions: Vec<usize>, models: Vec<HistogramCdf>) -> Self {
        assert_eq!(partitions.len(), models.len());
        debug_assert!(partitions
            .iter()
            .zip(&models)
            .all(|(&p, m)| p == m.num_buckets()));
        let d = partitions.len();
        let mut strides = vec![1usize; d];
        for i in (0..d.saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * partitions[i + 1];
        }
        let num_cells = partitions.iter().product::<usize>().max(1);
        Self {
            partitions,
            models,
            strides,
            num_cells,
        }
    }

    /// Number of dimensions.
    pub fn num_dims(&self) -> usize {
        self.partitions.len()
    }

    /// Per-dimension partition counts.
    pub fn partitions(&self) -> &[usize] {
        &self.partitions
    }

    /// Total number of cells (product of partition counts).
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// The CDF model of a dimension.
    pub fn model(&self, dim: usize) -> &HistogramCdf {
        &self.models[dim]
    }

    /// Widens every dimension's model to cover `data`'s value domains (outer
    /// boundaries only — the bucket assignment of already-covered values is
    /// unchanged). Ingest calls this before routing new rows so that values
    /// outside the build-time domain clamp into first/last partitions whose
    /// value bounds remain truthful — which `partition_fully_contained` (the
    /// exact-range optimization) and [`GridLayout::dim_guaranteed`]
    /// (residual-predicate elimination) rely on.
    pub fn widen_for(&mut self, data: &Dataset) {
        for dim in 0..self.num_dims() {
            if let Some((lo, hi)) = data.domain(dim) {
                self.models[dim].widen(lo, hi);
            }
        }
    }

    /// Partition index of a value in a dimension.
    #[inline]
    pub fn partition_of(&self, dim: usize, v: Value) -> usize {
        self.models[dim].bucket_of(v)
    }

    /// Cell id of a point.
    pub fn cell_of(&self, point: &[Value]) -> usize {
        debug_assert_eq!(point.len(), self.num_dims());
        let mut cell = 0usize;
        for (d, &coord) in point.iter().enumerate() {
            cell += self.partition_of(d, coord) * self.strides[d];
        }
        cell
    }

    /// Cell id from explicit per-dimension partition indices.
    pub fn cell_from_partitions(&self, parts: &[usize]) -> usize {
        parts.iter().zip(&self.strides).map(|(&p, &s)| p * s).sum()
    }

    /// Whether partition `p` of dimension `dim` is fully contained in the
    /// predicate's value range (every possible value in the partition
    /// matches the filter). Delegates to
    /// [`HistogramCdf::bucket_contained_in`], which stays conservative
    /// about a last boundary saturated at `u64::MAX`.
    pub fn partition_fully_contained(&self, dim: usize, p: usize, pred: &Predicate) -> bool {
        self.models[dim].bucket_contained_in(p, pred.lo, pred.hi)
    }

    /// Computes the per-dimension partition ranges a query intersects and the
    /// fully-contained (exact) sub-ranges.
    pub fn partition_ranges(&self, query: &Query) -> PartitionRanges {
        let d = self.num_dims();
        let mut intersecting = Vec::with_capacity(d);
        let mut exact = Vec::with_capacity(d);
        for dim in 0..d {
            let p = self.partitions[dim];
            match query.predicate_on(dim) {
                None => {
                    intersecting.push((0, p - 1));
                    exact.push(Some((0, p - 1)));
                }
                Some(pred) => {
                    let (lo, hi) = self.models[dim].bucket_range(pred.lo, pred.hi);
                    intersecting.push((lo, hi));
                    // Fully-contained subrange: shrink from both ends.
                    let mut elo = lo;
                    let mut ehi = hi;
                    while elo <= ehi && !self.partition_fully_contained(dim, elo, pred) {
                        elo += 1;
                    }
                    while ehi >= elo && ehi > 0 && !self.partition_fully_contained(dim, ehi, pred) {
                        ehi -= 1;
                    }
                    if elo <= ehi && self.partition_fully_contained(dim, elo, pred) {
                        exact.push(Some((elo, ehi)));
                    } else {
                        exact.push(None);
                    }
                }
            }
        }
        PartitionRanges {
            intersecting,
            exact,
        }
    }

    /// Whether the query's predicate on `dim` is guaranteed to hold for every
    /// row of every cell the query visits: each intersecting partition of
    /// `dim` is fully contained in the predicate's value range. Unfiltered
    /// dimensions are trivially guaranteed. Guaranteed predicates can be
    /// dropped from the plan's residual — the executor then re-checks only
    /// genuinely undecided dimensions inside non-exact cells.
    pub fn dim_guaranteed(&self, ranges: &PartitionRanges, dim: usize) -> bool {
        let (lo, hi) = ranges.intersecting[dim];
        match ranges.exact[dim] {
            Some((elo, ehi)) => elo <= lo && hi <= ehi,
            None => false,
        }
    }

    /// Enumerates the intersecting cells of a query as `(first_cell,
    /// last_cell, exact)` runs that are contiguous in cell-id space (runs
    /// along the last dimension).
    pub fn cell_runs(&self, ranges: &PartitionRanges) -> Vec<(usize, usize, bool)> {
        let d = self.num_dims();
        if d == 0 {
            return vec![];
        }
        let last = d - 1;
        let (last_lo, last_hi) = ranges.intersecting[last];
        let last_exact_full = match ranges.exact[last] {
            Some((elo, ehi)) => elo <= last_lo && last_hi <= ehi,
            None => false,
        };

        // Iterate the Cartesian product of the prefix dimensions.
        let mut runs = Vec::new();
        let mut current: Vec<usize> = ranges.intersecting[..last]
            .iter()
            .map(|&(lo, _)| lo)
            .collect();
        loop {
            // Base cell id for this prefix.
            let mut base = 0usize;
            let mut prefix_exact = true;
            for (dim, &part) in current.iter().enumerate().take(last) {
                base += part * self.strides[dim];
                prefix_exact &= match ranges.exact[dim] {
                    Some((elo, ehi)) => part >= elo && part <= ehi,
                    None => false,
                };
            }
            let first = base + last_lo * self.strides[last];
            let last_cell = base + last_hi * self.strides[last];
            runs.push((first, last_cell, prefix_exact && last_exact_full));

            // Advance the prefix odometer.
            if last == 0 {
                break;
            }
            let mut dim = last - 1;
            loop {
                current[dim] += 1;
                if current[dim] <= ranges.intersecting[dim].1 {
                    break;
                }
                current[dim] = ranges.intersecting[dim].0;
                if dim == 0 {
                    return runs;
                }
                dim -= 1;
            }
        }
        runs
    }

    /// Size of the layout's models and metadata in bytes.
    pub fn size_bytes(&self) -> usize {
        self.models.iter().map(CdfModel::size_bytes).sum::<usize>()
            + self.partitions.len() * std::mem::size_of::<usize>() * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::Predicate;

    fn dataset() -> Dataset {
        // 2 dims, 1000 rows: dim0 uniform 0..1000, dim1 uniform 0..500
        Dataset::from_columns(vec![
            (0..1000u64).collect(),
            (0..1000u64).map(|v| v / 2).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn cell_numbering_is_row_major_last_dim_fastest() {
        let layout = GridLayout::build(&dataset(), &[4, 5]);
        assert_eq!(layout.num_cells(), 20);
        assert_eq!(layout.cell_from_partitions(&[0, 0]), 0);
        assert_eq!(layout.cell_from_partitions(&[0, 1]), 1);
        assert_eq!(layout.cell_from_partitions(&[1, 0]), 5);
        assert_eq!(layout.cell_from_partitions(&[3, 4]), 19);
    }

    #[test]
    fn partitions_are_balanced_on_uncorrelated_data() {
        // Use a scrambled second dimension so the two dims are uncorrelated;
        // on correlated data a uniform grid produces unequal cells, which is
        // exactly the Flood limitation Tsunami addresses.
        let ds = Dataset::from_columns(vec![
            (0..1000u64).collect(),
            (0..1000u64).map(|v| (v * 13) % 1000).collect(),
        ])
        .unwrap();
        let layout = GridLayout::build(&ds, &[4, 4]);
        let mut counts = vec![0usize; 16];
        for r in 0..ds.len() {
            counts[layout.cell_of(&ds.row(r))] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(
            max <= min * 2 + 10,
            "cells should be roughly equal: {counts:?}"
        );
    }

    #[test]
    fn partition_ranges_cover_query() {
        let ds = dataset();
        let layout = GridLayout::build(&ds, &[10, 10]);
        let q = Query::count(vec![Predicate::range(0, 250, 749).unwrap()]).unwrap();
        let pr = layout.partition_ranges(&q);
        // dim0 filtered: partitions roughly 2..7
        let (lo, hi) = pr.intersecting[0];
        assert!(lo <= 3 && hi >= 6);
        // dim1 unfiltered: full range and fully exact.
        assert_eq!(pr.intersecting[1], (0, 9));
        assert_eq!(pr.exact[1], Some((0, 9)));
        // Exact subrange of dim0 is inside the intersecting range.
        if let Some((elo, ehi)) = pr.exact[0] {
            assert!(elo >= lo && ehi <= hi);
        }
    }

    #[test]
    fn cell_runs_enumerate_cartesian_product() {
        let ds = dataset();
        let layout = GridLayout::build(&ds, &[4, 6]);
        let q = Query::count(vec![
            Predicate::range(0, 0, 499).unwrap(),
            Predicate::range(1, 0, 124).unwrap(),
        ])
        .unwrap();
        let pr = layout.partition_ranges(&q);
        let runs = layout.cell_runs(&pr);
        // One run per intersecting partition of dim0.
        let (lo0, hi0) = pr.intersecting[0];
        assert_eq!(runs.len(), hi0 - lo0 + 1);
        // Runs are within the cell space.
        for (first, last, _) in &runs {
            assert!(first <= last);
            assert!(*last < layout.num_cells());
        }
    }

    #[test]
    fn exactness_requires_full_containment() {
        let ds = dataset();
        let layout = GridLayout::build(&ds, &[1, 1]);
        // Whole-space query: the single cell is exact.
        let q = Query::count(vec![]).unwrap();
        let pr = layout.partition_ranges(&q);
        let runs = layout.cell_runs(&pr);
        assert_eq!(runs, vec![(0, 0, true)]);

        // Narrow query: the single cell intersects but is not exact.
        let q = Query::count(vec![Predicate::range(0, 10, 20).unwrap()]).unwrap();
        let pr = layout.partition_ranges(&q);
        let runs = layout.cell_runs(&pr);
        assert_eq!(runs, vec![(0, 0, false)]);
    }

    #[test]
    fn single_dimension_layout_works() {
        let ds = Dataset::from_columns(vec![(0..100u64).collect()]).unwrap();
        let layout = GridLayout::build(&ds, &[8]);
        let q = Query::count(vec![Predicate::range(0, 25, 74).unwrap()]).unwrap();
        let pr = layout.partition_ranges(&q);
        let runs = layout.cell_runs(&pr);
        assert_eq!(runs.len(), 1);
        let (first, last, _) = runs[0];
        assert!(first <= last && last < 8);
    }

    #[test]
    fn size_bytes_scales_with_partitions() {
        let ds = dataset();
        let small = GridLayout::build(&ds, &[2, 2]).size_bytes();
        let large = GridLayout::build(&ds, &[64, 64]).size_bytes();
        assert!(large > small);
    }
}
