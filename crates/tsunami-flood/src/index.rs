//! The Flood index: an optimized uniform grid over a clustered column store.

use std::time::Instant;

use crate::config::FloodConfig;
use crate::layout::GridLayout;
use crate::optimizer::optimize_partitions;
use tsunami_core::{
    BuildTiming, CostModel, Dataset, MultiDimIndex, Query, ScanPlan, ScanSource, Workload,
};
use tsunami_store::ColumnStore;

/// The Flood learned multi-dimensional index (§2.2).
///
/// Data is clustered by grid cell: the cell lookup table maps each cell id to
/// its contiguous range in the column store.
#[derive(Debug)]
pub struct FloodIndex {
    layout: GridLayout,
    /// `cell_offsets[c]..cell_offsets[c+1]` is the physical row range of cell `c`.
    cell_offsets: Vec<usize>,
    store: ColumnStore,
    timing: BuildTiming,
    predicted_cost: f64,
}

impl FloodIndex {
    /// Builds a Flood index whose layout is optimized for the given sample
    /// workload.
    pub fn build(
        data: &Dataset,
        workload: &Workload,
        cost: &CostModel,
        config: &FloodConfig,
    ) -> Self {
        let opt_start = Instant::now();
        let optimized = optimize_partitions(data, workload, cost, config);
        let optimize_secs = opt_start.elapsed().as_secs_f64();
        Self::build_with_partitions_timed(
            data,
            &optimized.partitions,
            optimize_secs,
            optimized.predicted_cost,
        )
    }

    /// Builds a Flood index with explicit per-dimension partition counts
    /// (used by tests and by Tsunami's "Grid Tree only" ablation).
    pub fn build_with_partitions(data: &Dataset, partitions: &[usize]) -> Self {
        Self::build_with_partitions_timed(data, partitions, 0.0, 0.0)
    }

    fn build_with_partitions_timed(
        data: &Dataset,
        partitions: &[usize],
        optimize_secs: f64,
        predicted_cost: f64,
    ) -> Self {
        let sort_start = Instant::now();
        let layout = GridLayout::build(data, partitions);
        let num_cells = layout.num_cells();

        // Assign every row to its cell and sort rows by cell id (counting sort).
        let mut cell_of_row = vec![0usize; data.len()];
        let mut counts = vec![0usize; num_cells + 1];
        let d = data.num_dims();
        let mut point = vec![0u64; d];
        for (r, row_cell) in cell_of_row.iter_mut().enumerate() {
            for (dim, coord) in point.iter_mut().enumerate() {
                *coord = data.get(r, dim);
            }
            let c = layout.cell_of(&point);
            *row_cell = c;
            counts[c + 1] += 1;
        }
        for c in 0..num_cells {
            counts[c + 1] += counts[c];
        }
        let cell_offsets = counts.clone();
        // Stable counting sort producing the permutation: position -> source row.
        let mut next = counts;
        let mut perm = vec![0usize; data.len()];
        for (r, &c) in cell_of_row.iter().enumerate() {
            perm[next[c]] = r;
            next[c] += 1;
        }

        let mut store = ColumnStore::from_dataset(data);
        store.permute(&perm);
        store.encode_blocks();
        let sort_secs = sort_start.elapsed().as_secs_f64();

        Self {
            layout,
            cell_offsets,
            store,
            timing: BuildTiming {
                sort_secs,
                optimize_secs,
            },
            predicted_cost,
        }
    }

    /// Absorbs new rows into the existing grid **without a rebuild** — the
    /// sorted-merge ingest: the layout's per-dimension models are widened to
    /// cover the batch (so out-of-domain values clamp into partitions with
    /// truthful value bounds), each row is routed to its cell, and one
    /// store-wide permutation splices the batch into cell order. No
    /// optimizer runs; the partition boundaries stay as built, so heavy
    /// sustained ingest should eventually be followed by a rebuild.
    pub fn ingest(&self, rows: &Dataset) -> Self {
        assert_eq!(
            rows.num_dims(),
            self.layout.num_dims(),
            "ingested rows must match the index width"
        );
        let start = Instant::now();
        let n = self.store.len();
        let mut layout = self.layout.clone();
        layout.widen_for(rows);

        // Route the batch: new row j (store index n + j) joins cell c.
        let num_cells = layout.num_cells();
        let mut per_cell: Vec<Vec<usize>> = vec![Vec::new(); num_cells];
        let d = rows.num_dims();
        let mut point = vec![0u64; d];
        for j in 0..rows.len() {
            for (dim, coord) in point.iter_mut().enumerate() {
                *coord = rows.get(j, dim);
            }
            per_cell[layout.cell_of(&point)].push(n + j);
        }

        // Splice: every cell's slice is its old rows followed by its new
        // rows; offsets shift by the running count of inserted rows.
        let mut store = self.store.clone();
        store.append_dataset(rows);
        let mut perm: Vec<usize> = Vec::with_capacity(n + rows.len());
        let mut cell_offsets = Vec::with_capacity(self.cell_offsets.len());
        for (c, news) in per_cell.iter().enumerate() {
            cell_offsets.push(perm.len());
            perm.extend(self.cell_offsets[c]..self.cell_offsets[c + 1]);
            perm.extend(news);
        }
        cell_offsets.push(perm.len());
        store.permute(&perm);
        store.encode_blocks();

        Self {
            layout,
            cell_offsets,
            store,
            timing: BuildTiming {
                sort_secs: start.elapsed().as_secs_f64(),
                optimize_secs: 0.0,
            },
            predicted_cost: self.predicted_cost,
        }
    }

    /// The grid layout in use.
    pub fn layout(&self) -> &GridLayout {
        &self.layout
    }

    /// Number of grid cells (Table 4 reports this).
    pub fn num_cells(&self) -> usize {
        self.layout.num_cells()
    }

    /// Predicted average query cost from the optimizer (0 if not optimized).
    pub fn predicted_cost(&self) -> f64 {
        self.predicted_cost
    }
}

impl MultiDimIndex for FloodIndex {
    fn name(&self) -> &str {
        "Flood"
    }

    fn source(&self) -> &dyn ScanSource {
        &self.store
    }

    fn plan(&self, query: &Query) -> ScanPlan {
        let d = self.layout.num_dims();
        let pr = self.layout.partition_ranges(query);
        let runs = self.layout.cell_runs(&pr);
        let mut plan = ScanPlan::new();
        for (first_cell, last_cell, exact) in runs {
            // Physically contiguous, equally exact cell runs merge in the
            // plan automatically.
            plan.push(
                self.cell_offsets[first_cell]..self.cell_offsets[last_cell + 1],
                exact,
            );
        }
        // Residual elimination: drop the predicates whose every intersecting
        // partition the grid bounds exactly — only genuinely undecided
        // dimensions are re-checked inside non-exact cells.
        let guaranteed: Vec<bool> = (0..d)
            .map(|dim| self.layout.dim_guaranteed(&pr, dim))
            .collect();
        plan.with_guaranteed_dims(query, &guaranteed)
    }

    fn size_bytes(&self) -> usize {
        self.layout.size_bytes() + self.cell_offsets.len() * std::mem::size_of::<usize>()
    }

    fn build_timing(&self) -> BuildTiming {
        self.timing
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        // Lets the engine's ingestion path reach `FloodIndex::ingest` behind
        // a `Box<dyn MultiDimIndex>`.
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{AggResult, Predicate};

    fn random_dataset(n: usize, d: usize, seed: u64) -> Dataset {
        let mut rng = SplitMix::new(seed);
        let cols = (0..d)
            .map(|dim| {
                (0..n)
                    .map(|_| rng.next_below(10_000) + dim as u64)
                    .collect()
            })
            .collect();
        Dataset::from_columns(cols).unwrap()
    }

    fn random_workload(d: usize, count: usize, seed: u64) -> Workload {
        let mut rng = SplitMix::new(seed);
        let mut qs = Vec::new();
        for _ in 0..count {
            let dim = (rng.next_below(d as u64)) as usize;
            let lo = rng.next_below(9_000);
            let hi = lo + rng.next_below(1_000) + 1;
            qs.push(Query::count(vec![Predicate::range(dim, lo, hi).unwrap()]).unwrap());
        }
        Workload::new(qs)
    }

    #[test]
    fn flood_matches_full_scan_oracle() {
        let data = random_dataset(5_000, 3, 1);
        let workload = random_workload(3, 30, 2);
        let index = FloodIndex::build(
            &data,
            &workload,
            &CostModel::default(),
            &FloodConfig::fast(),
        );
        for q in workload.queries() {
            assert_eq!(index.execute(q), q.execute_full_scan(&data), "query {q:?}");
        }
    }

    #[test]
    fn flood_answers_multi_dim_and_unseen_queries() {
        let data = random_dataset(3_000, 4, 3);
        let workload = random_workload(4, 10, 4);
        let index = FloodIndex::build(
            &data,
            &workload,
            &CostModel::default(),
            &FloodConfig::fast(),
        );
        // Queries not in the training workload (multi-dimensional).
        let q = Query::count(vec![
            Predicate::range(0, 100, 5_000).unwrap(),
            Predicate::range(2, 0, 2_500).unwrap(),
        ])
        .unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
        // Empty-result query.
        let q = Query::count(vec![Predicate::range(1, 50_000, 60_000).unwrap()]).unwrap();
        assert_eq!(index.execute(&q), AggResult::Count(0));
    }

    #[test]
    fn flood_sum_aggregation_is_correct() {
        let data = random_dataset(2_000, 2, 7);
        let workload = random_workload(2, 10, 8);
        let index = FloodIndex::build(
            &data,
            &workload,
            &CostModel::default(),
            &FloodConfig::fast(),
        );
        let q = Query::new(
            vec![Predicate::range(0, 0, 5_000).unwrap()],
            tsunami_core::Aggregation::Sum(1),
        )
        .unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    #[test]
    fn stats_show_fewer_points_scanned_than_full_scan() {
        let data = random_dataset(20_000, 2, 11);
        let workload = random_workload(2, 40, 12);
        let index = FloodIndex::build(
            &data,
            &workload,
            &CostModel::default(),
            &FloodConfig::fast(),
        );
        let q = &workload.queries()[0];
        let (_, stats) = index.execute_with_stats(q);
        assert!(
            stats.points_scanned < data.len(),
            "grid should prune the scan"
        );
        assert!(stats.ranges_scanned >= 1);
        assert!(stats.points_matched <= stats.points_scanned);
    }

    #[test]
    fn explicit_partitions_build_and_report_cells() {
        let data = random_dataset(1_000, 2, 21);
        let index = FloodIndex::build_with_partitions(&data, &[8, 4]);
        assert_eq!(index.num_cells(), 32);
        assert_eq!(index.name(), "Flood");
        assert!(index.size_bytes() > 0);
        assert!(index.build_timing().optimize_secs == 0.0);
        let q = Query::count(vec![Predicate::range(0, 0, 4_999).unwrap()]).unwrap();
        assert_eq!(index.execute(&q), q.execute_full_scan(&data));
    }

    #[test]
    fn ingest_matches_a_rebuild_including_out_of_domain_values() {
        let data = random_dataset(4_000, 3, 31);
        let workload = random_workload(3, 20, 32);
        let index = FloodIndex::build(
            &data,
            &workload,
            &CostModel::default(),
            &FloodConfig::fast(),
        );
        // Batch with both in-domain rows and rows beyond every build-time
        // max (bucket clamping + model widening must keep exactness sound).
        let mut rng = SplitMix::new(33);
        let mut batch = Dataset::empty(3);
        for _ in 0..300 {
            batch
                .push_row(&[rng.next_below(10_000), rng.next_below(10_000), 1])
                .unwrap();
        }
        for i in 0..20u64 {
            batch.push_row(&[50_000 + i, 60_000, 70_000 + i]).unwrap();
        }
        let ingested = index.ingest(&batch);

        let mut merged = data.clone();
        for row in batch.rows() {
            merged.push_row(&row).unwrap();
        }
        let mut probes: Vec<Query> = workload.queries().to_vec();
        probes.push(Query::count(vec![Predicate::range(2, 65_000, 80_000).unwrap()]).unwrap());
        probes.push(
            Query::count(vec![
                Predicate::range(0, 0, 100_000).unwrap(),
                Predicate::range(1, 0, 100_000).unwrap(),
            ])
            .unwrap(),
        );
        for q in &probes {
            assert_eq!(ingested.execute(q), q.execute_full_scan(&merged), "{q:?}");
        }
        // Pruning still works after ingest.
        let (_, stats) = ingested.execute_with_stats(&workload.queries()[0]);
        assert!(stats.points_scanned < merged.len());
    }

    #[test]
    fn empty_dataset_is_handled() {
        let data = Dataset::from_columns(vec![vec![], vec![]]).unwrap();
        let index = FloodIndex::build_with_partitions(&data, &[4, 4]);
        let q = Query::count(vec![Predicate::range(0, 0, 10).unwrap()]).unwrap();
        assert_eq!(index.execute(&q), AggResult::Count(0));
    }
}
