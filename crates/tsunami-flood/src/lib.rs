//! Flood: the original in-memory learned multi-dimensional index (Nathan et
//! al., SIGMOD 2020), reproduced here as Tsunami's primary baseline (§2.2).
//!
//! Flood models the CDF of every dimension, divides each dimension `i` into
//! `p_i` equal-mass partitions, and lays the data out in the grid formed by
//! the Cartesian product of those partitions. Query processing finds the
//! intersecting partitions per dimension with the CDF models, takes the
//! Cartesian product to obtain intersecting cells, looks up their physical
//! ranges in a cell table, and scans.
//!
//! Per the paper's evaluation setup (§6.1), this implementation uses
//! Tsunami's analytic cost model for layout optimization and performs
//! refinement with plain scans rather than per-cell models.
//!
//! The [`layout::GridLayout`] machinery is shared conceptually with
//! Tsunami's Augmented Grid, which generalizes it with correlation-aware
//! partitioning strategies.

pub mod config;
pub mod estimator;
pub mod index;
pub mod layout;
pub mod optimizer;

pub use config::FloodConfig;
pub use index::FloodIndex;
pub use layout::GridLayout;
pub use optimizer::optimize_partitions;
