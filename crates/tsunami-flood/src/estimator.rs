//! Sample-based estimation of the cost-model features for a candidate grid
//! layout, without materializing the grid.
//!
//! The optimizer needs the predicted average query time for many candidate
//! partition-count vectors. Building each candidate layout over the full
//! dataset would be far too slow, so the estimator works on a small data
//! sample: the number of scanned points for a query is estimated as the
//! fraction of sample points that fall into partitions intersected by the
//! query in every *filtered* dimension, scaled to the full dataset size. This
//! captures correlation effects that a uniform-independence assumption would
//! miss — which is exactly why Flood struggles on correlated data.

use crate::layout::GridLayout;
use tsunami_core::{CostFeatures, CostModel, Dataset, Query, Workload};

/// Estimates cost features for queries against a candidate grid layout using
/// a data sample.
#[derive(Debug)]
pub struct GridCostEstimator<'a> {
    layout: GridLayout,
    sample: &'a Dataset,
    total_rows: usize,
}

impl<'a> GridCostEstimator<'a> {
    /// Creates an estimator for a layout built over the *sample* with the
    /// candidate partition counts; `total_rows` scales sample counts up to
    /// the full dataset.
    pub fn new(sample: &'a Dataset, partitions: &[usize], total_rows: usize) -> Self {
        let layout = GridLayout::build(sample, partitions);
        Self {
            layout,
            sample,
            total_rows,
        }
    }

    /// The layout the estimator evaluates.
    pub fn layout(&self) -> &GridLayout {
        &self.layout
    }

    /// Estimated cost features for a single query.
    pub fn features(&self, query: &Query) -> CostFeatures {
        let ranges = self.layout.partition_ranges(query);
        // Number of cell ranges = number of runs along the last dimension =
        // product of intersecting-partition counts over the prefix dims.
        let d = self.layout.num_dims();
        let mut cell_ranges = 1f64;
        for dim in 0..d.saturating_sub(1) {
            let (lo, hi) = ranges.intersecting[dim];
            cell_ranges *= (hi - lo + 1) as f64;
        }

        // Scanned points: fraction of sample points whose partition lies in
        // the intersecting range for every filtered dimension.
        let filtered = query.filtered_dims();
        let mut hit = 0usize;
        let n = self.sample.len();
        for r in 0..n {
            let mut inside = true;
            for &dim in &filtered {
                let p = self.layout.partition_of(dim, self.sample.get(r, dim));
                let (lo, hi) = ranges.intersecting[dim];
                if p < lo || p > hi {
                    inside = false;
                    break;
                }
            }
            if inside {
                hit += 1;
            }
        }
        let scanned = if n == 0 {
            0.0
        } else {
            hit as f64 / n as f64 * self.total_rows as f64
        };

        CostFeatures {
            cell_ranges,
            scanned_points: scanned,
            filtered_dims: filtered.len() as f64,
        }
    }

    /// Predicted average query time over a workload under a cost model.
    pub fn average_cost(&self, workload: &Workload, cost: &CostModel) -> f64 {
        if workload.is_empty() {
            return 0.0;
        }
        workload
            .queries()
            .iter()
            .map(|q| cost.predict(&self.features(q)))
            .sum::<f64>()
            / workload.len() as f64
    }
}

/// Convenience: predicted average query time of the partition-count vector
/// `partitions` for `workload`, using `sample` scaled to `total_rows`.
pub fn predicted_cost(
    sample: &Dataset,
    partitions: &[usize],
    total_rows: usize,
    workload: &Workload,
    cost: &CostModel,
) -> f64 {
    GridCostEstimator::new(sample, partitions, total_rows).average_cost(workload, cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::Predicate;

    fn sample() -> Dataset {
        Dataset::from_columns(vec![
            (0..1000u64).collect(),
            (0..1000u64).map(|v| (v * 13) % 1000).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn narrower_filters_scan_fewer_points() {
        let s = sample();
        let est = GridCostEstimator::new(&s, &[16, 16], 100_000);
        let narrow = Query::count(vec![Predicate::range(0, 0, 99).unwrap()]).unwrap();
        let wide = Query::count(vec![Predicate::range(0, 0, 499).unwrap()]).unwrap();
        assert!(est.features(&narrow).scanned_points < est.features(&wide).scanned_points);
    }

    #[test]
    fn more_partitions_in_filtered_dim_reduce_scanned_points() {
        let s = sample();
        let q = Query::count(vec![Predicate::range(0, 0, 49).unwrap()]).unwrap();
        let coarse = GridCostEstimator::new(&s, &[2, 2], 100_000)
            .features(&q)
            .scanned_points;
        let fine = GridCostEstimator::new(&s, &[64, 2], 100_000)
            .features(&q)
            .scanned_points;
        assert!(fine < coarse);
    }

    #[test]
    fn cell_ranges_grow_with_prefix_partitions() {
        let s = sample();
        // Query filters only dim1, so every partition of dim0 contributes one run.
        let q = Query::count(vec![Predicate::range(1, 0, 99).unwrap()]).unwrap();
        let few = GridCostEstimator::new(&s, &[4, 8], 100_000).features(&q);
        let many = GridCostEstimator::new(&s, &[32, 8], 100_000).features(&q);
        assert_eq!(few.cell_ranges, 4.0);
        assert_eq!(many.cell_ranges, 32.0);
    }

    #[test]
    fn average_cost_reflects_tradeoff() {
        let s = sample();
        let w = Workload::new(vec![
            Query::count(vec![Predicate::range(0, 0, 99).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(0, 500, 599).unwrap()]).unwrap(),
        ]);
        let cost = CostModel::default();
        let bad = predicted_cost(&s, &[1, 1], 1_000_000, &w, &cost);
        let good = predicted_cost(&s, &[32, 1], 1_000_000, &w, &cost);
        assert!(good < bad, "partitioning the filtered dim must reduce cost");
    }

    #[test]
    fn empty_workload_costs_nothing() {
        let s = sample();
        let est = GridCostEstimator::new(&s, &[4, 4], 1000);
        assert_eq!(
            est.average_cost(&Workload::default(), &CostModel::default()),
            0.0
        );
        assert_eq!(est.layout().num_cells(), 16);
    }
}
