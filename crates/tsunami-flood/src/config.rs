//! Configuration for building and optimizing a Flood index.

/// Tunables for Flood's layout optimization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FloodConfig {
    /// Upper bound on the total number of grid cells (the cell lookup table
    /// has one entry per cell, so this caps index memory).
    pub max_cells: usize,
    /// Number of data rows sampled for cost estimation during optimization.
    pub sample_size: usize,
    /// Maximum number of gradient-descent iterations.
    pub max_iters: usize,
    /// Seed for deterministic sampling.
    pub seed: u64,
}

impl Default for FloodConfig {
    fn default() -> Self {
        Self {
            max_cells: 1 << 20,
            sample_size: 2_000,
            max_iters: 30,
            seed: 0xF100D,
        }
    }
}

impl FloodConfig {
    /// A small configuration for unit tests: few samples, few iterations.
    pub fn fast() -> Self {
        Self {
            max_cells: 1 << 14,
            sample_size: 500,
            max_iters: 10,
            seed: 0xF100D,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = FloodConfig::default();
        assert!(c.max_cells > 0);
        assert!(c.sample_size > 0);
        assert!(c.max_iters > 0);
        assert!(FloodConfig::fast().sample_size <= c.sample_size);
    }
}
