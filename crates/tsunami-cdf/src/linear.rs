//! Simple least-squares linear regression over `u64` pairs.
//!
//! Used as the leaf model of the RMI and as the backbone of functional
//! mappings (§5.2.1: "we implement the mapping function as a simple linear
//! regression").

use tsunami_core::Value;

/// A fitted line `y = slope * x + intercept` over `f64` space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl LinearModel {
    /// Identity model (`y = x`).
    pub fn identity() -> Self {
        Self {
            slope: 1.0,
            intercept: 0.0,
        }
    }

    /// A constant model (`y = c`), used for degenerate fits.
    pub fn constant(c: f64) -> Self {
        Self {
            slope: 0.0,
            intercept: c,
        }
    }

    /// Fits a least-squares line to `(x, y)` pairs given as `f64`s.
    ///
    /// Degenerate inputs (empty, single point, or zero x-variance) fall back
    /// to a constant model at the mean of `y`.
    pub fn fit_f64(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len();
        if n == 0 {
            return Self::constant(0.0);
        }
        let mean_x = xs.iter().sum::<f64>() / n as f64;
        let mean_y = ys.iter().sum::<f64>() / n as f64;
        if n == 1 {
            return Self::constant(mean_y);
        }
        let mut cov = 0.0;
        let mut var = 0.0;
        for i in 0..n {
            let dx = xs[i] - mean_x;
            cov += dx * (ys[i] - mean_y);
            var += dx * dx;
        }
        if var == 0.0 {
            return Self::constant(mean_y);
        }
        let slope = cov / var;
        Self {
            slope,
            intercept: mean_y - slope * mean_x,
        }
    }

    /// Fits a least-squares line to integer `(x, y)` pairs.
    pub fn fit(xs: &[Value], ys: &[Value]) -> Self {
        let xf: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        let yf: Vec<f64> = ys.iter().map(|&v| v as f64).collect();
        Self::fit_f64(&xf, &yf)
    }

    /// Predicted `y` for an `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Predicted `y` for an integer `x`, clamped to the `u64` domain.
    #[inline]
    pub fn predict_value(&self, x: Value) -> Value {
        let y = self.predict(x as f64);
        if y <= 0.0 {
            0
        } else if y >= u64::MAX as f64 {
            u64::MAX
        } else {
            y as Value
        }
    }

    /// Size of the model in bytes (two `f64`s).
    pub fn size_bytes(&self) -> usize {
        2 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_exact_line() {
        let xs: Vec<Value> = (0..100).collect();
        let ys: Vec<Value> = xs.iter().map(|&x| 3 * x + 7).collect();
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.slope - 3.0).abs() < 1e-9);
        assert!((m.intercept - 7.0).abs() < 1e-6);
        assert_eq!(m.predict_value(10), 37);
    }

    #[test]
    fn fits_noisy_line_approximately() {
        let xs: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 2.0 * x + 5.0 + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = LinearModel::fit_f64(&xs, &ys);
        assert!((m.slope - 2.0).abs() < 0.05);
        assert!((m.intercept - 5.0).abs() < 2.0);
    }

    #[test]
    fn degenerate_inputs_fall_back_to_constant() {
        assert_eq!(LinearModel::fit(&[], &[]), LinearModel::constant(0.0));
        let single = LinearModel::fit(&[5], &[42]);
        assert_eq!(single.predict_value(123), 42);
        // Zero variance in x.
        let flat = LinearModel::fit(&[3, 3, 3], &[1, 2, 3]);
        assert_eq!(flat.slope, 0.0);
        assert!((flat.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn predict_value_clamps_to_u64_domain() {
        let m = LinearModel {
            slope: -1.0,
            intercept: 0.0,
        };
        assert_eq!(m.predict_value(10), 0);
        let m = LinearModel {
            slope: 1e30,
            intercept: 0.0,
        };
        assert_eq!(m.predict_value(u64::MAX), u64::MAX);
    }

    #[test]
    fn identity_and_size() {
        let m = LinearModel::identity();
        assert_eq!(m.predict_value(17), 17);
        assert_eq!(m.size_bytes(), 16);
    }
}
