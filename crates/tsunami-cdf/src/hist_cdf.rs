//! Compact equi-depth histogram CDF model.
//!
//! Stores `p` boundary values such that each bucket holds an equal share of
//! the data; the CDF is interpolated linearly inside each bucket. This is the
//! compact per-dimension model used by the grids (Flood's "choice of modeling
//! technique is orthogonal; ... one could also use a histogram", §2.2).

use crate::CdfModel;
use tsunami_core::histogram::equi_depth_boundaries;
use tsunami_core::Value;

/// An equi-depth histogram model of a CDF.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramCdf {
    /// Bucket boundaries: `buckets + 1` ascending values, covering
    /// `[boundaries[0], boundaries[last])`.
    boundaries: Vec<Value>,
}

impl HistogramCdf {
    /// Builds the model over `values` with (up to) `buckets` equi-depth
    /// buckets.
    pub fn build(values: &[Value], buckets: usize) -> Self {
        let buckets = buckets.max(1);
        Self {
            boundaries: equi_depth_boundaries(values, buckets),
        }
    }

    /// Builds a model directly from explicit boundaries (ascending).
    pub fn from_boundaries(boundaries: Vec<Value>) -> Self {
        debug_assert!(boundaries.len() >= 2);
        debug_assert!(boundaries.windows(2).all(|w| w[0] < w[1]));
        Self { boundaries }
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.boundaries.len() - 1
    }

    /// The bucket boundaries.
    pub fn boundaries(&self) -> &[Value] {
        &self.boundaries
    }

    /// The smallest modeled value.
    pub fn min(&self) -> Value {
        self.boundaries[0]
    }

    /// One past the largest modeled value.
    pub fn end(&self) -> Value {
        *self.boundaries.last().unwrap()
    }

    /// Widens the model's covered value range to include `[lo, hi]` by
    /// extending the *outer* boundaries only: the first boundary moves down
    /// to `lo`, the last moves up past `hi`. Interior boundaries — and with
    /// them the bucket assignment of every value the model already covered —
    /// are unchanged, so a clustered layout stays valid.
    ///
    /// This is the ingest primitive for grid layouts: appended values outside
    /// the modeled range clamp into the first/last bucket, and widening keeps
    /// the bucket *value bounds* truthful about them — which the exact-range
    /// scan optimization and residual-predicate elimination rely on. (At the
    /// extreme top of the `u64` domain the last boundary saturates at
    /// `u64::MAX`, whose exclusive upper bound cannot be represented; a
    /// stored `u64::MAX` therefore keeps the last bucket conservative via
    /// [`HistogramCdf::bucket_contained_in`].)
    pub fn widen(&mut self, lo: Value, hi: Value) {
        if lo < self.boundaries[0] {
            self.boundaries[0] = lo;
        }
        let last = self.boundaries.len() - 1;
        if hi >= self.boundaries[last] {
            self.boundaries[last] = hi.saturating_add(1);
        }
    }

    /// Whether bucket `i` is *provably* contained in `[lo, hi]` — every
    /// value the bucket can hold satisfies the range, so callers may treat
    /// its rows as matching without re-checks (the exact-range scan
    /// optimization and residual-predicate elimination).
    ///
    /// Conservative at the top of the `u64` domain: a final boundary
    /// saturated at `u64::MAX` (the exclusive end of a bucket holding
    /// `u64::MAX` cannot be represented — both [`HistogramCdf::widen`] and
    /// build-time boundary fitting saturate there) means the last bucket
    /// may also hold `u64::MAX` itself, so its containment additionally
    /// requires `hi == u64::MAX`.
    pub fn bucket_contained_in(&self, i: usize, lo: Value, hi: Value) -> bool {
        let b = &self.boundaries;
        if i + 1 >= b.len() {
            return false;
        }
        if i + 2 == b.len() && b[i + 1] == Value::MAX && hi != Value::MAX {
            return false;
        }
        lo <= b[i] && b[i + 1] - 1 <= hi
    }

    /// The bucket containing `v`, clamped into `0..num_buckets()`.
    ///
    /// Unlike [`CdfModel::partition`], which divides the CDF into `p` equal
    /// slices, this returns the *bucket index*, whose exact value range is
    /// `[boundaries[i], boundaries[i+1])`. Grid layouts use buckets as their
    /// partitions so that partition membership and partition value bounds are
    /// always consistent (needed for the exact-range scan optimization).
    pub fn bucket_of(&self, v: Value) -> usize {
        if v < self.boundaries[0] {
            return 0;
        }
        let idx = self.boundaries.partition_point(|&b| b <= v);
        idx.saturating_sub(1).min(self.num_buckets() - 1)
    }

    /// The inclusive bucket range intersected by the value range `[lo, hi]`.
    pub fn bucket_range(&self, lo: Value, hi: Value) -> (usize, usize) {
        let a = self.bucket_of(lo);
        let b = self.bucket_of(hi);
        (a.min(b), a.max(b))
    }

    /// The inclusive value bounds `[lo, hi]` of bucket `i` (clamped).
    pub fn bucket_bounds(&self, i: usize) -> (Value, Value) {
        let i = i.min(self.num_buckets() - 1);
        (self.boundaries[i], self.boundaries[i + 1].saturating_sub(1))
    }

    /// Approximate inverse CDF: the value at which the CDF reaches `q`.
    pub fn quantile(&self, q: f64) -> Value {
        let q = q.clamp(0.0, 1.0);
        let nb = self.num_buckets() as f64;
        let pos = q * nb;
        let bucket = (pos.floor() as usize).min(self.num_buckets() - 1);
        let frac = pos - bucket as f64;
        let lo = self.boundaries[bucket] as f64;
        let hi = self.boundaries[bucket + 1] as f64;
        (lo + frac * (hi - lo)) as Value
    }
}

impl CdfModel for HistogramCdf {
    fn cdf(&self, v: Value) -> f64 {
        let n = self.num_buckets();
        if v < self.boundaries[0] {
            return 0.0;
        }
        if v >= self.end() {
            return 1.0;
        }
        // Find the bucket containing v.
        let idx = self.boundaries.partition_point(|&b| b <= v);
        let bucket = idx - 1;
        let lo = self.boundaries[bucket] as f64;
        let hi = self.boundaries[bucket + 1] as f64;
        let within = if hi > lo {
            (v as f64 - lo) / (hi - lo)
        } else {
            0.0
        };
        (bucket as f64 + within) / n as f64
    }

    fn size_bytes(&self) -> usize {
        self.boundaries.len() * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let values: Vec<Value> = (0..10_000).map(|v| (v * v) % 7919).collect();
        let m = HistogramCdf::build(&values, 64);
        let mut prev = -1.0;
        for v in (0..8000).step_by(13) {
            let c = m.cdf(v);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev, "CDF must be non-decreasing");
            prev = c;
        }
    }

    #[test]
    fn approximates_exact_cdf_on_uniform_data() {
        let values: Vec<Value> = (0..5000).collect();
        let m = HistogramCdf::build(&values, 128);
        let e = Ecdf::new(&values);
        for v in (0..5000).step_by(97) {
            assert!((m.cdf(v) - e.cdf(v)).abs() < 0.02, "value {v}");
        }
    }

    #[test]
    fn partitions_are_balanced_on_skewed_data() {
        // Heavily skewed data: most mass near zero.
        let values: Vec<Value> = (0..10_000u64).map(|v| (v / 100).pow(2)).collect();
        let m = HistogramCdf::build(&values, 16);
        let mut counts = [0usize; 8];
        for &v in &values {
            counts[m.partition(v, 8)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        // Equi-depth modeling keeps partitions within a reasonable factor.
        assert!(max <= min * 4 + 200, "min {min} max {max}");
    }

    #[test]
    fn quantile_roughly_inverts_cdf() {
        let values: Vec<Value> = (0..1000).map(|v| v * 10).collect();
        let m = HistogramCdf::build(&values, 32);
        for &q in &[0.1, 0.25, 0.5, 0.75, 0.9] {
            let v = m.quantile(q);
            assert!((m.cdf(v) - q).abs() < 0.05, "q={q} v={v}");
        }
    }

    #[test]
    fn from_boundaries_and_accessors() {
        let m = HistogramCdf::from_boundaries(vec![0, 10, 20, 40]);
        assert_eq!(m.num_buckets(), 3);
        assert_eq!(m.min(), 0);
        assert_eq!(m.end(), 40);
        assert_eq!(m.cdf(0), 0.0);
        assert_eq!(m.cdf(40), 1.0);
        assert!((m.cdf(10) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.size_bytes(), 32);
    }

    #[test]
    fn widen_extends_outer_boundaries_only() {
        let mut m = HistogramCdf::from_boundaries(vec![10, 20, 40]);
        // Old assignments are a function of interior boundaries only.
        let old_bucket_of_25 = m.bucket_of(25);
        m.widen(2, 99);
        assert_eq!(m.boundaries(), &[2, 20, 100]);
        assert_eq!(m.bucket_of(25), old_bucket_of_25);
        // New out-of-range values now fall inside truthful bucket bounds.
        assert_eq!(m.bucket_of(2), 0);
        assert_eq!(m.bucket_bounds(0), (2, 19));
        assert_eq!(m.bucket_of(99), 1);
        assert_eq!(m.bucket_bounds(1), (20, 99));
        // Widening within the covered range is a no-op.
        m.widen(50, 60);
        assert_eq!(m.boundaries(), &[2, 20, 100]);
        // The top of the u64 domain saturates.
        m.widen(0, u64::MAX);
        assert_eq!(*m.boundaries().last().unwrap(), u64::MAX);
    }

    #[test]
    fn bucket_containment_is_conservative_at_the_saturated_top() {
        let m = HistogramCdf::from_boundaries(vec![0, 10, 20]);
        assert!(m.bucket_contained_in(0, 0, 9));
        assert!(!m.bucket_contained_in(0, 1, 9));
        assert!(!m.bucket_contained_in(0, 0, 8));
        assert!(m.bucket_contained_in(1, 10, 19));
        // Out-of-range bucket index: never contained.
        assert!(!m.bucket_contained_in(2, 0, Value::MAX));

        // Saturated final boundary: the last bucket may hold u64::MAX
        // itself, so containment needs hi == u64::MAX.
        let mut m = HistogramCdf::from_boundaries(vec![0, 10, 20]);
        m.widen(0, Value::MAX);
        assert_eq!(*m.boundaries().last().unwrap(), Value::MAX);
        assert!(!m.bucket_contained_in(1, 10, Value::MAX - 1));
        assert!(m.bucket_contained_in(1, 10, Value::MAX));
        // Buckets below the top are unaffected by the saturation.
        assert!(m.bucket_contained_in(0, 0, 9));
    }

    #[test]
    fn constant_column_is_handled() {
        let values = vec![42u64; 1000];
        let m = HistogramCdf::build(&values, 16);
        // All values collapse into one bucket; every lookup is valid.
        assert_eq!(m.partition(42, 4), 0);
        assert_eq!(m.partition(43, 4), 3);
        assert_eq!(m.cdf(41), 0.0);
    }
}
