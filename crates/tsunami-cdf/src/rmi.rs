//! A two-layer Recursive Model Index (RMI) over sorted values, used as a
//! compact learned CDF model (Kraska et al., referenced by Flood §2.2).
//!
//! The root linear model routes a key to one of `L` leaf linear models; each
//! leaf predicts the key's rank within the sorted array. The CDF is the
//! predicted rank divided by the number of keys.

use crate::{CdfModel, LinearModel};
use tsunami_core::Value;

/// A two-layer RMI approximating the CDF of a value distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct Rmi {
    root: LinearModel,
    leaves: Vec<LinearModel>,
    /// Maximum absolute rank error observed across the training keys.
    max_error: f64,
    n: usize,
}

impl Rmi {
    /// Builds an RMI with `num_leaves` leaf models over `values` (any order).
    pub fn build(values: &[Value], num_leaves: usize) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Self::build_from_sorted(&sorted, num_leaves)
    }

    /// Builds an RMI from already-sorted values.
    pub fn build_from_sorted(sorted: &[Value], num_leaves: usize) -> Self {
        let n = sorted.len();
        let num_leaves = num_leaves.max(1);
        if n == 0 {
            return Self {
                root: LinearModel::constant(0.0),
                leaves: vec![LinearModel::constant(0.0)],
                max_error: 0.0,
                n: 0,
            };
        }

        // Root model: predict (approximate) rank from key over all data, then
        // scale to leaf index.
        let xs: Vec<f64> = sorted.iter().map(|&v| v as f64).collect();
        let ranks: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let root_rank = LinearModel::fit_f64(&xs, &ranks);
        let root = LinearModel {
            slope: root_rank.slope * num_leaves as f64 / n as f64,
            intercept: root_rank.intercept * num_leaves as f64 / n as f64,
        };

        // Assign each key to a leaf using the root, then fit each leaf on its
        // keys (predicting global rank).
        let mut leaf_keys: Vec<Vec<f64>> = vec![Vec::new(); num_leaves];
        let mut leaf_ranks: Vec<Vec<f64>> = vec![Vec::new(); num_leaves];
        for (i, &x) in xs.iter().enumerate() {
            let leaf = route(&root, x, num_leaves);
            leaf_keys[leaf].push(x);
            leaf_ranks[leaf].push(ranks[i]);
        }
        let leaves: Vec<LinearModel> = (0..num_leaves)
            .map(|l| {
                if leaf_keys[l].is_empty() {
                    // Empty leaf: interpolate between neighbors via the root.
                    LinearModel::constant((l as f64 + 0.5) / num_leaves as f64 * n as f64)
                } else {
                    LinearModel::fit_f64(&leaf_keys[l], &leaf_ranks[l])
                }
            })
            .collect();

        // Measure the maximum rank error for diagnostics / tests.
        let mut max_error = 0.0f64;
        for (i, &x) in xs.iter().enumerate() {
            let leaf = route(&root, x, num_leaves);
            let predicted = leaves[leaf].predict(x);
            max_error = max_error.max((predicted - i as f64).abs());
        }

        Self {
            root,
            leaves,
            max_error,
            n,
        }
    }

    /// Number of training keys.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the model was trained on no keys.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of leaf models.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Maximum absolute rank error over the training keys.
    pub fn max_error(&self) -> f64 {
        self.max_error
    }

    /// Predicted rank of a key (clamped to `[0, n]`).
    pub fn predict_rank(&self, v: Value) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let x = v as f64;
        let leaf = route(&self.root, x, self.leaves.len());
        self.leaves[leaf].predict(x).clamp(0.0, self.n as f64)
    }
}

fn route(root: &LinearModel, x: f64, num_leaves: usize) -> usize {
    let idx = root.predict(x).floor();
    if idx <= 0.0 {
        0
    } else if idx >= (num_leaves - 1) as f64 {
        num_leaves - 1
    } else {
        idx as usize
    }
}

impl CdfModel for Rmi {
    fn cdf(&self, v: Value) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        // The RMI's raw prediction is not guaranteed monotone across leaf
        // boundaries; monotonicity matters for partition assignment, so we
        // take the max of the prediction at `v` and the start of its leaf's
        // range... in practice linear leaves over sorted data are monotone
        // within a leaf, and routing is monotone, so clamping suffices.
        (self.predict_rank(v) / self.n as f64).clamp(0.0, 1.0)
    }

    fn size_bytes(&self) -> usize {
        (1 + self.leaves.len()) * std::mem::size_of::<LinearModel>()
            + std::mem::size_of::<f64>()
            + std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ecdf;

    #[test]
    fn rmi_tracks_uniform_cdf_closely() {
        let values: Vec<Value> = (0..10_000).map(|v| v * 7).collect();
        let rmi = Rmi::build(&values, 64);
        let e = Ecdf::new(&values);
        for v in (0..70_000).step_by(997) {
            assert!((rmi.cdf(v) - e.cdf(v)).abs() < 0.02, "v={v}");
        }
        assert!(rmi.max_error() < 100.0);
    }

    #[test]
    fn rmi_tracks_skewed_cdf_reasonably() {
        // Quadratic growth: heavy density at small values.
        let values: Vec<Value> = (0..5_000u64).map(|v| v * v / 100).collect();
        let rmi = Rmi::build(&values, 128);
        let e = Ecdf::new(&values);
        let mut worst = 0.0f64;
        for v in (0..250_000).step_by(1009) {
            worst = worst.max((rmi.cdf(v) - e.cdf(v)).abs());
        }
        assert!(worst < 0.1, "worst CDF error {worst}");
    }

    #[test]
    fn cdf_is_bounded_and_roughly_monotone() {
        let values: Vec<Value> = (0..2000).map(|v| (v * 131) % 10_007).collect();
        let rmi = Rmi::build(&values, 32);
        let mut prev = 0.0;
        for v in (0..10_007).step_by(53) {
            let c = rmi.cdf(v);
            assert!((0.0..=1.0).contains(&c));
            // Allow tiny non-monotonicity from leaf boundaries.
            assert!(c >= prev - 0.02, "v={v}: {c} < {prev}");
            prev = prev.max(c);
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let rmi = Rmi::build(&[], 8);
        assert!(rmi.is_empty());
        assert_eq!(rmi.cdf(99), 0.0);
        let rmi = Rmi::build(&[42], 8);
        assert_eq!(rmi.len(), 1);
        assert!(rmi.cdf(42) <= 1.0);
    }

    #[test]
    fn size_is_compact() {
        let values: Vec<Value> = (0..100_000).collect();
        let rmi = Rmi::build(&values, 64);
        // The whole point: the model is far smaller than the data.
        assert!(rmi.size_bytes() < values.len() * 8 / 50);
        assert_eq!(rmi.num_leaves(), 64);
    }

    #[test]
    fn partition_balance_on_uniform_data() {
        let values: Vec<Value> = (0..10_000).collect();
        let rmi = Rmi::build(&values, 32);
        let mut counts = [0usize; 10];
        for &v in &values {
            counts[rmi.partition(v, 10)] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(max < min * 2 + 100, "min {min} max {max}");
    }
}
