//! Exact empirical CDF backed by a sorted copy of (a sample of) the values.
//!
//! This is the reference model the learned models are tested against, and is
//! also a perfectly valid (if larger) `CdfModel` in its own right.

use crate::CdfModel;
use tsunami_core::Value;

/// An exact empirical CDF over a set of values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ecdf {
    sorted: Vec<Value>,
}

impl Ecdf {
    /// Builds the ECDF from values (any order).
    pub fn new(values: &[Value]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        Self { sorted }
    }

    /// Builds the ECDF from already-sorted values.
    pub fn from_sorted(sorted: Vec<Value>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        Self { sorted }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF was built over no values.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The `q`-quantile value (q in `[0, 1]`), or 0 for an empty ECDF.
    pub fn quantile(&self, q: f64) -> Value {
        if self.sorted.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * q).round() as usize;
        self.sorted[idx]
    }
}

impl CdfModel for Ecdf {
    fn cdf(&self, v: Value) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = self.sorted.partition_point(|&x| x <= v);
        rank as f64 / self.sorted.len() as f64
    }

    fn size_bytes(&self) -> usize {
        self.sorted.len() * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_is_fraction_of_values_leq() {
        let e = Ecdf::new(&[10, 20, 30, 40]);
        assert_eq!(e.cdf(5), 0.0);
        assert_eq!(e.cdf(10), 0.25);
        assert_eq!(e.cdf(25), 0.5);
        assert_eq!(e.cdf(40), 1.0);
        assert_eq!(e.cdf(1000), 1.0);
    }

    #[test]
    fn partition_assignment_is_balanced_on_uniform_data() {
        let values: Vec<Value> = (0..1000).collect();
        let e = Ecdf::new(&values);
        let mut counts = vec![0usize; 10];
        for &v in &values {
            counts[e.partition(v, 10)] += 1;
        }
        for c in counts {
            assert!((80..=120).contains(&c), "unbalanced partition: {c}");
        }
    }

    #[test]
    fn partition_range_orders_bounds() {
        let e = Ecdf::new(&(0..100u64).collect::<Vec<_>>());
        assert_eq!(e.partition_range(10, 90, 10), (1, 9));
        assert_eq!(e.partition_range(90, 10, 10), (1, 9));
    }

    #[test]
    fn quantile_inverts_cdf_roughly() {
        let values: Vec<Value> = (0..1000).map(|v| v * 3).collect();
        let e = Ecdf::new(&values);
        let q = e.quantile(0.5);
        assert!((e.cdf(q) - 0.5).abs() < 0.01);
        assert_eq!(e.quantile(0.0), 0);
        assert_eq!(e.quantile(1.0), 999 * 3);
    }

    #[test]
    fn empty_ecdf_is_safe() {
        let e = Ecdf::new(&[]);
        assert!(e.is_empty());
        assert_eq!(e.cdf(42), 0.0);
        assert_eq!(e.quantile(0.7), 0);
        assert_eq!(e.partition(42, 4), 0);
    }

    #[test]
    fn from_sorted_matches_new() {
        let a = Ecdf::new(&[3, 1, 2]);
        let b = Ecdf::from_sorted(vec![1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.size_bytes(), 24);
    }
}
