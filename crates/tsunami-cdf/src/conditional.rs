//! Conditional CDFs: `CDF(Y | X)` for generically correlated dimensions
//! (§5.2.2).
//!
//! The base dimension `X` is partitioned uniformly in `CDF(X)`; the dependent
//! dimension `Y` is partitioned uniformly in `CDF(Y | X)` by storing one
//! compact equi-depth CDF of `Y` *per base partition*. This staggers the `Y`
//! partition boundaries across base partitions, producing equally-sized cells
//! even when `X` and `Y` are correlated. Storage is proportional to
//! `p_X * p_Y`, which is negligible next to the grid's cell lookup table.

use crate::{CdfModel, HistogramCdf};
use tsunami_core::Value;

/// Per-base-partition CDF models of a dependent dimension.
#[derive(Debug, Clone, PartialEq)]
pub struct ConditionalCdf {
    /// One model of `CDF(Y | X in partition b)` per base partition `b`.
    per_base: Vec<HistogramCdf>,
}

impl ConditionalCdf {
    /// Builds the conditional CDF.
    ///
    /// * `base_partition_of_row[r]` — the base-dimension partition of row `r`
    ///   (in `0..num_base_partitions`).
    /// * `dependent_values[r]` — the dependent dimension's value of row `r`.
    /// * `buckets` — number of equi-depth buckets per conditional CDF
    ///   (typically the number of partitions of the dependent dimension).
    pub fn build(
        base_partition_of_row: &[usize],
        dependent_values: &[Value],
        num_base_partitions: usize,
        buckets: usize,
    ) -> Self {
        debug_assert_eq!(base_partition_of_row.len(), dependent_values.len());
        let mut grouped: Vec<Vec<Value>> = vec![Vec::new(); num_base_partitions.max(1)];
        for (r, &b) in base_partition_of_row.iter().enumerate() {
            let b = b.min(grouped.len() - 1);
            grouped[b].push(dependent_values[r]);
        }
        let per_base = grouped
            .into_iter()
            .map(|vals| HistogramCdf::build(&vals, buckets.max(1)))
            .collect();
        Self { per_base }
    }

    /// Number of base partitions.
    pub fn num_base_partitions(&self) -> usize {
        self.per_base.len()
    }

    /// The conditional CDF model for a base partition (clamped into range).
    pub fn model_for(&self, base_partition: usize) -> &HistogramCdf {
        &self.per_base[base_partition.min(self.per_base.len() - 1)]
    }

    /// CDF of `y` conditioned on the base partition.
    pub fn cdf(&self, base_partition: usize, y: Value) -> f64 {
        self.model_for(base_partition).cdf(y)
    }

    /// Partition of `y` (out of `p` partitions) conditioned on the base
    /// partition.
    pub fn partition(&self, base_partition: usize, y: Value, p: usize) -> usize {
        self.model_for(base_partition).partition(y, p)
    }

    /// Inclusive partition range of `[lo, hi]` within a base partition.
    pub fn partition_range(
        &self,
        base_partition: usize,
        lo: Value,
        hi: Value,
        p: usize,
    ) -> (usize, usize) {
        self.model_for(base_partition).partition_range(lo, hi, p)
    }

    /// Bucket of `y` within the base partition's conditional model (see
    /// [`HistogramCdf::bucket_of`]): bucket indices are aligned with bucket
    /// value boundaries, which grid layouts rely on for exact-range scans.
    pub fn bucket_of(&self, base_partition: usize, y: Value) -> usize {
        self.model_for(base_partition).bucket_of(y)
    }

    /// Inclusive bucket range of `[lo, hi]` within a base partition.
    pub fn bucket_range(&self, base_partition: usize, lo: Value, hi: Value) -> (usize, usize) {
        self.model_for(base_partition).bucket_range(lo, hi)
    }

    /// Whether the value range `[lo, hi]` can contain any point of the given
    /// base partition. Ranges entirely outside the partition's observed
    /// dependent-value domain are guaranteed empty (the gray regions of
    /// Fig 6), letting queries skip those base partitions entirely.
    pub fn may_contain(&self, base_partition: usize, lo: Value, hi: Value) -> bool {
        let m = self.model_for(base_partition);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        hi >= m.min() && lo < m.end()
    }

    /// Total size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.per_base.iter().map(CdfModel::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Data where Y is strongly correlated with the base partition:
    /// base partition b holds Y values in [1000*b, 1000*b + 999].
    fn correlated(num_base: usize, per_base: usize) -> (Vec<usize>, Vec<Value>) {
        let mut base = Vec::new();
        let mut y = Vec::new();
        for b in 0..num_base {
            for i in 0..per_base {
                base.push(b);
                y.push((b * 1000 + (i * 997) % 1000) as Value);
            }
        }
        (base, y)
    }

    #[test]
    fn partitions_are_balanced_within_each_base_partition() {
        let (base, y) = correlated(4, 1000);
        let ccdf = ConditionalCdf::build(&base, &y, 4, 8);
        for b in 0..4 {
            let mut counts = [0usize; 8];
            for i in 0..base.len() {
                if base[i] == b {
                    counts[ccdf.partition(b, y[i], 8)] += 1;
                }
            }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            assert!(max <= min * 2 + 50, "base {b}: min {min} max {max}");
        }
    }

    #[test]
    fn boundaries_are_staggered_across_base_partitions() {
        let (base, y) = correlated(4, 1000);
        let ccdf = ConditionalCdf::build(&base, &y, 4, 8);
        // The same Y value lands in very different partitions depending on
        // the base partition — that is the staggering that equalizes cells.
        let y_probe = 3500;
        let p_in_base3 = ccdf.partition(3, y_probe, 8);
        let p_in_base0 = ccdf.partition(0, y_probe, 8);
        assert!(p_in_base3 < 8);
        // In base 0 the probe is far above every stored Y, so it maps to the
        // last partition; in base 3 it is in the middle.
        assert_eq!(p_in_base0, 7);
        assert!(p_in_base3 < 7);
    }

    #[test]
    fn may_contain_prunes_empty_regions() {
        let (base, y) = correlated(4, 500);
        let ccdf = ConditionalCdf::build(&base, &y, 4, 8);
        // Y range [0, 900] only exists in base partition 0.
        assert!(ccdf.may_contain(0, 0, 900));
        assert!(!ccdf.may_contain(1, 0, 900));
        assert!(!ccdf.may_contain(3, 0, 900));
        // A range spanning everything intersects every base partition.
        assert!((0..4).all(|b| ccdf.may_contain(b, 0, 10_000)));
    }

    #[test]
    fn partition_range_and_model_access() {
        let (base, y) = correlated(2, 1000);
        let ccdf = ConditionalCdf::build(&base, &y, 2, 4);
        assert_eq!(ccdf.num_base_partitions(), 2);
        let (lo, hi) = ccdf.partition_range(0, 0, 999, 4);
        assert_eq!((lo, hi), (0, 3));
        let (lo, hi) = ccdf.partition_range(0, 999, 0, 4);
        assert_eq!((lo, hi), (0, 3));
        assert!(ccdf.size_bytes() > 0);
    }

    #[test]
    fn out_of_range_base_partition_is_clamped() {
        let (base, y) = correlated(2, 100);
        let ccdf = ConditionalCdf::build(&base, &y, 2, 4);
        // Requesting a non-existent base partition uses the last one rather
        // than panicking.
        let _ = ccdf.cdf(99, 500);
        let _ = ccdf.partition(99, 1500, 4);
    }

    #[test]
    fn empty_base_partitions_are_tolerated() {
        // Base partition 1 receives no rows.
        let base = vec![0usize, 0, 2, 2];
        let y = vec![1u64, 2, 3, 4];
        let ccdf = ConditionalCdf::build(&base, &y, 3, 4);
        assert_eq!(ccdf.num_base_partitions(), 3);
        // Queries against the empty partition do not panic.
        assert!(ccdf.cdf(1, 2) >= 0.0);
    }
}
