//! Functional mappings between monotonically correlated dimensions (§5.2.1).
//!
//! For a tightly monotonically correlated pair of dimensions, a filter range
//! over the *mapped* dimension `Y` can be rewritten as a range over the
//! *target* dimension `X` using a linear regression `X ≈ LR(Y)` with lower
//! and upper error bounds. The mapping guarantees: any point whose `Y` value
//! lies in `[y_lo, y_hi]` has an `X` value inside the mapped range. A
//! functional mapping is encoded in four floating point numbers (slope,
//! intercept, and the two error bounds) and has negligible storage overhead.

use crate::LinearModel;
use tsunami_core::Value;

/// A linear mapping from a mapped dimension `Y` to a target dimension `X`
/// with conservative error bounds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionalMapping {
    model: LinearModel,
    /// Maximum amount by which the model over-predicts X (true X can be up to
    /// `err_lo` below the prediction).
    err_lo: f64,
    /// Maximum amount by which the model under-predicts X (true X can be up
    /// to `err_hi` above the prediction).
    err_hi: f64,
}

impl FunctionalMapping {
    /// Fits a mapping that predicts `target` (X) from `mapped` (Y).
    ///
    /// Returns `None` if the inputs are empty or have mismatched lengths.
    pub fn fit(mapped_y: &[Value], target_x: &[Value]) -> Option<Self> {
        if mapped_y.is_empty() || mapped_y.len() != target_x.len() {
            return None;
        }
        let ys: Vec<f64> = mapped_y.iter().map(|&v| v as f64).collect();
        let xs: Vec<f64> = target_x.iter().map(|&v| v as f64).collect();
        let model = LinearModel::fit_f64(&ys, &xs);
        let mut err_lo = 0.0f64;
        let mut err_hi = 0.0f64;
        for i in 0..ys.len() {
            let pred = model.predict(ys[i]);
            let diff = xs[i] - pred;
            if diff < 0.0 {
                err_lo = err_lo.max(-diff);
            } else {
                err_hi = err_hi.max(diff);
            }
        }
        Some(Self {
            model,
            err_lo,
            err_hi,
        })
    }

    /// The underlying linear model.
    pub fn model(&self) -> LinearModel {
        self.model
    }

    /// The total width of the error band (`err_lo + err_hi`).
    pub fn error_span(&self) -> f64 {
        self.err_lo + self.err_hi
    }

    /// Whether the mapping is "tight" relative to the target dimension's
    /// domain: the paper's heuristic uses a functional mapping when the error
    /// bound is below 10% of the target domain (§5.3.2).
    pub fn is_tight(&self, target_domain: (Value, Value), fraction: f64) -> bool {
        let width = (target_domain.1 - target_domain.0) as f64;
        if width <= 0.0 {
            return true;
        }
        self.error_span() <= fraction * width
    }

    /// Maps a filter range `[y_lo, y_hi]` over the mapped dimension into a
    /// conservative range `[x_lo, x_hi]` over the target dimension.
    ///
    /// The result is widened by the error bounds so the containment guarantee
    /// holds for every training point; it is clamped to the `u64` domain.
    pub fn map_range(&self, y_lo: Value, y_hi: Value) -> (Value, Value) {
        let (y_lo, y_hi) = if y_lo <= y_hi {
            (y_lo, y_hi)
        } else {
            (y_hi, y_lo)
        };
        let p_lo = self.model.predict(y_lo as f64);
        let p_hi = self.model.predict(y_hi as f64);
        // A negative slope flips the ends of the interval.
        let (mut lo, mut hi) = if p_lo <= p_hi {
            (p_lo, p_hi)
        } else {
            (p_hi, p_lo)
        };
        lo -= self.err_lo;
        hi += self.err_hi;
        let x_lo = if lo <= 0.0 { 0 } else { lo.floor() as Value };
        let x_hi = if hi >= u64::MAX as f64 {
            u64::MAX
        } else if hi < 0.0 {
            0
        } else {
            hi.ceil() as Value
        };
        (x_lo, x_hi.max(x_lo))
    }

    /// Size of the mapping in bytes: four floats (§5.2.1).
    pub fn size_bytes(&self) -> usize {
        4 * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn correlated_data(noise: u64) -> (Vec<Value>, Vec<Value>) {
        // X = 3*Y + 100 ± noise, deterministic "noise" pattern.
        let ys: Vec<Value> = (0..2000).collect();
        let xs: Vec<Value> = ys
            .iter()
            .map(|&y| 3 * y + 100 + (y * 7919 % (2 * noise + 1)))
            .collect();
        (ys, xs)
    }

    #[test]
    fn containment_guarantee_holds_for_all_training_points() {
        let (ys, xs) = correlated_data(25);
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        // For several query ranges over Y, every training point with Y in the
        // range must have X in the mapped range.
        for &(qlo, qhi) in &[(0u64, 100u64), (500, 600), (1500, 1999), (42, 42)] {
            let (xlo, xhi) = fm.map_range(qlo, qhi);
            for i in 0..ys.len() {
                if ys[i] >= qlo && ys[i] <= qhi {
                    assert!(
                        xs[i] >= xlo && xs[i] <= xhi,
                        "point (y={}, x={}) escaped mapped range [{xlo}, {xhi}] for query [{qlo}, {qhi}]",
                        ys[i],
                        xs[i]
                    );
                }
            }
        }
    }

    #[test]
    fn tight_correlation_has_small_error_span() {
        let (ys, xs) = correlated_data(5);
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        // domain of X is about [100, 6100]; error should be far below 10%.
        assert!(fm.is_tight((100, 6100), 0.1));
        assert!(fm.error_span() < 50.0);
    }

    #[test]
    fn loose_correlation_is_not_tight() {
        let ys: Vec<Value> = (0..1000).collect();
        // X only loosely follows Y: huge deterministic deviations.
        let xs: Vec<Value> = ys.iter().map(|&y| y + (y * 7919 % 2000) * 3).collect();
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        assert!(!fm.is_tight((0, 7000), 0.1));
    }

    #[test]
    fn negative_slope_correlations_are_supported() {
        let ys: Vec<Value> = (0..1000).collect();
        let xs: Vec<Value> = ys.iter().map(|&y| 10_000 - 5 * y).collect();
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        let (xlo, xhi) = fm.map_range(100, 200);
        for &x in &xs[100..=200] {
            assert!(x >= xlo && x <= xhi);
        }
        assert!(xlo < xhi);
    }

    #[test]
    fn reversed_query_bounds_are_normalized() {
        let (ys, xs) = correlated_data(10);
        let fm = FunctionalMapping::fit(&ys, &xs).unwrap();
        assert_eq!(fm.map_range(100, 50), fm.map_range(50, 100));
    }

    #[test]
    fn degenerate_inputs_return_none_or_work() {
        assert!(FunctionalMapping::fit(&[], &[]).is_none());
        assert!(FunctionalMapping::fit(&[1, 2], &[1]).is_none());
        let fm = FunctionalMapping::fit(&[5], &[50]).unwrap();
        let (lo, hi) = fm.map_range(5, 5);
        assert!(lo <= 50 && hi >= 50);
        assert_eq!(fm.size_bytes(), 32);
    }
}
