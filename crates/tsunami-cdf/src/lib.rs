//! CDF models and correlation-capturing models for learned multi-dimensional
//! indexes.
//!
//! Flood partitions every dimension uniformly in its CDF (§2.2); Tsunami's
//! Augmented Grid additionally uses two correlation-aware techniques (§5.2):
//!
//! * [`FunctionalMapping`] — a linear regression with error bounds that maps
//!   a filter range on a *mapped* dimension into a range on a *target*
//!   dimension, letting the mapped dimension be dropped from the grid
//!   entirely (§5.2.1).
//! * [`ConditionalCdf`] — per-base-partition CDFs of a *dependent* dimension,
//!   i.e. `CDF(Y | X)`, producing staggered partition boundaries and
//!   equally-sized cells under generic correlations (§5.2.2).
//!
//! The choice of single-dimension CDF model is orthogonal in the paper (RMI,
//! histogram or linear regression); this crate provides all three behind the
//! [`CdfModel`] trait.

pub mod conditional;
pub mod ecdf;
pub mod hist_cdf;
pub mod linear;
pub mod mapping;
pub mod rmi;

pub use conditional::ConditionalCdf;
pub use ecdf::Ecdf;
pub use hist_cdf::HistogramCdf;
pub use linear::LinearModel;
pub use mapping::FunctionalMapping;
pub use rmi::Rmi;

use tsunami_core::Value;

/// A model of a one-dimensional CDF over `u64` values.
///
/// Implementations guarantee that `cdf` is monotonically non-decreasing in
/// its argument and lies in `[0, 1]`.
pub trait CdfModel {
    /// Estimated fraction of values `<= v`.
    fn cdf(&self, v: Value) -> f64;

    /// Maps a value to one of `p` equal-CDF-mass partitions:
    /// `floor(CDF(v) * p)`, clamped to `p - 1` (§2.2).
    fn partition(&self, v: Value, p: usize) -> usize {
        debug_assert!(p > 0);
        let raw = (self.cdf(v) * p as f64).floor() as isize;
        raw.clamp(0, p as isize - 1) as usize
    }

    /// The inclusive partition range `[lo_p, hi_p]` intersected by the value
    /// range `[lo, hi]`.
    fn partition_range(&self, lo: Value, hi: Value, p: usize) -> (usize, usize) {
        let a = self.partition(lo, p);
        let b = self.partition(hi, p);
        (a.min(b), a.max(b))
    }

    /// Approximate size of the model in bytes (for index-size accounting).
    fn size_bytes(&self) -> usize;
}
