//! `tsunami-server`: a TCP wire-protocol front-end over a sharded
//! scatter-gather [`ShardedDatabase`](tsunami_engine::ShardedDatabase).
//!
//! The crate is three small layers:
//!
//! * [`protocol`] — a length-prefixed binary protocol (version byte,
//!   max-frame-size guard, strict hand-rolled encode/decode) carrying
//!   range-aggregation requests and typed results/errors.
//! * [`server`] — a blocking accept loop with per-connection reader threads
//!   that park in `read()`; all query execution lands on the shared
//!   work-stealing pool through the engine's scheduler, so connection count
//!   never multiplies CPU work. Includes the watermark-triggered
//!   [`ReoptDaemon`] that keeps shard indexes adapted under drift.
//! * [`client`] — a minimal blocking client (one request in flight per
//!   connection), the building block of the open-loop `fig7net` load
//!   generator.
//!
//! # Example
//!
//! ```
//! use std::sync::{Arc, RwLock};
//! use tsunami_core::{Aggregation, Dataset, Predicate, Workload};
//! use tsunami_engine::{IndexSpec, ShardedDatabase};
//! use tsunami_server::{Client, Server, ServerConfig};
//!
//! let data = Dataset::from_columns(vec![
//!     (0..1_000u64).collect(),
//!     (0..1_000u64).map(|v| v % 50).collect(),
//! ])
//! .unwrap();
//! let mut db = ShardedDatabase::new(4);
//! db.create_table("orders", &["id", "qty"], &data, &Workload::default(), &IndexSpec::FullScan)
//!     .unwrap();
//!
//! let mut server =
//!     Server::spawn(Arc::new(RwLock::new(db)), ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let count = client
//!     .query(
//!         "orders",
//!         vec![Predicate::range(0, 100, 299).unwrap()],
//!         Aggregation::Count,
//!     )
//!     .unwrap();
//! assert_eq!(count.as_count(), Some(200));
//! server.shutdown();
//! ```

pub mod client;
pub mod daemon;
pub mod protocol;
pub mod server;

pub use client::{transient_connect_error, Client, ClientConfig, ClientError};
pub use daemon::ReoptDaemon;
pub use protocol::{Request, Response, WireError};
pub use server::{Server, ServerConfig, ServerHandle, ServerStats};
