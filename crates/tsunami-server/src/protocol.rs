//! The wire protocol: a length-prefixed binary framing with hand-rolled
//! encode/decode (no serialization framework — the workspace is offline and
//! the protocol is small enough that explicit bytes are clearer).
//!
//! # Frame layout
//!
//! ```text
//! +----------------+---------+--------+------------------+
//! | payload length | version | opcode | body             |
//! |  u32 BE        |  u8 = 1 |  u8    | opcode-specific  |
//! +----------------+---------+--------+------------------+
//! |<-- 4 bytes --->|<-------- `length` bytes ----------->|
//! ```
//!
//! All integers are big-endian. The length prefix counts the payload
//! (version + opcode + body), not itself, and is checked against a maximum
//! frame size ([`DEFAULT_MAX_FRAME`], overridable per endpoint) *before*
//! the payload is read, so a hostile or corrupt length cannot balloon
//! allocation.
//!
//! # Body encodings
//!
//! | Type | Encoding |
//! |------|----------|
//! | string | `u16` length + UTF-8 bytes |
//! | predicate | `u16` dim, `u64` lo, `u64` hi |
//! | predicate list | `u16` count + predicates |
//! | aggregation | `u8` tag (0=COUNT 1=SUM 2=MIN 3=MAX 4=AVG) + `u16` dim (absent for COUNT) |
//! | rows | `u16` columns, `u32` rows, then row-major `u64` values |
//! | agg result | `u8` tag + tag-specific payload (see [`Response::Result`]) |
//!
//! Decoding is strict: trailing bytes after a well-formed body, unknown
//! version/opcode/tag bytes, and truncated bodies are all [`WireError`]s,
//! never silent acceptance.

use std::io::{Read, Write};

use tsunami_core::{Point, Predicate, TsunamiError, Value};

/// Protocol version carried in every frame.
pub const VERSION: u8 = 1;

/// Default maximum payload size accepted per frame (1 MiB). Override with
/// the `TSUNAMI_MAX_FRAME` environment variable (bytes) or per
/// server/client configuration.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Reads the effective max frame size: `TSUNAMI_MAX_FRAME` (bytes, clamped
/// to at least one frame header's worth) or [`DEFAULT_MAX_FRAME`].
pub fn max_frame_from_env() -> usize {
    std::env::var("TSUNAMI_MAX_FRAME")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.max(16))
        .unwrap_or(DEFAULT_MAX_FRAME)
}

const OP_QUERY: u8 = 0x01;
const OP_INSERT: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_RESULT: u8 = 0x81;
const OP_ERROR: u8 = 0x82;
const OP_PONG: u8 = 0x83;
const OP_INSERTED: u8 = 0x84;

/// Error codes carried by [`Response::Error`]. Stable across releases so
/// clients can dispatch without parsing messages.
pub mod code {
    /// The frame decoded but the request was malformed (bad tag, trailing
    /// bytes, invalid UTF-8, ...).
    pub const BAD_REQUEST: u16 = 1;
    /// The named table does not exist.
    pub const UNKNOWN_TABLE: u16 = 2;
    /// The request referenced an out-of-bounds dimension, an inverted
    /// range, or a mismatched row arity.
    pub const INVALID_QUERY: u16 = 3;
    /// The server is shutting down; the query was not executed.
    pub const SHUTDOWN: u16 = 4;
    /// The scheduler queue was full (backpressure); retry later.
    pub const QUEUE_FULL: u16 = 5;
    /// The query panicked on a worker.
    pub const PANIC: u16 = 6;
    /// Any other engine error.
    pub const INTERNAL: u16 = 7;
}

/// Maps an engine error onto a stable wire error code.
pub fn error_code(e: &TsunamiError) -> u16 {
    match e {
        TsunamiError::UnknownTable(_) => code::UNKNOWN_TABLE,
        TsunamiError::InvalidPredicate { .. }
        | TsunamiError::DimensionOutOfBounds { .. }
        | TsunamiError::DimensionMismatch { .. }
        | TsunamiError::UnknownColumn(_) => code::INVALID_QUERY,
        TsunamiError::SchedulerShutdown => code::SHUTDOWN,
        TsunamiError::SchedulerQueueFull => code::QUEUE_FULL,
        TsunamiError::QueryPanicked(_) => code::PANIC,
        _ => code::INTERNAL,
    }
}

/// Everything that can go wrong turning bytes into messages (and back).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The body ended before the message did.
    Truncated,
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// The version byte was not [`VERSION`].
    BadVersion(u8),
    /// Unknown opcode byte.
    BadOpcode(u8),
    /// Unknown tag byte inside a body (`what` names the field).
    BadTag { what: &'static str, tag: u8 },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A field exceeded its encodable range (`what` names the field).
    TooLarge(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame body"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            WireError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            WireError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            WireError::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::TooLarge(what) => write!(f, "{what} exceeds its wire limit"),
        }
    }
}

impl std::error::Error for WireError {}

/// Why [`read_frame`] failed.
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix exceeded the endpoint's max frame size. The
    /// payload was *not* consumed, so the stream cannot be resynchronized —
    /// close the connection after reporting.
    Oversized { len: usize, max: usize },
    /// The underlying transport failed (including EOF mid-frame).
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// What [`read_frame`] produced: one payload, or a clean end of stream
/// (EOF on the frame boundary — EOF *inside* a frame is an error).
#[derive(Debug)]
pub enum FrameRead {
    /// One frame's payload (version + opcode + body).
    Frame(Vec<u8>),
    /// The peer closed the connection between frames.
    Eof,
}

/// Reads one length-prefixed frame. Enforces `max_frame` against the length
/// prefix before allocating or reading the payload.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<FrameRead, FrameError> {
    let mut len_buf = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up politely.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(FrameRead::Eof),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => r.read_exact(&mut len_buf)?,
        Err(e) => return Err(FrameError::Io(e)),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(FrameError::Oversized {
            len,
            max: max_frame,
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Frame(payload))
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Aggregation over a dimension, as carried on the wire. Mirrors
/// [`tsunami_core::Aggregation`] exactly; redefined here only to pin the
/// wire tags independently of the engine enum's source order.
pub type Aggregation = tsunami_core::Aggregation;
/// Aggregate results reuse the engine type directly.
pub type AggResult = tsunami_core::AggResult;

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Execute `aggregation` over the rows of `table` matching every
    /// predicate (empty list = whole table).
    Query {
        /// Target table name.
        table: String,
        /// Conjunctive range predicates.
        predicates: Vec<Predicate>,
        /// The aggregation to compute.
        aggregation: Aggregation,
    },
    /// Append rows to `table`.
    Insert {
        /// Target table name.
        table: String,
        /// Row-major values; every row must match the table's arity.
        rows: Vec<Point>,
    },
    /// Liveness probe.
    Ping,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The query's aggregate result.
    Result(AggResult),
    /// The request failed; `code` is one of [`code`]'s constants.
    Error {
        /// Stable error category.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Insert`]: rows appended.
    Inserted(u64),
}

impl Request {
    /// Encodes into a frame payload (version + opcode + body).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = vec![VERSION];
        match self {
            Request::Query {
                table,
                predicates,
                aggregation,
            } => {
                out.push(OP_QUERY);
                put_str(&mut out, table)?;
                if predicates.len() > u16::MAX as usize {
                    return Err(WireError::TooLarge("predicate list"));
                }
                out.extend((predicates.len() as u16).to_be_bytes());
                for p in predicates {
                    if p.dim > u16::MAX as usize {
                        return Err(WireError::TooLarge("predicate dimension"));
                    }
                    out.extend((p.dim as u16).to_be_bytes());
                    out.extend(p.lo.to_be_bytes());
                    out.extend(p.hi.to_be_bytes());
                }
                put_aggregation(&mut out, *aggregation)?;
            }
            Request::Insert { table, rows } => {
                out.push(OP_INSERT);
                put_str(&mut out, table)?;
                let cols = rows.first().map_or(0, Vec::len);
                if cols > u16::MAX as usize {
                    return Err(WireError::TooLarge("row width"));
                }
                if rows.len() > u32::MAX as usize {
                    return Err(WireError::TooLarge("row count"));
                }
                out.extend((cols as u16).to_be_bytes());
                out.extend((rows.len() as u32).to_be_bytes());
                for row in rows {
                    if row.len() != cols {
                        return Err(WireError::TooLarge("ragged row"));
                    }
                    for v in row {
                        out.extend(v.to_be_bytes());
                    }
                }
            }
            Request::Ping => out.push(OP_PING),
        }
        Ok(out)
    }

    /// Decodes a frame payload into a request.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let opcode = r.u8()?;
        let msg = match opcode {
            OP_QUERY => {
                let table = r.string()?;
                let n = r.u16()? as usize;
                let mut predicates = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let dim = r.u16()? as usize;
                    let lo = r.u64()?;
                    let hi = r.u64()?;
                    predicates.push(raw_predicate(dim, lo, hi));
                }
                let aggregation = r.aggregation()?;
                Request::Query {
                    table,
                    predicates,
                    aggregation,
                }
            }
            OP_INSERT => {
                let table = r.string()?;
                let cols = r.u16()? as usize;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let mut row = Vec::with_capacity(cols);
                    for _ in 0..cols {
                        row.push(r.u64()?);
                    }
                    rows.push(row);
                }
                Request::Insert { table, rows }
            }
            OP_PING => Request::Ping,
            op => return Err(WireError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(msg)
    }
}

impl Response {
    /// Encodes into a frame payload (version + opcode + body).
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut out = vec![VERSION];
        match self {
            Response::Result(r) => {
                out.push(OP_RESULT);
                match r {
                    AggResult::Count(n) => {
                        out.push(0);
                        out.extend(n.to_be_bytes());
                    }
                    AggResult::Sum(s) => {
                        out.push(1);
                        out.extend(s.to_be_bytes());
                    }
                    AggResult::Min(v) => {
                        out.push(2);
                        put_opt_u64(&mut out, *v);
                    }
                    AggResult::Max(v) => {
                        out.push(3);
                        put_opt_u64(&mut out, *v);
                    }
                    AggResult::Avg(v) => {
                        out.push(4);
                        // f64 travels as its raw IEEE-754 bits: exact, no
                        // text round-trip loss.
                        put_opt_u64(&mut out, v.map(f64::to_bits));
                    }
                }
            }
            Response::Error { code, message } => {
                out.push(OP_ERROR);
                out.extend(code.to_be_bytes());
                put_str(&mut out, message)?;
            }
            Response::Pong => out.push(OP_PONG),
            Response::Inserted(n) => {
                out.push(OP_INSERTED);
                out.extend(n.to_be_bytes());
            }
        }
        Ok(out)
    }

    /// Decodes a frame payload into a response.
    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let version = r.u8()?;
        if version != VERSION {
            return Err(WireError::BadVersion(version));
        }
        let opcode = r.u8()?;
        let msg = match opcode {
            OP_RESULT => {
                let tag = r.u8()?;
                let result = match tag {
                    0 => AggResult::Count(r.u64()?),
                    1 => AggResult::Sum(r.u128()?),
                    2 => AggResult::Min(r.opt_u64()?),
                    3 => AggResult::Max(r.opt_u64()?),
                    4 => AggResult::Avg(r.opt_u64()?.map(f64::from_bits)),
                    tag => {
                        return Err(WireError::BadTag {
                            what: "agg result",
                            tag,
                        })
                    }
                };
                Response::Result(result)
            }
            OP_ERROR => Response::Error {
                code: r.u16()?,
                message: r.string()?,
            },
            OP_PONG => Response::Pong,
            OP_INSERTED => Response::Inserted(r.u64()?),
            op => return Err(WireError::BadOpcode(op)),
        };
        r.finish()?;
        Ok(msg)
    }
}

/// Builds a `Predicate` from raw wire values without the lo<=hi validation —
/// the server validates semantically and answers with a typed error instead
/// of a wire-level rejection, so inverted ranges must survive decoding.
fn raw_predicate(dim: usize, lo: Value, hi: Value) -> Predicate {
    Predicate { dim, lo, hi }
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), WireError> {
    if s.len() > u16::MAX as usize {
        return Err(WireError::TooLarge("string"));
    }
    out.extend((s.len() as u16).to_be_bytes());
    out.extend(s.as_bytes());
    Ok(())
}

fn put_aggregation(out: &mut Vec<u8>, agg: Aggregation) -> Result<(), WireError> {
    let (tag, dim) = match agg {
        Aggregation::Count => (0u8, None),
        Aggregation::Sum(d) => (1, Some(d)),
        Aggregation::Min(d) => (2, Some(d)),
        Aggregation::Max(d) => (3, Some(d)),
        Aggregation::Avg(d) => (4, Some(d)),
    };
    out.push(tag);
    if let Some(d) = dim {
        if d > u16::MAX as usize {
            return Err(WireError::TooLarge("aggregation dimension"));
        }
        out.extend((d as u16).to_be_bytes());
    }
    Ok(())
}

fn put_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(v) => {
            out.push(1);
            out.extend(v.to_be_bytes());
        }
        None => out.push(0),
    }
}

/// Strict cursor over a frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_be_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn u128(&mut self) -> Result<u128, WireError> {
        Ok(u128::from_be_bytes(self.bytes(16)?.try_into().unwrap()))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, WireError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            tag => Err(WireError::BadTag {
                what: "optional value",
                tag,
            }),
        }
    }

    fn string(&mut self) -> Result<String, WireError> {
        let len = self.u16()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
    }

    fn aggregation(&mut self) -> Result<Aggregation, WireError> {
        let tag = self.u8()?;
        Ok(match tag {
            0 => Aggregation::Count,
            1 => Aggregation::Sum(self.u16()? as usize),
            2 => Aggregation::Min(self.u16()? as usize),
            3 => Aggregation::Max(self.u16()? as usize),
            4 => Aggregation::Avg(self.u16()? as usize),
            tag => {
                return Err(WireError::BadTag {
                    what: "aggregation",
                    tag,
                })
            }
        })
    }

    fn finish(self) -> Result<(), WireError> {
        let left = self.buf.len() - self.pos;
        if left == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes(left))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let payload = Request::Ping.encode().unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut cursor = &buf[..];
        match read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap() {
            FrameRead::Frame(p) => assert_eq!(p, payload),
            FrameRead::Eof => panic!("expected a frame"),
        }
        assert!(matches!(
            read_frame(&mut cursor, DEFAULT_MAX_FRAME).unwrap(),
            FrameRead::Eof
        ));
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend(1_000_000u32.to_be_bytes());
        buf.extend([0u8; 8]);
        match read_frame(&mut &buf[..], 64) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!((len, max), (1_000_000, 64));
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn eof_inside_a_frame_is_an_error_not_a_clean_close() {
        let mut buf = Vec::new();
        buf.extend(100u32.to_be_bytes());
        buf.extend([1u8, 2, 3]);
        assert!(matches!(
            read_frame(&mut &buf[..], DEFAULT_MAX_FRAME),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn bad_version_opcode_and_trailing_bytes_are_rejected() {
        let mut payload = Request::Ping.encode().unwrap();
        payload[0] = 9;
        assert_eq!(Request::decode(&payload), Err(WireError::BadVersion(9)));

        let payload = vec![VERSION, 0x7f];
        assert_eq!(Request::decode(&payload), Err(WireError::BadOpcode(0x7f)));

        let mut payload = Request::Ping.encode().unwrap();
        payload.push(0);
        assert_eq!(Request::decode(&payload), Err(WireError::TrailingBytes(1)));

        assert_eq!(Request::decode(&[]), Err(WireError::Truncated));
    }
}
