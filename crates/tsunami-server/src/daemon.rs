//! The auto-reoptimize daemon: a watermark-triggered background task on the
//! shared work-stealing pool.
//!
//! Connection handlers call [`ReoptDaemon::notify`] after every served
//! operation. Once the count of operations since the last pass crosses the
//! watermark, the daemon spawns **one** task onto the pool that runs
//! [`ShardedDatabase::auto_reoptimize_all`] — each shard's
//! `Database::auto_reoptimize` then decides, per table, whether observed
//! workload drift or ingest-driven data drift actually warrants
//! re-optimizing. Quiet shards are a cheap no-op, so the watermark only
//! bounds how often the check runs, not how often indexes rebuild.
//!
//! There are no dedicated threads and no polling loop: with no traffic
//! there are no notifications, hence no work — the "daemon" is latent state
//! plus an occasional pool task, which is the right shape for a pool that
//! also carries query morsels.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use tsunami_core::exec::pool::WorkStealingPool;
use tsunami_engine::ShardedDatabase;

/// Watermark-triggered re-optimization over a shared [`ShardedDatabase`].
/// Cheap to clone; all clones share one trigger state.
#[derive(Clone)]
pub struct ReoptDaemon {
    inner: Arc<Inner>,
}

struct Inner {
    db: Arc<RwLock<ShardedDatabase>>,
    pool: Arc<WorkStealingPool>,
    /// Operations between drift checks; `0` disables the daemon.
    watermark: u64,
    /// Operations observed since the last pass was scheduled.
    since: AtomicU64,
    /// True while a pass is queued or running — at most one in flight.
    in_flight: AtomicBool,
    /// Completed passes (drift checks), for observability and tests.
    passes: AtomicU64,
    /// Total shard re-optimizations those passes applied.
    reoptimized: AtomicU64,
}

impl ReoptDaemon {
    /// A daemon over `db` firing every `watermark` operations (`0` = never).
    pub fn new(db: Arc<RwLock<ShardedDatabase>>, watermark: u64) -> Self {
        let pool = Arc::clone(db.read().unwrap().pool());
        Self {
            inner: Arc::new(Inner {
                db,
                pool,
                watermark,
                since: AtomicU64::new(0),
                in_flight: AtomicBool::new(false),
                passes: AtomicU64::new(0),
                reoptimized: AtomicU64::new(0),
            }),
        }
    }

    /// Records `ops` served operations and, when the watermark is crossed
    /// and no pass is already in flight, spawns one drift-check pass onto
    /// the pool. Never blocks: the caller is a connection handler on its
    /// latency path.
    pub fn notify(&self, ops: u64) {
        let inner = &self.inner;
        if inner.watermark == 0 {
            return;
        }
        if inner.since.fetch_add(ops, Ordering::Relaxed) + ops < inner.watermark {
            return;
        }
        if inner.in_flight.swap(true, Ordering::AcqRel) {
            return;
        }
        inner.since.store(0, Ordering::Relaxed);
        let task = Arc::clone(inner);
        inner.pool.spawn(move || {
            let applied = task.db.write().unwrap().auto_reoptimize_all().unwrap_or(0);
            task.reoptimized
                .fetch_add(applied as u64, Ordering::Relaxed);
            task.passes.fetch_add(1, Ordering::Release);
            task.in_flight.store(false, Ordering::Release);
        });
    }

    /// The configured watermark (`0` = disabled).
    pub fn watermark(&self) -> u64 {
        self.inner.watermark
    }

    /// Completed drift-check passes.
    pub fn passes(&self) -> u64 {
        self.inner.passes.load(Ordering::Acquire)
    }

    /// Total shard re-optimizations applied across all passes.
    pub fn reoptimized(&self) -> u64 {
        self.inner.reoptimized.load(Ordering::Relaxed)
    }

    /// Blocks until any in-flight pass has finished (tests and shutdown).
    pub fn quiesce(&self) {
        while self.inner.in_flight.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
    }
}

impl std::fmt::Debug for ReoptDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReoptDaemon")
            .field("watermark", &self.inner.watermark)
            .field("passes", &self.passes())
            .field("reoptimized", &self.reoptimized())
            .finish()
    }
}
