//! A minimal blocking client for the wire protocol — one request in flight
//! per connection, which is exactly the shape the open-loop load generator
//! and the tests need.
//!
//! Connection establishment is the one place the client retries:
//! *transient* connect failures (refused, reset, timed out — the shapes a
//! restarting or momentarily overloaded server produces) are retried with
//! bounded exponential backoff per [`ClientConfig`]. Everything after the
//! connection is strict: a read timeout or torn response surfaces as a
//! typed [`ClientError`] and the caller decides, because blindly resending
//! a non-idempotent request (an insert) could double-apply it.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use tsunami_core::{AggResult, Aggregation, Point, Predicate};

use crate::protocol::{
    self, read_frame, write_frame, FrameError, FrameRead, Request, Response, WireError,
};

/// Connection tuning for [`Client::connect_with_config`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Maximum accepted response frame payload, bytes.
    pub max_frame: usize,
    /// Per-attempt connect timeout; `None` blocks until the OS gives up.
    pub connect_timeout: Option<Duration>,
    /// Socket read timeout for responses; `None` waits forever.
    pub read_timeout: Option<Duration>,
    /// Retries after the first failed connect attempt (`0` = single
    /// attempt). Only transient failures are retried.
    pub connect_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub retry_backoff: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            max_frame: protocol::max_frame_from_env(),
            connect_timeout: Some(Duration::from_secs(5)),
            read_timeout: Some(Duration::from_secs(30)),
            connect_retries: 3,
            retry_backoff: Duration::from_millis(20),
        }
    }
}

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-response).
    Io(std::io::Error),
    /// Every connect attempt failed; `last` is the final attempt's error.
    ConnectExhausted {
        /// Connect attempts made (1 + retries performed).
        attempts: u32,
        /// The last attempt's failure.
        last: std::io::Error,
    },
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// One of [`protocol::code`]'s constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response kind for the request.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::ConnectExhausted { attempts, last } => {
                write!(f, "connect failed after {attempts} attempts: {last}")
            }
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Oversized { len, max } => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response frame of {len} bytes exceeds the {max}-byte limit"),
            )),
        }
    }
}

/// A blocking connection to a `tsunami-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects with the environment-derived max frame size
    /// ([`protocol::max_frame_from_env`]) and no timeouts or retries.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, protocol::max_frame_from_env())
    }

    /// Connects with an explicit max frame size and no timeouts or retries.
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame: usize) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame })
    }

    /// Connects with per-attempt connect timeouts, a response read timeout,
    /// and bounded exponential-backoff retry of **transient** connect
    /// failures ([`transient_connect_error`]). Address resolution failures
    /// and non-transient errors (e.g. permission denied) fail immediately;
    /// exhausting the retry budget yields
    /// [`ClientError::ConnectExhausted`].
    pub fn connect_with_config(
        addr: impl ToSocketAddrs,
        config: &ClientConfig,
    ) -> Result<Self, ClientError> {
        let addrs: Vec<SocketAddr> = addr.to_socket_addrs().map_err(ClientError::Io)?.collect();
        if addrs.is_empty() {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )));
        }
        let attempts = config.connect_retries.saturating_add(1);
        let mut backoff = config.retry_backoff;
        let mut last = None;
        for attempt in 0..attempts {
            if attempt > 0 {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
            match connect_once(&addrs, config.connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true).map_err(ClientError::Io)?;
                    stream
                        .set_read_timeout(config.read_timeout)
                        .map_err(ClientError::Io)?;
                    return Ok(Self {
                        stream,
                        max_frame: config.max_frame,
                    });
                }
                Err(e) if transient_connect_error(&e) => last = Some(e),
                Err(e) => return Err(ClientError::Io(e)),
            }
        }
        Err(ClientError::ConnectExhausted {
            attempts,
            last: last.expect("at least one attempt ran"),
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Executes `aggregation` over the rows of `table` matching every
    /// predicate and returns the typed result.
    pub fn query(
        &mut self,
        table: &str,
        predicates: Vec<Predicate>,
        aggregation: Aggregation,
    ) -> Result<AggResult, ClientError> {
        let request = Request::Query {
            table: table.to_string(),
            predicates,
            aggregation,
        };
        match self.call(&request)? {
            Response::Result(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Appends rows to `table`; returns the number of rows the server
    /// acknowledged.
    pub fn insert(&mut self, table: &str, rows: Vec<Point>) -> Result<u64, ClientError> {
        let request = Request::Insert {
            table: table.to_string(),
            rows,
        };
        match self.call(&request)? {
            Response::Inserted(n) => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    /// Sends one request frame and reads one response frame.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.stream, &payload)?;
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Frame(payload) => Ok(Response::decode(&payload)?),
            FrameRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))),
        }
    }
}

/// One connect pass over every resolved address; the last error wins.
fn connect_once(addrs: &[SocketAddr], timeout: Option<Duration>) -> std::io::Result<TcpStream> {
    let mut last = None;
    for addr in addrs {
        let attempt = match timeout {
            Some(t) => TcpStream::connect_timeout(addr, t),
            None => TcpStream::connect(addr),
        };
        match attempt {
            Ok(stream) => return Ok(stream),
            Err(e) => last = Some(e),
        }
    }
    Err(last.expect("addrs is non-empty"))
}

/// Whether a connect failure is worth retrying: the server may simply not
/// be (re)started yet or momentarily overloaded. Everything else — address
/// errors, permission errors — will not heal with time.
pub fn transient_connect_error(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
            | std::io::ErrorKind::Interrupted
    )
}

fn unexpected(response: Response) -> ClientError {
    match response {
        Response::Error { code, message } => ClientError::Server { code, message },
        Response::Result(_) => ClientError::Unexpected("result"),
        Response::Pong => ClientError::Unexpected("pong"),
        Response::Inserted(_) => ClientError::Unexpected("inserted"),
    }
}
