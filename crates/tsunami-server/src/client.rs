//! A minimal blocking client for the wire protocol — one request in flight
//! per connection, which is exactly the shape the open-loop load generator
//! and the tests need.

use std::net::{TcpStream, ToSocketAddrs};

use tsunami_core::{AggResult, Aggregation, Point, Predicate};

use crate::protocol::{
    self, read_frame, write_frame, FrameError, FrameRead, Request, Response, WireError,
};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write, EOF mid-response).
    Io(std::io::Error),
    /// The server's bytes did not decode.
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// One of [`protocol::code`]'s constants.
        code: u16,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with the wrong response kind for the request.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message } => {
                write!(f, "server error {code}: {message}")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response kind: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Io(e) => ClientError::Io(e),
            FrameError::Oversized { len, max } => ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("response frame of {len} bytes exceeds the {max}-byte limit"),
            )),
        }
    }
}

/// A blocking connection to a `tsunami-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_frame: usize,
}

impl Client {
    /// Connects with the environment-derived max frame size
    /// ([`protocol::max_frame_from_env`]).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::connect_with(addr, protocol::max_frame_from_env())
    }

    /// Connects with an explicit max frame size.
    pub fn connect_with(addr: impl ToSocketAddrs, max_frame: usize) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream, max_frame })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Executes `aggregation` over the rows of `table` matching every
    /// predicate and returns the typed result.
    pub fn query(
        &mut self,
        table: &str,
        predicates: Vec<Predicate>,
        aggregation: Aggregation,
    ) -> Result<AggResult, ClientError> {
        let request = Request::Query {
            table: table.to_string(),
            predicates,
            aggregation,
        };
        match self.call(&request)? {
            Response::Result(r) => Ok(r),
            other => Err(unexpected(other)),
        }
    }

    /// Appends rows to `table`; returns the number of rows the server
    /// acknowledged.
    pub fn insert(&mut self, table: &str, rows: Vec<Point>) -> Result<u64, ClientError> {
        let request = Request::Insert {
            table: table.to_string(),
            rows,
        };
        match self.call(&request)? {
            Response::Inserted(n) => Ok(n),
            other => Err(unexpected(other)),
        }
    }

    /// Sends one request frame and reads one response frame.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let payload = request.encode()?;
        write_frame(&mut self.stream, &payload)?;
        match read_frame(&mut self.stream, self.max_frame)? {
            FrameRead::Frame(payload) => Ok(Response::decode(&payload)?),
            FrameRead::Eof => Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection before responding",
            ))),
        }
    }
}

fn unexpected(response: Response) -> ClientError {
    match response {
        Response::Error { code, message } => ClientError::Server { code, message },
        Response::Result(_) => ClientError::Unexpected("result"),
        Response::Pong => ClientError::Unexpected("pong"),
        Response::Inserted(_) => ClientError::Unexpected("inserted"),
    }
}
