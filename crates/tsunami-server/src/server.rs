//! The TCP front-end: a blocking accept loop with one reader thread per
//! connection, feeding query work into the shared pool.
//!
//! # Why threads, not epoll
//!
//! The two candidate shapes were a non-blocking epoll loop (raw `libc`) and
//! a blocking accept loop with per-connection reader threads. This server
//! uses the latter:
//!
//! * Connection threads do nothing but park in `read()` and decode frames —
//!   all query execution lands on the work-stealing pool via the
//!   [`Scheduler`](tsunami_engine::Scheduler) inside
//!   [`ShardedTable::execute`](tsunami_engine::ShardedTable::execute), so thread count does not multiply CPU work,
//!   and the pool (not the connection count) bounds execution parallelism.
//! * At benchmark-scale connection counts (tens to low hundreds) the ~8 KiB
//!   kernel stack cost per parked thread is noise, while epoll readiness
//!   tracking, partial-read buffering, and write backpressure state would
//!   triple the code for no measurable throughput on loopback.
//! * Blocking reads give frame parsing a linear control flow, which is what
//!   makes the strict protocol (`read_frame` → decode → serve → respond)
//!   easy to audit.
//!
//! An epoll front-end remains a drop-in evolution: the protocol and the
//! serve path are transport-agnostic, only this module would change.
//!
//! # Shutdown
//!
//! [`ServerHandle::shutdown`] flips the stop flag, pokes the listener with a
//! loopback connect to unblock `accept`, then half-closes (`Shutdown::Read`)
//! every live connection: parked readers wake with EOF and exit after
//! finishing any in-flight response (the write side stays open), so clients
//! never see a torn frame.

use std::io::{BufWriter, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use tsunami_core::{Query, TsunamiError};
use tsunami_engine::ShardedDatabase;

use crate::daemon::ReoptDaemon;
use crate::protocol::{
    self, code, error_code, read_frame, write_frame, FrameError, FrameRead, Request, Response,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port `0` picks a free port; read the bound address off
    /// [`ServerHandle::addr`].
    pub addr: String,
    /// Maximum accepted frame payload, bytes.
    pub max_frame: usize,
    /// Re-optimization watermark: served operations between drift checks
    /// (`0` disables the daemon). See [`ReoptDaemon`].
    pub reopt_watermark: u64,
    /// Per-connection idle read timeout: a connection that sends no frame
    /// for this long is reaped (socket shut down, reader thread exits).
    /// `None` keeps silent connections — and their threads — forever.
    /// Defaults from `TSUNAMI_IDLE_TIMEOUT_MS` (`0` or unset disables).
    pub idle_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_frame: protocol::max_frame_from_env(),
            reopt_watermark: std::env::var("TSUNAMI_REOPT_WATERMARK")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(8_192),
            idle_timeout: std::env::var("TSUNAMI_IDLE_TIMEOUT_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map(Duration::from_millis),
        }
    }
}

/// Served-operation counters, all monotonic.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Queries answered (including ones that resolved to typed errors).
    pub queries: AtomicU64,
    /// Rows inserted.
    pub rows_inserted: AtomicU64,
    /// Error responses sent.
    pub errors: AtomicU64,
    /// Connections reaped by the idle read timeout
    /// ([`ServerConfig::idle_timeout`]).
    pub reaped_idle: AtomicU64,
}

/// Live connections: the stream (for half-close on shutdown) and the
/// reader thread serving it.
type ConnRegistry = Arc<Mutex<Vec<(TcpStream, JoinHandle<()>)>>>;

/// A running server. Dropping the handle shuts the server down.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    listener_thread: Option<JoinHandle<()>>,
    conns: ConnRegistry,
    stats: Arc<ServerStats>,
    daemon: ReoptDaemon,
}

/// The server entry point: spawn over a shared sharded database.
pub struct Server;

impl Server {
    /// Binds `config.addr`, spawns the accept loop, and returns a handle.
    /// Queries take the database's read lock (concurrent with each other);
    /// inserts and daemon re-optimizations take the write lock.
    pub fn spawn(
        db: Arc<RwLock<ShardedDatabase>>,
        config: ServerConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: ConnRegistry = Arc::default();
        let stats = Arc::new(ServerStats::default());
        let daemon = ReoptDaemon::new(Arc::clone(&db), config.reopt_watermark);

        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_stats = Arc::clone(&stats);
        let accept_daemon = daemon.clone();
        let max_frame = config.max_frame;
        let idle_timeout = config.idle_timeout;
        let listener_thread = std::thread::Builder::new()
            .name("tsunami-accept".to_string())
            .spawn(move || {
                for incoming in listener.incoming() {
                    if accept_stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = incoming else { continue };
                    accept_stats.connections.fetch_add(1, Ordering::Relaxed);
                    let conn_db = Arc::clone(&db);
                    let conn_stats = Arc::clone(&accept_stats);
                    let conn_daemon = accept_daemon.clone();
                    let reader = stream.try_clone().expect("clone accepted stream");
                    let handle = std::thread::Builder::new()
                        .name("tsunami-conn".to_string())
                        .spawn(move || {
                            handle_connection(
                                reader,
                                conn_db,
                                conn_daemon,
                                conn_stats,
                                max_frame,
                                idle_timeout,
                            )
                        })
                        .expect("spawn connection thread");
                    let mut registry = accept_conns.lock().unwrap();
                    // Opportunistically reap finished connections so the
                    // registry tracks live streams, not connection history.
                    registry.retain(|(_, h)| !h.is_finished());
                    registry.push((stream, handle));
                }
            })?;

        Ok(ServerHandle {
            addr,
            stop,
            listener_thread: Some(listener_thread),
            conns,
            stats,
            daemon,
        })
    }
}

impl ServerHandle {
    /// The bound address (resolves port `0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Served-operation counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The re-optimization daemon (observability: passes, applied count).
    pub fn daemon(&self) -> &ReoptDaemon {
        &self.daemon
    }

    /// Graceful shutdown: stop accepting, half-close live connections so
    /// in-flight responses finish, join every thread. Idempotent.
    pub fn shutdown(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.listener_thread.take() {
            let _ = t.join();
        }
        let conns = std::mem::take(&mut *self.conns.lock().unwrap());
        for (stream, handle) in conns {
            let _ = stream.shutdown(Shutdown::Read);
            let _ = handle.join();
        }
        self.daemon.quiesce();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .field("stats", &self.stats)
            .finish()
    }
}

/// One connection's read → decode → serve → respond loop.
fn handle_connection(
    mut reader: TcpStream,
    db: Arc<RwLock<ShardedDatabase>>,
    daemon: ReoptDaemon,
    stats: Arc<ServerStats>,
    max_frame: usize,
    idle_timeout: Option<Duration>,
) {
    let _ = reader.set_nodelay(true);
    if reader.set_read_timeout(idle_timeout).is_err() {
        return;
    }
    let Ok(writer) = reader.try_clone() else {
        return;
    };
    let mut writer = BufWriter::new(writer);
    loop {
        let payload = match read_frame(&mut reader, max_frame) {
            Ok(FrameRead::Frame(p)) => p,
            Ok(FrameRead::Eof) => break,
            Err(FrameError::Oversized { len, max }) => {
                // The oversized payload was never consumed, so the stream
                // cannot be resynchronized: report and close.
                stats.errors.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: code::BAD_REQUEST,
                    message: format!("frame of {len} bytes exceeds the {max}-byte limit"),
                };
                send(&mut writer, &resp);
                break;
            }
            // The idle read timeout fired (WouldBlock on unix, TimedOut on
            // windows): reap the silent connection.
            Err(FrameError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                stats.reaped_idle.fetch_add(1, Ordering::Relaxed);
                break;
            }
            Err(FrameError::Io(_)) => break,
        };
        // Framing is self-delimiting, so a frame that decodes to garbage is
        // safely skippable: answer with a typed error and keep serving.
        let response = match Request::decode(&payload) {
            Ok(request) => serve(request, &db, &daemon, &stats),
            Err(e) => {
                stats.errors.fetch_add(1, Ordering::Relaxed);
                Response::Error {
                    code: code::BAD_REQUEST,
                    message: e.to_string(),
                }
            }
        };
        if !send(&mut writer, &response) {
            break;
        }
    }
    // Fully close the socket here: the shutdown registry holds another
    // clone of this stream, so without an explicit shutdown a reaped
    // connection's peer would never observe EOF.
    let _ = writer.flush();
    let _ = reader.shutdown(Shutdown::Both);
}

fn send(writer: &mut BufWriter<TcpStream>, response: &Response) -> bool {
    match response.encode() {
        Ok(payload) => write_frame(writer, &payload).is_ok(),
        Err(_) => false,
    }
}

/// Executes one decoded request against the shared database.
fn serve(
    request: Request,
    db: &RwLock<ShardedDatabase>,
    daemon: &ReoptDaemon,
    stats: &ServerStats,
) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Query {
            table,
            predicates,
            aggregation,
        } => {
            stats.queries.fetch_add(1, Ordering::Relaxed);
            daemon.notify(1);
            let result = (|| {
                let query = Query::new(predicates, aggregation)?;
                // Take the read lock only long enough to snapshot a handle;
                // execution proceeds lock-free so a slow scan cannot starve
                // writers.
                let handle = db.read().unwrap().table(&table)?;
                handle.record_query(&query)?;
                handle.execute(&query)
            })();
            match result {
                Ok(r) => Response::Result(r),
                Err(e) => error_response(e, stats),
            }
        }
        Request::Insert { table, rows } => {
            daemon.notify(rows.len() as u64);
            match db.write().unwrap().insert_batch(&table, &rows) {
                Ok(()) => {
                    stats
                        .rows_inserted
                        .fetch_add(rows.len() as u64, Ordering::Relaxed);
                    Response::Inserted(rows.len() as u64)
                }
                Err(e) => error_response(e, stats),
            }
        }
    }
}

fn error_response(e: TsunamiError, stats: &ServerStats) -> Response {
    stats.errors.fetch_add(1, Ordering::Relaxed);
    Response::Error {
        code: error_code(&e),
        message: e.to_string(),
    }
}
