//! Named columns for a table, and the column-reference trait the fluent
//! query builder accepts.
//!
//! Every dimension of a [`tsunami_core::Dataset`] is an anonymous `u64`
//! column; a [`Schema`] gives each one a name so queries can be written
//! against `"pickup_time"` instead of dimension `0`, with unknown names
//! rejected at the API boundary instead of silently scanning the wrong
//! column.

use tsunami_core::{Result, TsunamiError};

/// An ordered list of unique column names, index-aligned with the dataset's
/// dimensions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<String>,
}

impl Schema {
    /// Creates a schema from column names. Names must be non-empty and
    /// unique.
    pub fn new<S: Into<String>>(columns: Vec<S>) -> Result<Self> {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        if columns.is_empty() {
            return Err(TsunamiError::Config(
                "schema needs at least one column".into(),
            ));
        }
        for (i, name) in columns.iter().enumerate() {
            if name.is_empty() {
                return Err(TsunamiError::Config(format!(
                    "column {i} has an empty name"
                )));
            }
            if columns[..i].contains(name) {
                return Err(TsunamiError::Config(format!(
                    "duplicate column name: {name}"
                )));
            }
        }
        Ok(Self { columns })
    }

    /// A fallback schema naming `width` columns `col0`, `col1`, ... — used
    /// when a table is registered without explicit names.
    pub fn numbered(width: usize) -> Self {
        Self {
            columns: (0..width).map(|d| format!("col{d}")).collect(),
        }
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// The dimension index of a named column.
    pub fn column_index(&self, name: &str) -> Result<usize> {
        self.columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| TsunamiError::UnknownColumn(name.to_string()))
    }

    /// The name of a dimension, if it exists.
    pub fn column_name(&self, dim: usize) -> Option<&str> {
        self.columns.get(dim).map(String::as_str)
    }

    /// All column names in dimension order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(String::as_str)
    }
}

/// Anything the query builder accepts as a column reference: a schema name
/// (`"fare"`) or a raw dimension index (`3`).
pub trait ColumnRef {
    /// Resolves the reference to a dimension index against a schema,
    /// validating that the dimension exists.
    fn resolve(&self, schema: &Schema) -> Result<usize>;
}

impl ColumnRef for &str {
    fn resolve(&self, schema: &Schema) -> Result<usize> {
        schema.column_index(self)
    }
}

impl ColumnRef for String {
    fn resolve(&self, schema: &Schema) -> Result<usize> {
        schema.column_index(self)
    }
}

impl ColumnRef for usize {
    fn resolve(&self, schema: &Schema) -> Result<usize> {
        if *self >= schema.num_columns() {
            return Err(TsunamiError::DimensionOutOfBounds {
                dim: *self,
                num_dims: schema.num_columns(),
            });
        }
        Ok(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_resolves_names_and_rejects_unknowns() {
        let s = Schema::new(vec!["time", "fare"]).unwrap();
        assert_eq!(s.num_columns(), 2);
        assert_eq!(s.column_index("fare").unwrap(), 1);
        assert_eq!(s.column_name(0), Some("time"));
        assert_eq!(s.column_name(2), None);
        assert_eq!(
            s.column_index("tip"),
            Err(TsunamiError::UnknownColumn("tip".into()))
        );
        assert_eq!(s.column_names().collect::<Vec<_>>(), vec!["time", "fare"]);
    }

    #[test]
    fn schema_rejects_bad_shapes() {
        assert!(Schema::new(Vec::<String>::new()).is_err());
        assert!(Schema::new(vec!["a", ""]).is_err());
        assert!(Schema::new(vec!["a", "b", "a"]).is_err());
    }

    #[test]
    fn numbered_schema_names_every_dimension() {
        let s = Schema::numbered(3);
        assert_eq!(s.column_index("col2").unwrap(), 2);
        assert_eq!(s.num_columns(), 3);
    }

    #[test]
    fn column_refs_resolve_names_and_indexes() {
        let s = Schema::new(vec!["a", "b"]).unwrap();
        assert_eq!("b".resolve(&s).unwrap(), 1);
        assert_eq!(String::from("a").resolve(&s).unwrap(), 0);
        assert_eq!(1usize.resolve(&s).unwrap(), 1);
        assert_eq!(
            2usize.resolve(&s),
            Err(TsunamiError::DimensionOutOfBounds {
                dim: 2,
                num_dims: 2
            })
        );
    }
}
