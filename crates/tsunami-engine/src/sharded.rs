//! Horizontal sharding: one logical table hash-partitioned across K
//! independent [`Database`] shards, queried by scatter-gather.
//!
//! Every shard is a full `Database` — its own index, its own observation
//! log, its own ingest path — so each shard's Tsunami layout can specialize
//! to the workload slice it actually sees, and K shards scan K partitions
//! concurrently, multiplying aggregate scan bandwidth (the PIMDAL framing:
//! range aggregation is bandwidth-bound, so parallel partitions are the
//! lever that scales it).
//!
//! # Routing
//!
//! Rows are assigned to shards by an FNV-1a hash of the full row (all column
//! values, little-endian bytes) modulo K. The hash is deterministic and
//! stable across processes, so [`ShardedDatabase::insert_batch`] routes new
//! rows to the same shard a fresh [`ShardedDatabase::create_table`] over the
//! union would.
//!
//! # Scatter-gather and merge rules
//!
//! A query scatters to every shard through a shared [`Scheduler`] (drainer
//! tasks on the process-wide work-stealing pool) and the per-shard results
//! merge commutatively:
//!
//! | Aggregation | Per-shard sub-query | Merge |
//! |-------------|---------------------|-------|
//! | `COUNT`     | `COUNT`             | sum of `u64` counts |
//! | `SUM(d)`    | `SUM(d)`            | sum of exact `u128` partial sums |
//! | `MIN(d)`    | `MIN(d)`            | min of non-empty partials |
//! | `MAX(d)`    | `MAX(d)`            | max of non-empty partials |
//! | `AVG(d)`    | `SUM(d)` + `COUNT`  | `(Σ sums) as f64 / (Σ counts) as f64` |
//!
//! `AVG` never averages averages: each shard reports its exact integer
//! `SUM`/`COUNT` pair and the division happens once at the gather site —
//! the same `sum as f64 / count as f64` expression
//! [`tsunami_core::AggAccumulator::finish`] uses, so sharded results are
//! bit-identical to an unsharded table over the same rows.

use std::sync::Arc;

use tsunami_core::exec::pool::WorkStealingPool;
use tsunami_core::{
    AggResult, Aggregation, Dataset, Point, Query, Result, TsunamiError, Value, Workload,
};

use crate::database::Database;
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::schema::Schema;
use crate::spec::IndexSpec;
use crate::table::Table;

/// Deterministic shard assignment: FNV-1a 64 over the row's values in
/// little-endian byte order, modulo `shards`. Exposed so tests and external
/// routers can predict placement.
pub fn shard_of(row: &[Value], shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for value in row {
        for byte in value.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(FNV_PRIME);
        }
    }
    (hash % shards.max(1) as u64) as usize
}

/// Name + build spec of one sharded logical table.
#[derive(Debug, Clone)]
struct TableMeta {
    name: String,
    spec: IndexSpec,
}

/// K independent [`Database`] shards behind one logical namespace.
///
/// Created with [`ShardedDatabase::new`]; tables are registered with
/// [`ShardedDatabase::create_table`], which hash-partitions the rows, and
/// queried through [`ShardedTable`] handles that scatter-gather across the
/// shards. See the module docs for routing and merge semantics.
pub struct ShardedDatabase {
    shards: Vec<Database>,
    tables: Vec<TableMeta>,
    scheduler: Arc<Scheduler>,
}

impl ShardedDatabase {
    /// A database of `shards` partitions (clamped to at least one) sharing
    /// the process-wide work-stealing pool for scatter-gather execution.
    pub fn new(shards: usize) -> Self {
        Self::on_pool(Arc::clone(tsunami_core::exec::pool::global()), shards)
    }

    /// Like [`ShardedDatabase::new`] with an explicit pool (tests inject
    /// private pools).
    pub fn on_pool(pool: Arc<WorkStealingPool>, shards: usize) -> Self {
        let shards = shards.max(1);
        let scheduler = Arc::new(Scheduler::on_pool(
            Arc::clone(&pool),
            SchedulerConfig::default(),
        ));
        let shards = (0..shards)
            .map(|_| {
                let mut db = Database::new();
                db.set_pool(Arc::clone(&pool));
                db
            })
            .collect();
        Self {
            shards,
            tables: Vec::new(),
            scheduler,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The scheduler scatter-gather queries run through.
    pub fn scheduler(&self) -> &Arc<Scheduler> {
        &self.scheduler
    }

    /// The pool shards and scheduler execute on.
    pub fn pool(&self) -> &Arc<WorkStealingPool> {
        self.shards[0].pool()
    }

    /// Registered logical table names, in registration order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.name.clone()).collect()
    }

    /// Registers a logical table: hash-partitions `rows` across the shards
    /// and builds one index per shard from `spec`. A shard whose partition
    /// came up empty falls back to [`IndexSpec::FullScan`] (the learned
    /// builders optimize over data samples, which an empty partition cannot
    /// provide); it upgrades to `spec` at the first re-optimization after
    /// rows arrive.
    pub fn create_table(
        &mut self,
        name: &str,
        columns: &[&str],
        rows: &Dataset,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<ShardedTable> {
        if self.tables.iter().any(|t| t.name == name) {
            return Err(TsunamiError::DuplicateTable(name.to_string()));
        }
        if !columns.is_empty() && columns.len() != rows.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: rows.num_dims(),
                got: columns.len(),
            });
        }
        let partitions = self.partition(rows);
        for (db, part) in self.shards.iter_mut().zip(&partitions) {
            let part_spec = if part.is_empty() {
                IndexSpec::FullScan
            } else {
                spec.clone()
            };
            let data = Dataset::from_rows(rows.num_dims(), part)?;
            if columns.is_empty() {
                db.create_table_unnamed(name, data, workload, &part_spec)?;
            } else {
                db.create_table(name, columns, data, workload, &part_spec)?;
            }
        }
        self.tables.push(TableMeta {
            name: name.to_string(),
            spec: spec.clone(),
        });
        self.table(name)
    }

    /// Looks up a logical table and returns a scatter-gather handle over the
    /// current per-shard table generations. Handles are snapshots: after an
    /// insert or re-optimization swaps a shard's table, existing handles
    /// keep answering over the generation they captured — fetch a fresh
    /// handle to observe the new rows.
    pub fn table(&self, name: &str) -> Result<ShardedTable> {
        let shards: Vec<Table> = self
            .shards
            .iter()
            .map(|db| db.table(name))
            .collect::<Result<_>>()?;
        Ok(ShardedTable {
            shards,
            scheduler: Arc::clone(&self.scheduler),
        })
    }

    /// Total rows of a logical table across all shards.
    pub fn num_rows(&self, name: &str) -> Result<usize> {
        let mut rows = 0;
        for db in &self.shards {
            rows += db.table(name)?.num_rows();
        }
        Ok(rows)
    }

    /// Inserts a batch, routing each row to its hash-assigned shard. Row
    /// arity is validated up front so a malformed row cannot leave the
    /// shards partially updated.
    pub fn insert_batch(&mut self, name: &str, rows: &[Point]) -> Result<()> {
        let width = self.schema(name)?.num_columns();
        if let Some(bad) = rows.iter().find(|r| r.len() != width) {
            return Err(TsunamiError::DimensionMismatch {
                expected: width,
                got: bad.len(),
            });
        }
        let mut buckets: Vec<Vec<Point>> = vec![Vec::new(); self.shards.len()];
        for row in rows {
            buckets[shard_of(row, self.shards.len())].push(row.clone());
        }
        for (db, bucket) in self.shards.iter_mut().zip(buckets) {
            if !bucket.is_empty() {
                db.insert_batch(name, &bucket)?;
            }
        }
        Ok(())
    }

    /// Schema of a logical table (identical on every shard).
    pub fn schema(&self, name: &str) -> Result<Schema> {
        Ok(self.shards[0].table(name)?.schema().clone())
    }

    /// Runs [`Database::auto_reoptimize`] on every shard of `name` with the
    /// spec the table was registered under, skipping still-empty shards.
    /// Returns how many shards actually re-optimized (zero when no shard had
    /// drifted — calling this periodically is cheap).
    pub fn auto_reoptimize(&mut self, name: &str) -> Result<usize> {
        let spec = self
            .tables
            .iter()
            .find(|t| t.name == name)
            .map(|t| t.spec.clone())
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))?;
        let mut reoptimized = 0;
        for db in &mut self.shards {
            if db.table(name)?.num_rows() == 0 {
                continue;
            }
            if db.auto_reoptimize(name, &spec)?.is_some() {
                reoptimized += 1;
            }
        }
        Ok(reoptimized)
    }

    /// [`ShardedDatabase::auto_reoptimize`] over every registered table;
    /// returns the total number of shard re-optimizations applied.
    pub fn auto_reoptimize_all(&mut self) -> Result<usize> {
        let names = self.table_names();
        let mut reoptimized = 0;
        for name in names {
            reoptimized += self.auto_reoptimize(&name)?;
        }
        Ok(reoptimized)
    }

    /// Direct access to one shard's `Database` (diagnostics and tests).
    pub fn shard(&self, i: usize) -> &Database {
        &self.shards[i]
    }

    fn partition(&self, rows: &Dataset) -> Vec<Vec<Point>> {
        let k = self.shards.len();
        let mut parts: Vec<Vec<Point>> = vec![Vec::new(); k];
        for r in 0..rows.len() {
            let row = rows.row(r);
            parts[shard_of(&row, k)].push(row);
        }
        parts
    }
}

impl std::fmt::Debug for ShardedDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedDatabase")
            .field("shards", &self.shards.len())
            .field("tables", &self.table_names())
            .finish()
    }
}

/// Scatter-gather handle over one logical table's per-shard [`Table`]
/// generations. Cheap to clone; safe to use from any thread.
#[derive(Clone)]
pub struct ShardedTable {
    shards: Vec<Table>,
    scheduler: Arc<Scheduler>,
}

impl ShardedTable {
    /// Logical table name.
    pub fn name(&self) -> &str {
        self.shards[0].name()
    }

    /// The shared schema.
    pub fn schema(&self) -> &Schema {
        self.shards[0].schema()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.shards[0].num_columns()
    }

    /// Total rows across all shards (of the captured generations).
    pub fn num_rows(&self) -> usize {
        self.shards.iter().map(Table::num_rows).sum()
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard table handles, in shard order.
    pub fn shard_tables(&self) -> &[Table] {
        &self.shards
    }

    /// Executes a query by scattering it to every shard through the shared
    /// scheduler and merging the partial results (see the module docs for
    /// the merge rules). Results are bit-identical to an unsharded table
    /// holding the same rows.
    pub fn execute(&self, query: &Query) -> Result<AggResult> {
        query.validate_dims(self.num_columns())?;
        match query.aggregation() {
            Aggregation::Avg(dim) => {
                // AVG is not commutative over per-shard averages; scatter the
                // exact SUM and COUNT instead and divide once at the gather
                // site, matching AggAccumulator::finish bit-for-bit.
                let sums = self.scatter(&Query::new(
                    query.predicates().to_vec(),
                    Aggregation::Sum(dim),
                )?)?;
                let counts = self.scatter(&Query::new(
                    query.predicates().to_vec(),
                    Aggregation::Count,
                )?)?;
                let mut sum = 0u128;
                for s in &sums {
                    sum += s.as_sum().ok_or_else(|| type_confusion(s))?;
                }
                let mut count = 0u64;
                for c in &counts {
                    count += c.as_count().ok_or_else(|| type_confusion(c))?;
                }
                Ok(AggResult::Avg(if count == 0 {
                    None
                } else {
                    Some(sum as f64 / count as f64)
                }))
            }
            Aggregation::Count => {
                let partials = self.scatter(query)?;
                let mut count = 0u64;
                for p in &partials {
                    count += p.as_count().ok_or_else(|| type_confusion(p))?;
                }
                Ok(AggResult::Count(count))
            }
            Aggregation::Sum(_) => {
                let partials = self.scatter(query)?;
                let mut sum = 0u128;
                for p in &partials {
                    sum += p.as_sum().ok_or_else(|| type_confusion(p))?;
                }
                Ok(AggResult::Sum(sum))
            }
            Aggregation::Min(_) => {
                let partials = self.scatter(query)?;
                let mut min: Option<Value> = None;
                for p in &partials {
                    if let Some(v) = p.as_min().ok_or_else(|| type_confusion(p))? {
                        min = Some(min.map_or(v, |m| m.min(v)));
                    }
                }
                Ok(AggResult::Min(min))
            }
            Aggregation::Max(_) => {
                let partials = self.scatter(query)?;
                let mut max: Option<Value> = None;
                for p in &partials {
                    if let Some(v) = p.as_max().ok_or_else(|| type_confusion(p))? {
                        max = Some(max.map_or(v, |m| m.max(v)));
                    }
                }
                Ok(AggResult::Max(max))
            }
        }
    }

    /// Records an observed query on every shard's observation log, feeding
    /// per-shard drift detection ([`Database::auto_reoptimize`]). Every
    /// shard sees the full predicate stream because every shard holds rows
    /// from the full keyspace.
    pub fn record_query(&self, query: &Query) -> Result<()> {
        for t in &self.shards {
            t.record_query(query)?;
        }
        Ok(())
    }

    fn scatter(&self, query: &Query) -> Result<Vec<AggResult>> {
        let handles = self
            .shards
            .iter()
            .map(|t| self.scheduler.submit(t.prepare(query.clone())?))
            .collect::<Result<Vec<_>>>()?;
        handles.iter().map(|h| h.wait()).collect()
    }
}

impl std::fmt::Debug for ShardedTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedTable")
            .field("name", &self.name())
            .field("shards", &self.num_shards())
            .field("rows", &self.num_rows())
            .finish()
    }
}

fn type_confusion(got: &AggResult) -> TsunamiError {
    TsunamiError::Build(format!("shard returned mismatched aggregate {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::Predicate;

    fn rows(n: u64) -> Dataset {
        Dataset::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|v| v.wrapping_mul(7) % 1000).collect(),
        ])
        .unwrap()
    }

    fn queries() -> Vec<Query> {
        let preds = vec![Predicate::range(0, 100, 1800).unwrap()];
        [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ]
        .into_iter()
        .map(|agg| Query::new(preds.clone(), agg).unwrap())
        .collect()
    }

    #[test]
    fn sharding_preserves_every_row_exactly_once() {
        let data = rows(2_000);
        let mut db = ShardedDatabase::new(4);
        db.create_table(
            "t",
            &["a", "b"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
        assert_eq!(db.num_rows("t").unwrap(), 2_000);
        let t = db.table("t").unwrap();
        let everything = Query::count(vec![]).unwrap();
        assert_eq!(t.execute(&everything).unwrap().as_count(), Some(2_000));
        // Placement is deterministic.
        for r in 0..50 {
            let row = data.row(r);
            assert_eq!(shard_of(&row, 4), shard_of(&row, 4));
        }
    }

    #[test]
    fn scatter_gather_matches_unsharded_for_all_aggregations() {
        let data = rows(3_000);
        for k in [1, 3, 8] {
            let mut sharded = ShardedDatabase::new(k);
            sharded
                .create_table(
                    "t",
                    &["a", "b"],
                    &data,
                    &Workload::default(),
                    &IndexSpec::FullScan,
                )
                .unwrap();
            let t = sharded.table("t").unwrap();
            for q in queries() {
                assert_eq!(
                    t.execute(&q).unwrap(),
                    q.execute_full_scan(&data),
                    "k={k} disagrees on {q:?}"
                );
            }
        }
    }

    #[test]
    fn insert_batch_routes_rows_and_stays_bit_identical() {
        let data = rows(1_000);
        let mut sharded = ShardedDatabase::new(4);
        sharded
            .create_table(
                "t",
                &["a", "b"],
                &data,
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();
        let extra: Vec<Point> = (1_000u64..1_400).map(|v| vec![v, v % 13]).collect();
        sharded.insert_batch("t", &extra).unwrap();
        assert_eq!(sharded.num_rows("t").unwrap(), 1_400);

        let mut union_rows: Vec<Point> = (0..data.len()).map(|r| data.row(r)).collect();
        union_rows.extend(extra.iter().cloned());
        let union = Dataset::from_rows(2, &union_rows).unwrap();
        let t = sharded.table("t").unwrap();
        for q in queries() {
            assert_eq!(t.execute(&q).unwrap(), q.execute_full_scan(&union));
        }
        // Arity mismatch is rejected before any shard mutates.
        let before = sharded.num_rows("t").unwrap();
        assert!(sharded.insert_batch("t", &[vec![1, 2, 3]]).is_err());
        assert_eq!(sharded.num_rows("t").unwrap(), before);
    }

    #[test]
    fn empty_partitions_fall_back_to_full_scan() {
        // 3 rows over 8 shards: most partitions are empty and must still
        // build, answer, and accept later inserts.
        let data = rows(3);
        let mut db = ShardedDatabase::new(8);
        let t = db
            .create_table(
                "t",
                &["a", "b"],
                &data,
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();
        assert_eq!(t.num_shards(), 8);
        let q = Query::count(vec![]).unwrap();
        assert_eq!(t.execute(&q).unwrap().as_count(), Some(3));
        db.insert_batch("t", &(3u64..40).map(|v| vec![v, v]).collect::<Vec<_>>())
            .unwrap();
        let t = db.table("t").unwrap();
        assert_eq!(t.execute(&q).unwrap().as_count(), Some(40));
    }

    #[test]
    fn duplicate_and_unknown_names_error() {
        let data = rows(10);
        let mut db = ShardedDatabase::new(2);
        db.create_table(
            "t",
            &["a", "b"],
            &data,
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap();
        assert!(matches!(
            db.create_table(
                "t",
                &["a", "b"],
                &data,
                &Workload::default(),
                &IndexSpec::FullScan
            ),
            Err(TsunamiError::DuplicateTable(_))
        ));
        assert!(matches!(
            db.table("missing"),
            Err(TsunamiError::UnknownTable(_))
        ));
        assert!(matches!(
            db.auto_reoptimize("missing"),
            Err(TsunamiError::UnknownTable(_))
        ));
    }
}
