//! The `tsunami-engine` front-end: a database facade, fluent query builder,
//! and concurrent query scheduler over the Tsunami index family.
//!
//! The lower crates expose kernels: datasets, indexes, and a shared scan
//! executor. This crate is the shape consumers actually program against:
//!
//! * [`Database`] — registers named tables (a [`tsunami_core::Dataset`] +
//!   [`Schema`] + one index built from an [`IndexSpec`], which covers every
//!   index family in the workspace) and validates all queries at the
//!   boundary.
//! * [`QueryBuilder`] — fluent, schema-aware query construction:
//!   `db.table("trips")?.query().range("pickup", lo, hi)?.sum("fare")?
//!   .execute()?`. Unknown columns and out-of-bounds dimensions are errors,
//!   not silent mis-scans.
//! * [`PreparedQuery`] — a validated (table, query) pair that executes
//!   infallibly, any number of times, from any thread.
//! * [`Scheduler`] — inter-query parallelism on the process-wide
//!   work-stealing pool (the same pool the intra-query morsel executor
//!   uses), with batch execution and a bounded submit/poll queue with
//!   backpressure. Tune with [`SchedulerConfig`].
//! * [`ShardedDatabase`] — hash-partitions a table's rows across K
//!   independent `Database` shards and scatter-gathers queries through the
//!   shared pool with commutative merges (AVG as exact sum+count pairs), so
//!   sharded results stay bit-identical to an unsharded table. This is the
//!   substrate the `tsunami-server` network front-end serves.
//! * **Workload-shift adaptation** — [`Table::record_query`] feeds a bounded
//!   observation log, [`Database::auto_reoptimize`] detects drift from the
//!   optimized-for workload, and [`Database::reoptimize`] re-optimizes
//!   Tsunami tables *incrementally* (Grid Tree and sorted data reused; only
//!   shifted regions re-optimized) instead of rebuilding from scratch.
//!
//! # Quick start
//!
//! ```
//! use tsunami_core::{Dataset, Predicate, Query, Workload};
//! use tsunami_engine::{Database, IndexSpec, Scheduler};
//!
//! // A tiny 2-d table with a correlated second column.
//! let n = 2_000u64;
//! let data = Dataset::from_columns(vec![
//!     (0..n).collect(),
//!     (0..n).map(|v| v * 2 + (v % 7)).collect(),
//! ])
//! .unwrap();
//! let workload = Workload::new(
//!     (0..20u64)
//!         .map(|i| Query::count(vec![Predicate::range(0, i * 50, i * 50 + 200).unwrap()]).unwrap())
//!         .collect(),
//! );
//!
//! let mut db = Database::new();
//! db.create_table("orders", &["id", "price"], data, &workload, &IndexSpec::tsunami())?;
//!
//! // Fluent, schema-validated queries.
//! let trips = db.table("orders")?;
//! let r = trips.query().range("id", 100, 299)?.execute()?;
//! assert_eq!(r.as_count(), Some(200));
//!
//! // Concurrent execution of many independent queries.
//! let queries = trips.prepare_workload(&workload)?;
//! let scheduler = Scheduler::new(4);
//! let results = scheduler.execute_batch(&queries)?;
//! assert_eq!(results.len(), queries.len());
//! # Ok::<(), tsunami_core::TsunamiError>(())
//! ```

pub mod builder;
pub mod database;
pub mod durability;
pub mod prepared;
pub mod scheduler;
pub mod schema;
pub mod sharded;
pub mod spec;
pub mod table;
pub mod view;

pub use builder::QueryBuilder;
pub use database::Database;
pub use prepared::PreparedQuery;
pub use scheduler::{QueryHandle, Scheduler, SchedulerConfig};
pub use schema::{ColumnRef, Schema};
pub use sharded::{shard_of, ShardedDatabase, ShardedTable};
pub use spec::{IndexSpec, PageSize, SharedIndex};
pub use table::Table;
pub use view::MaterializedView;
// Re-exported so engine users can inspect incremental re-optimization and
// ingestion outcomes without depending on `tsunami-index` directly.
pub use tsunami_index::{Escalation, IngestReport, ReoptReport, ShiftReport, WorkloadMonitor};
// Re-exported so durable-database users (and the crash-test harness) can
// name the WAL types without depending on `tsunami-store` directly.
pub use tsunami_store::{CrashPoint, WalRecord};
