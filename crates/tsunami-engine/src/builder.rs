//! The fluent query builder: named-column predicates and aggregations,
//! validated against the table's schema as they are added.
//!
//! ```
//! # use tsunami_core::{Dataset, Workload};
//! # use tsunami_engine::{Database, IndexSpec};
//! # let data = Dataset::from_columns(vec![(0..100u64).collect(), (0..100u64).collect()]).unwrap();
//! # let mut db = Database::new();
//! # db.create_table("trips", &["pickup", "fare"], data, &Workload::default(), &IndexSpec::FullScan).unwrap();
//! let total = db
//!     .table("trips")?
//!     .query()
//!     .range("pickup", 10, 40)?
//!     .sum("fare")?
//!     .execute()?;
//! assert_eq!(total.as_sum(), Some((10..=40u128).sum()));
//! # Ok::<(), tsunami_core::TsunamiError>(())
//! ```

use tsunami_core::{AggResult, Aggregation, IndexStats, Predicate, Query, Result, Value};

use crate::prepared::PreparedQuery;
use crate::schema::ColumnRef;
use crate::table::Table;

/// Builds a validated query against one table. Obtained from
/// [`Table::query`]; consumed by [`QueryBuilder::execute`] or
/// [`QueryBuilder::prepare`].
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    table: Table,
    predicates: Vec<Predicate>,
    aggregation: Aggregation,
}

impl QueryBuilder {
    pub(crate) fn new(table: Table) -> Self {
        Self {
            table,
            predicates: Vec::new(),
            aggregation: Aggregation::Count,
        }
    }

    fn dim_of(&self, col: impl ColumnRef) -> Result<usize> {
        col.resolve(self.table.schema())
    }

    /// Adds an inclusive range filter `lo <= column <= hi`. The column may be
    /// a schema name or a raw dimension index; unknown columns and `lo > hi`
    /// are rejected immediately.
    pub fn range(mut self, col: impl ColumnRef, lo: Value, hi: Value) -> Result<Self> {
        let dim = self.dim_of(col)?;
        self.predicates.push(Predicate::range(dim, lo, hi)?);
        Ok(self)
    }

    /// Adds an equality filter `column == value`.
    pub fn eq(mut self, col: impl ColumnRef, value: Value) -> Result<Self> {
        let dim = self.dim_of(col)?;
        self.predicates.push(Predicate::eq(dim, value));
        Ok(self)
    }

    /// Adds an at-least filter `column >= lo`.
    pub fn at_least(self, col: impl ColumnRef, lo: Value) -> Result<Self> {
        self.range(col, lo, Value::MAX)
    }

    /// Adds an at-most filter `column <= hi`.
    pub fn at_most(self, col: impl ColumnRef, hi: Value) -> Result<Self> {
        self.range(col, Value::MIN, hi)
    }

    /// Aggregates with `COUNT(*)` (the default).
    pub fn count(mut self) -> Self {
        self.aggregation = Aggregation::Count;
        self
    }

    /// Aggregates with `SUM(column)`.
    pub fn sum(mut self, col: impl ColumnRef) -> Result<Self> {
        self.aggregation = Aggregation::Sum(self.dim_of(col)?);
        Ok(self)
    }

    /// Aggregates with `MIN(column)`.
    pub fn min(mut self, col: impl ColumnRef) -> Result<Self> {
        self.aggregation = Aggregation::Min(self.dim_of(col)?);
        Ok(self)
    }

    /// Aggregates with `MAX(column)`.
    pub fn max(mut self, col: impl ColumnRef) -> Result<Self> {
        self.aggregation = Aggregation::Max(self.dim_of(col)?);
        Ok(self)
    }

    /// Aggregates with `AVG(column)`.
    pub fn avg(mut self, col: impl ColumnRef) -> Result<Self> {
        self.aggregation = Aggregation::Avg(self.dim_of(col)?);
        Ok(self)
    }

    /// Finalizes into a plain [`Query`] without binding it to the table —
    /// the handoff for [`Database::register_view`](crate::Database::register_view),
    /// so views are built with the same named-column fluent API as ad-hoc
    /// queries.
    pub fn into_query(self) -> Result<Query> {
        Query::new(self.predicates, self.aggregation)
    }

    /// Finalizes into a reusable [`PreparedQuery`] (normalizes predicates,
    /// re-checking conjunction consistency).
    pub fn prepare(self) -> Result<PreparedQuery> {
        let query = Query::new(self.predicates, self.aggregation)?;
        self.table.prepare(query)
    }

    /// Builds and executes the query.
    pub fn execute(self) -> Result<AggResult> {
        Ok(self.prepare()?.execute())
    }

    /// Builds and executes the query, returning scan counters too.
    pub fn execute_with_stats(self) -> Result<(AggResult, IndexStats)> {
        Ok(self.prepare()?.execute_with_stats())
    }
}
