//! The [`Database`] facade: named tables over built indexes.
//!
//! This is the front door the ROADMAP's serving-scale items plug into: it
//! owns the catalog of tables (each a dataset + schema + one index built from
//! an [`IndexSpec`]), validates every query at the boundary, and hands out
//! cheap [`Table`] handles that the [`crate::Scheduler`]'s workers share.

use std::sync::Arc;

use tsunami_core::{CostModel, Dataset, Result, TsunamiError, Workload};

use crate::schema::Schema;
use crate::spec::{IndexSpec, SharedIndex};
use crate::table::Table;

/// A catalog of named, indexed tables. Registration order is preserved for
/// iteration (benchmark output stays deterministic).
pub struct Database {
    tables: Vec<Table>,
    cost: CostModel,
}

impl Database {
    /// Creates an empty database with the default analytic cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::default())
    }

    /// Creates an empty database using a specific cost model for all index
    /// builds (e.g. [`CostModel::calibrate`]d to the host).
    pub fn with_cost_model(cost: CostModel) -> Self {
        Self {
            tables: Vec::new(),
            cost,
        }
    }

    /// The cost model used for index builds.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Registers a table: names the dataset's columns, builds the index
    /// described by `spec` optimized for the sample `workload`, and returns a
    /// handle. The schema's width must match the dataset's and the name must
    /// be unused. `data` accepts either an owned [`Dataset`] or an
    /// `Arc<Dataset>` — pass an `Arc` clone to register the same data under
    /// several index families without copying it per table.
    pub fn create_table<S: Into<String> + Clone>(
        &mut self,
        name: &str,
        columns: &[S],
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::new(columns.to_vec())?;
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(name, schema, data, index)
    }

    /// Like [`Database::create_table`] with auto-generated `col0..colN`
    /// column names.
    pub fn create_table_unnamed(
        &mut self,
        name: &str,
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::numbered(data.num_dims());
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(name, schema, data, index)
    }

    /// Registers a table around an already-built index (escape hatch for
    /// custom index construction).
    pub fn register_table(
        &mut self,
        name: &str,
        schema: Schema,
        data: impl Into<Arc<Dataset>>,
        index: SharedIndex,
    ) -> Result<Table> {
        let data = data.into();
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        self.register(name, schema, data, index)
    }

    fn build_index(
        &self,
        schema: &Schema,
        data: &Dataset,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<SharedIndex> {
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        for q in workload.queries() {
            q.validate_dims(data.num_dims())?;
        }
        spec.build(data, workload, &self.cost)
    }

    fn register(
        &mut self,
        name: &str,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
    ) -> Result<Table> {
        if self.tables.iter().any(|t| t.name() == name) {
            return Err(TsunamiError::DuplicateTable(name.to_string()));
        }
        let table = Table::new(name.to_string(), schema, data, index);
        self.tables.push(table.clone());
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Drops a table from the catalog. Outstanding handles and prepared
    /// queries keep working (the state is shared by `Arc`); only the name
    /// becomes free.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        match self.tables.iter().position(|t| t.name() == name) {
            Some(i) => Ok(self.tables.remove(i)),
            None => Err(TsunamiError::UnknownTable(name.to_string())),
        }
    }

    /// Rebuilds a table's index for a new workload (the paper's workload-
    /// shift scenario, Fig 9a): same name, same schema, same data, fresh
    /// layout, same position in the catalog's iteration order. Returns the
    /// new handle; old handles keep answering through the stale layout until
    /// dropped. On failure the catalog is unchanged.
    pub fn reindex(&mut self, name: &str, workload: &Workload, spec: &IndexSpec) -> Result<Table> {
        let pos = self
            .tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))?;
        let old = &self.tables[pos];
        let schema = old.schema().clone();
        // Shares the dataset with the old table; only the index is rebuilt.
        let data = Arc::clone(&old.state.data);
        let index = self.build_index(&schema, &data, workload, spec)?;
        let table = Table::new(name.to_string(), schema, data, index);
        self.tables[pos] = table.clone();
        Ok(table)
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Aggregation, Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..1_000u64).collect(),
            (0..1_000u64).map(|v| v * 2).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn create_lookup_and_query_roundtrip() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "orders",
                &["id", "price"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(db.num_tables(), 1);

        let r = db
            .table("orders")
            .unwrap()
            .query()
            .range("id", 10, 19)
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(r.as_count(), Some(10));

        assert_eq!(
            db.table("nope").err(),
            Some(TsunamiError::UnknownTable("nope".into()))
        );
    }

    #[test]
    fn duplicate_and_mismatched_registrations_are_rejected() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        assert_eq!(
            db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DuplicateTable("t".into()))
        );
        // Schema width must match the dataset.
        assert!(matches!(
            db.create_table(
                "u",
                &["only_one"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan
            )
            .err(),
            Some(TsunamiError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn boundary_validation_rejects_out_of_bounds_queries() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                &["a", "b"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();

        // Hand-assembled query with a phantom predicate dimension.
        let q = Query::count(vec![Predicate::range(7, 0, 10).unwrap()]).unwrap();
        assert_eq!(
            t.execute(&q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 7,
                num_dims: 2
            })
        );
        // ... and with an out-of-bounds aggregation input.
        let q = Query::new(vec![], Aggregation::Sum(4)).unwrap();
        assert_eq!(
            t.prepare(q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 4,
                num_dims: 2
            })
        );
        // The builder can't even express those: unknown names fail earlier.
        assert_eq!(
            t.query().range("zzz", 0, 1).err(),
            Some(TsunamiError::UnknownColumn("zzz".into()))
        );
        assert_eq!(
            t.query().sum(9usize).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 9,
                num_dims: 2
            })
        );
        // A workload containing an out-of-bounds query is rejected at build.
        let bad = Workload::new(vec![
            Query::count(vec![Predicate::range(5, 0, 1).unwrap()]).unwrap()
        ]);
        assert_eq!(
            db.create_table_unnamed("v", data(), &bad, &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 5,
                num_dims: 2
            })
        );
    }

    #[test]
    fn drop_and_reindex_manage_the_catalog() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        db.create_table_unnamed("u", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        let old = db.table("t").unwrap();

        let reindexed = db
            .reindex("t", &Workload::default(), &IndexSpec::SingleDim)
            .unwrap();
        assert_eq!(db.num_tables(), 2);
        // Reindexing keeps the catalog's registration order.
        let names: Vec<&str> = db.tables().map(|t| t.name()).collect();
        assert_eq!(names, vec!["t", "u"]);
        db.drop_table("u").unwrap();
        assert_eq!(reindexed.index().name(), "SingleDim");
        // The old handle still answers through the stale index.
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        assert_eq!(old.execute(&q).unwrap(), reindexed.execute(&q).unwrap());

        db.drop_table("t").unwrap();
        assert_eq!(db.num_tables(), 0);
        assert!(db.drop_table("t").is_err());
        assert!(db
            .reindex("t", &Workload::default(), &IndexSpec::FullScan)
            .is_err());
    }
}
