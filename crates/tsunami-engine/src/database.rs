//! The [`Database`] facade: named tables over built indexes.
//!
//! This is the front door the ROADMAP's serving-scale items plug into: it
//! owns the catalog of tables (each a dataset + schema + one index built from
//! an [`IndexSpec`]), validates every query at the boundary, and hands out
//! cheap [`Table`] handles that the [`crate::Scheduler`]'s workers share.
//!
//! Workload shift (§8) is handled at this layer too: [`Database::reindex`]
//! rebuilds a table's layout from scratch, [`Database::reoptimize`] takes
//! the cheaper incremental path (Tsunami tables keep their Grid Tree and
//! sorted data; only regions whose query mix changed are re-optimized), and
//! [`Database::auto_reoptimize`] closes the loop autonomously from the
//! queries recorded via [`Table::record_query`].

use std::sync::Arc;

use tsunami_core::{CostModel, Dataset, Result, TsunamiError, Workload};
use tsunami_index::{ReoptReport, TsunamiConfig, TsunamiIndex, WorkloadMonitor};

use crate::schema::Schema;
use crate::spec::{IndexSpec, SharedIndex};
use crate::table::Table;

/// Observation-log capacity for tables built from a spec: Tsunami tables
/// honor their config's window, everything else gets the default.
fn observe_cap(spec: &IndexSpec) -> usize {
    match spec {
        IndexSpec::Tsunami(config) => config.observation_window,
        _ => TsunamiConfig::default().observation_window,
    }
}

/// A catalog of named, indexed tables. Registration order is preserved for
/// iteration (benchmark output stays deterministic).
pub struct Database {
    tables: Vec<Table>,
    cost: CostModel,
}

impl Database {
    /// Creates an empty database with the default analytic cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::default())
    }

    /// Creates an empty database using a specific cost model for all index
    /// builds (e.g. [`CostModel::calibrate`]d to the host).
    pub fn with_cost_model(cost: CostModel) -> Self {
        Self {
            tables: Vec::new(),
            cost,
        }
    }

    /// The cost model used for index builds.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Registers a table: names the dataset's columns, builds the index
    /// described by `spec` optimized for the sample `workload`, and returns a
    /// handle. The schema's width must match the dataset's and the name must
    /// be unused. `data` accepts either an owned [`Dataset`] or an
    /// `Arc<Dataset>` — pass an `Arc` clone to register the same data under
    /// several index families without copying it per table.
    pub fn create_table<S: Into<String> + Clone>(
        &mut self,
        name: &str,
        columns: &[S],
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::new(columns.to_vec())?;
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(
            name,
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
        )
    }

    /// Like [`Database::create_table`] with auto-generated `col0..colN`
    /// column names.
    pub fn create_table_unnamed(
        &mut self,
        name: &str,
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::numbered(data.num_dims());
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(
            name,
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
        )
    }

    /// Registers a table around an already-built index (escape hatch for
    /// custom index construction). The reference workload starts empty, so
    /// shift detection treats every observed query as new.
    pub fn register_table(
        &mut self,
        name: &str,
        schema: Schema,
        data: impl Into<Arc<Dataset>>,
        index: SharedIndex,
    ) -> Result<Table> {
        let data = data.into();
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        let cap = TsunamiConfig::default().observation_window;
        self.register(name, schema, data, index, Workload::default(), cap)
    }

    fn build_index(
        &self,
        schema: &Schema,
        data: &Dataset,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<SharedIndex> {
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        for q in workload.queries() {
            q.validate_dims(data.num_dims())?;
        }
        spec.build(data, workload, &self.cost)
    }

    fn register(
        &mut self,
        name: &str,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
        reference: Workload,
        observe_cap: usize,
    ) -> Result<Table> {
        if self.tables.iter().any(|t| t.name() == name) {
            return Err(TsunamiError::DuplicateTable(name.to_string()));
        }
        let table = Table::new(
            name.to_string(),
            schema,
            data,
            index,
            reference,
            observe_cap,
        );
        self.tables.push(table.clone());
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Drops a table from the catalog. Outstanding handles and prepared
    /// queries keep working (the state is shared by `Arc`); only the name
    /// becomes free.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        match self.tables.iter().position(|t| t.name() == name) {
            Some(i) => Ok(self.tables.remove(i)),
            None => Err(TsunamiError::UnknownTable(name.to_string())),
        }
    }

    /// Rebuilds a table's index for a new workload (the paper's workload-
    /// shift scenario, Fig 9a): same name, same schema, same data, fresh
    /// layout, same position in the catalog's iteration order. Returns the
    /// new handle; old handles keep answering through the stale layout until
    /// dropped — and keep recording into the same observation log, which is
    /// cleared by the swap (the observations are consumed by the new
    /// layout's reference workload). On failure the catalog is unchanged.
    pub fn reindex(&mut self, name: &str, workload: &Workload, spec: &IndexSpec) -> Result<Table> {
        let pos = self.position(name)?;
        let old = &self.tables[pos];
        let schema = old.schema().clone();
        // Shares the dataset with the old table; only the index is rebuilt.
        let data = Arc::clone(&old.state.data);
        let index = self.build_index(&schema, &data, workload, spec)?;
        let table = Table::with_observation_log(
            name.to_string(),
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
            Arc::clone(&old.state.observed),
        );
        table.clear_observations();
        self.tables[pos] = table.clone();
        Ok(table)
    }

    /// Adapts a table's index to a new workload *incrementally* where the
    /// index family supports it, keeping the catalog position. Tsunami
    /// tables re-optimized with a Tsunami spec go through
    /// [`TsunamiIndex::reoptimize_with_cost`] — the Grid Tree and sorted
    /// data are reused and only the regions whose query mix changed are
    /// re-optimized, which is far cheaper than [`Database::reindex`]. Every
    /// other (table, spec) combination falls back to a full reindex.
    ///
    /// Like `reindex`, old handles keep answering (with the stale layout)
    /// until dropped, and on failure the catalog is unchanged.
    pub fn reoptimize(
        &mut self,
        name: &str,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        Ok(self.reoptimize_with_report(name, workload, spec)?.0)
    }

    /// Like [`Database::reoptimize`], also returning the incremental path's
    /// [`ReoptReport`] (`None` when the combination fell back to a full
    /// reindex).
    pub fn reoptimize_with_report(
        &mut self,
        name: &str,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<(Table, Option<ReoptReport>)> {
        let pos = self.position(name)?;
        let old = &self.tables[pos];
        if let IndexSpec::Tsunami(config) = spec {
            if let Some(stale) = old
                .index()
                .as_any()
                .and_then(|any| any.downcast_ref::<TsunamiIndex>())
            {
                let data = Arc::clone(&old.state.data);
                let (index, report) =
                    stale.reoptimize_with_cost(&data, workload, &self.cost, config)?;
                let table = Table::with_observation_log(
                    name.to_string(),
                    old.schema().clone(),
                    data,
                    Box::new(index),
                    workload.clone(),
                    observe_cap(spec),
                    Arc::clone(&old.state.observed),
                );
                table.clear_observations();
                self.tables[pos] = table.clone();
                return Ok((table, Some(report)));
            }
        }
        Ok((self.reindex(name, workload, spec)?, None))
    }

    /// The autonomous monitor → re-optimize loop: compares the queries
    /// recorded via [`Table::record_query`] (the table's bounded observation
    /// log is the engine's sliding window) against the workload the table's
    /// layout was optimized for and, if the mix shifted, re-optimizes for
    /// the observed workload via [`Database::reoptimize`] — which also
    /// drains the log, so the consumed observations become the new
    /// reference. Returns `Ok(None)` when nothing was observed or no shift
    /// was detected — calling this periodically is cheap.
    pub fn auto_reoptimize(&mut self, name: &str, spec: &IndexSpec) -> Result<Option<Table>> {
        let table = self.table(name)?;
        let observed = table.observed_workload();
        if observed.is_empty() {
            return Ok(None);
        }
        let config = match spec {
            IndexSpec::Tsunami(c) => c.clone(),
            _ => TsunamiConfig::default(),
        };
        let monitor = WorkloadMonitor::new(table.dataset(), table.reference_workload(), &config);
        if !monitor
            .observe(table.dataset(), &observed, &config)
            .reoptimize
        {
            return Ok(None);
        }
        self.reoptimize(name, &observed, spec).map(Some)
    }

    fn position(&self, name: &str) -> Result<usize> {
        self.tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Aggregation, Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..1_000u64).collect(),
            (0..1_000u64).map(|v| v * 2).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn create_lookup_and_query_roundtrip() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "orders",
                &["id", "price"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(db.num_tables(), 1);

        let r = db
            .table("orders")
            .unwrap()
            .query()
            .range("id", 10, 19)
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(r.as_count(), Some(10));

        assert_eq!(
            db.table("nope").err(),
            Some(TsunamiError::UnknownTable("nope".into()))
        );
    }

    #[test]
    fn duplicate_and_mismatched_registrations_are_rejected() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        assert_eq!(
            db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DuplicateTable("t".into()))
        );
        // Schema width must match the dataset.
        assert!(matches!(
            db.create_table(
                "u",
                &["only_one"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan
            )
            .err(),
            Some(TsunamiError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn boundary_validation_rejects_out_of_bounds_queries() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                &["a", "b"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();

        // Hand-assembled query with a phantom predicate dimension.
        let q = Query::count(vec![Predicate::range(7, 0, 10).unwrap()]).unwrap();
        assert_eq!(
            t.execute(&q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 7,
                num_dims: 2
            })
        );
        // ... and with an out-of-bounds aggregation input.
        let q = Query::new(vec![], Aggregation::Sum(4)).unwrap();
        assert_eq!(
            t.prepare(q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 4,
                num_dims: 2
            })
        );
        // The builder can't even express those: unknown names fail earlier.
        assert_eq!(
            t.query().range("zzz", 0, 1).err(),
            Some(TsunamiError::UnknownColumn("zzz".into()))
        );
        assert_eq!(
            t.query().sum(9usize).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 9,
                num_dims: 2
            })
        );
        // A workload containing an out-of-bounds query is rejected at build.
        let bad = Workload::new(vec![
            Query::count(vec![Predicate::range(5, 0, 1).unwrap()]).unwrap()
        ]);
        assert_eq!(
            db.create_table_unnamed("v", data(), &bad, &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 5,
                num_dims: 2
            })
        );
    }

    #[test]
    fn drop_and_reindex_manage_the_catalog() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        db.create_table_unnamed("u", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        let old = db.table("t").unwrap();

        let reindexed = db
            .reindex("t", &Workload::default(), &IndexSpec::SingleDim)
            .unwrap();
        assert_eq!(db.num_tables(), 2);
        // Reindexing keeps the catalog's registration order.
        let names: Vec<&str> = db.tables().map(|t| t.name()).collect();
        assert_eq!(names, vec!["t", "u"]);
        db.drop_table("u").unwrap();
        assert_eq!(reindexed.index().name(), "SingleDim");
        // The old handle still answers through the stale index.
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        assert_eq!(old.execute(&q).unwrap(), reindexed.execute(&q).unwrap());

        db.drop_table("t").unwrap();
        assert_eq!(db.num_tables(), 0);
        assert!(db.drop_table("t").is_err());
        assert!(db
            .reindex("t", &Workload::default(), &IndexSpec::FullScan)
            .is_err());
    }

    /// Correlated 3-d data plus two disjoint workloads for shift tests.
    fn shift_fixture() -> (Dataset, Workload, Workload) {
        let n = 4_000u64;
        let data = Dataset::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|v| v * 2 + v % 13).collect(),
            (0..n).map(|v| (v * 7919) % 10_000).collect(),
        ])
        .unwrap();
        let day = Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(0, i * 100, i * 100 + 150).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        let night = Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(2, i * 250, i * 250 + 400).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        (data, day, night)
    }

    #[test]
    fn reoptimize_takes_the_incremental_path_for_tsunami_tables() {
        let (data, day, night) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
        let mut db = Database::new();
        db.create_table_unnamed("t", data.clone(), &day, &spec)
            .unwrap();
        let stale = db.table("t").unwrap();

        let (fresh, report) = db.reoptimize_with_report("t", &night, &spec).unwrap();
        let report = report.expect("Tsunami + Tsunami spec uses the incremental path");
        assert!(!report.escalated, "{report:?}");
        assert_eq!(fresh.reference_workload().len(), night.len());
        for q in night.queries().iter().chain(day.queries()).step_by(5) {
            let expected = q.execute_full_scan(&data);
            assert_eq!(stale.execute(q).unwrap(), expected);
            assert_eq!(fresh.execute(q).unwrap(), expected);
        }

        // Non-Tsunami specs fall back to a full reindex (no report).
        let (rebuilt, report) = db
            .reoptimize_with_report("t", &night, &IndexSpec::SingleDim)
            .unwrap();
        assert!(report.is_none());
        assert_eq!(rebuilt.index().name(), "SingleDim");
    }

    #[test]
    fn record_query_feeds_a_bounded_observation_log() {
        let (data, day, _) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig {
            observation_window: 4,
            ..TsunamiConfig::fast()
        });
        let mut db = Database::new();
        let t = db.create_table_unnamed("t", data, &day, &spec).unwrap();
        assert_eq!(t.observed_len(), 0);
        for (i, q) in day.queries().iter().enumerate() {
            t.record_query(q).unwrap();
            assert_eq!(t.observed_len(), (i + 1).min(4));
        }
        // Oldest observations were evicted: the log holds the last 4.
        let obs = t.observed_workload();
        assert_eq!(obs.queries(), &day.queries()[day.len() - 4..]);
        // Out-of-bounds observations are rejected at the boundary.
        let bad = Query::count(vec![Predicate::range(9, 0, 1).unwrap()]).unwrap();
        assert!(t.record_query(&bad).is_err());
        t.clear_observations();
        assert_eq!(t.observed_len(), 0);
    }

    #[test]
    fn auto_reoptimize_triggers_only_on_shift() {
        let (data, day, night) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
        let mut db = Database::new();
        let t = db
            .create_table_unnamed("t", data.clone(), &day, &spec)
            .unwrap();

        // Nothing observed: no action.
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());

        // Same-mix observations: still no action.
        for q in day.queries() {
            t.record_query(q).unwrap();
        }
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());

        // Shifted observations: re-optimized for the observed workload.
        for q in night.queries() {
            t.record_query(q).unwrap();
        }
        for q in night.queries() {
            t.record_query(q).unwrap();
        }
        let fresh = db
            .auto_reoptimize("t", &spec)
            .unwrap()
            .expect("shifted observations must trigger re-optimization");
        for q in night.queries().iter().step_by(7) {
            assert_eq!(fresh.execute(q).unwrap(), q.execute_full_scan(&data));
        }

        // The swap consumed the observation log...
        assert_eq!(fresh.observed_len(), 0);
        assert_eq!(t.observed_len(), 0);
        // ...and the log is shared across table generations: queries
        // recorded through a pre-swap handle still reach the catalog's
        // current entry, so the autonomous loop keeps working even when the
        // recording side never re-fetches its handle.
        t.record_query(&night.queries()[0]).unwrap();
        assert_eq!(db.table("t").unwrap().observed_len(), 1);
    }
}
