//! The [`Database`] facade: named tables over built indexes.
//!
//! This is the front door the ROADMAP's serving-scale items plug into: it
//! owns the catalog of tables (each a dataset + schema + one index built from
//! an [`IndexSpec`]), validates every query at the boundary, and hands out
//! cheap [`Table`] handles that the [`crate::Scheduler`]'s workers share.
//!
//! Workload shift (§8) is handled at this layer too: [`Database::reindex`]
//! rebuilds a table's layout from scratch, [`Database::reoptimize`] takes
//! the cheaper incremental path (Tsunami tables keep their Grid Tree and
//! sorted data; only regions whose query mix changed are re-optimized), and
//! [`Database::auto_reoptimize`] closes the loop autonomously from the
//! queries recorded via [`Table::record_query`].

use std::path::Path;
use std::sync::Arc;

use tsunami_baselines::{ClusteredSingleDimIndex, FullScanIndex};
use tsunami_core::exec::pool::{self, WorkStealingPool};
use tsunami_core::{CostModel, Dataset, Point, Predicate, Query, Result, TsunamiError, Workload};
use tsunami_flood::FloodIndex;
use tsunami_index::{IngestReport, ReoptReport, TsunamiConfig, TsunamiIndex, WorkloadMonitor};
use tsunami_store::{CrashPoint, WalRecord};

use crate::durability::{self, Durability};
use crate::scheduler::{Scheduler, SchedulerConfig};
use crate::schema::Schema;
use crate::spec::{IndexSpec, SharedIndex};
use crate::table::Table;
use crate::view::MaterializedView;
use tsunami_core::AggResult;

/// Observation-log capacity for tables built from a spec: Tsunami tables
/// honor their config's window, everything else gets the default.
fn observe_cap(spec: &IndexSpec) -> usize {
    match spec {
        IndexSpec::Tsunami(config) => config.observation_window,
        _ => TsunamiConfig::default().observation_window,
    }
}

/// A catalog of named, indexed tables. Registration order is preserved for
/// iteration (benchmark output stays deterministic).
pub struct Database {
    tables: Vec<Table>,
    /// Registered materialized views (see [`crate::view`]), in registration
    /// order. Maintained by the mutation paths: inserts fold deltas, deletes
    /// invalidate, restructures leave state untouched (live rows unchanged).
    views: Vec<MaterializedView>,
    cost: CostModel,
    /// The execution pool shared by every table: schedulers created via
    /// [`Database::scheduler`] submit into it, and it is the same pool
    /// [`MultiDimIndex::execute_parallel`](tsunami_core::MultiDimIndex::execute_parallel)
    /// runs morsels on. Defaults to the process-wide
    /// [`pool::global`] pool; inject a private one with
    /// [`Database::set_pool`].
    pool: Arc<WorkStealingPool>,
    /// WAL + checkpoint state for databases opened with [`Database::open`];
    /// `None` for purely in-memory databases ([`Database::new`]).
    durability: Option<Durability>,
}

impl Database {
    /// Creates an empty database with the default analytic cost model.
    pub fn new() -> Self {
        Self::with_cost_model(CostModel::default())
    }

    /// Creates an empty database using a specific cost model for all index
    /// builds (e.g. [`CostModel::calibrate`]d to the host).
    pub fn with_cost_model(cost: CostModel) -> Self {
        Self {
            tables: Vec::new(),
            views: Vec::new(),
            cost,
            pool: Arc::clone(pool::global()),
            durability: None,
        }
    }

    /// Opens a **durable** database rooted at `dir` with the default cost
    /// model. See [`Database::open_with_cost_model`].
    pub fn open(dir: impl AsRef<Path>) -> Result<Self> {
        Self::open_with_cost_model(dir, CostModel::default())
    }

    /// Opens a durable database rooted at `dir`: recovers the state from
    /// `checkpoint.db` plus the write-ahead log's valid prefix (see
    /// [`crate::durability`]), then logs and fsyncs every subsequent
    /// `create_table` / `insert_batch` / `delete` *before* applying it, so
    /// committed mutations survive a crash. Recovery rebuilds each table's
    /// index from its stored [`IndexSpec`] and reference workload: query
    /// results are bit-identical to the pre-crash state's, while the
    /// physical layout is re-derived.
    pub fn open_with_cost_model(dir: impl AsRef<Path>, cost: CostModel) -> Result<Self> {
        let (durability, records) = Durability::open(dir.as_ref())?;
        let mut db = Self::with_cost_model(cost);
        for record in records {
            db.apply_record(record)?;
        }
        db.durability = Some(durability);
        Ok(db)
    }

    /// Whether this database was opened with [`Database::open`] and is
    /// logging mutations durably.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Applies one replayed WAL record to the in-memory catalog. Only called
    /// while `self.durability` is `None`, so the mutation paths do not log
    /// the record a second time.
    fn apply_record(&mut self, record: WalRecord) -> Result<()> {
        match record {
            WalRecord::CreateTable {
                name,
                columns,
                spec,
                workload,
                data,
            } => {
                let spec = durability::decode_spec(&spec)?;
                self.create_table(&name, &columns, data, &Workload::new(workload), &spec)?;
            }
            WalRecord::InsertBatch { table, rows } => {
                let rows: Vec<Point> = rows.rows().collect();
                self.insert_batch(&table, &rows)?;
            }
            WalRecord::Delete { table, predicates } => {
                self.delete(&table, &predicates)?;
            }
            WalRecord::RegisterView { table, name, query } => {
                self.register_view(&table, &name, query)?;
            }
            // Markers carry recovery bookkeeping, not state.
            WalRecord::Checkpoint { .. } => {}
        }
        Ok(())
    }

    /// Appends and fsyncs `record` if this database is durable — called by
    /// every mutation *before* it changes the in-memory catalog. The record
    /// is built lazily so in-memory databases pay nothing.
    fn log_mutation(&mut self, record: impl FnOnce() -> WalRecord) -> Result<()> {
        match self.durability.as_mut() {
            Some(durability) => durability.log(&record()),
            None => Ok(()),
        }
    }

    /// Writes a checkpoint: a snapshot of every table (current data, spec,
    /// and reference workload) replaces `checkpoint.db` atomically, and the
    /// WAL is reset. Recovery cost becomes proportional to the mutations
    /// since the last checkpoint instead of since the database was created.
    /// Errors on in-memory databases.
    pub fn checkpoint(&mut self) -> Result<()> {
        if self.durability.is_none() {
            return Err(TsunamiError::Durability(
                "checkpoint requires a database opened with Database::open".into(),
            ));
        }
        let mut snapshot = Vec::with_capacity(self.tables.len() + self.views.len());
        let mut names = Vec::with_capacity(self.tables.len());
        for table in &self.tables {
            snapshot.push(Self::snapshot_record(table)?);
            names.push(table.name().to_string());
        }
        // View specs ride in the snapshot after every table record, so
        // recovery re-registers them against already-replayed tables. State
        // is never persisted — it is recomputed from the recovered data.
        for view in &self.views {
            snapshot.push(WalRecord::RegisterView {
                table: view.table().to_string(),
                name: view.name().to_string(),
                query: view.query().clone(),
            });
        }
        self.durability
            .as_mut()
            .expect("checked above")
            .checkpoint(&snapshot, names)
    }

    fn snapshot_record(table: &Table) -> Result<WalRecord> {
        let spec = table.index_spec().ok_or_else(|| {
            TsunamiError::Durability(format!(
                "table '{}' has no index spec and cannot be checkpointed",
                table.name()
            ))
        })?;
        Ok(WalRecord::CreateTable {
            name: table.name().to_string(),
            columns: table.schema().column_names().map(str::to_string).collect(),
            spec: durability::encode_spec(spec),
            workload: table.reference_workload().queries().to_vec(),
            data: table.dataset().clone(),
        })
    }

    /// Arms deterministic fault injection on the durability layer (crash
    /// tests only). The next matching WAL append / commit / checkpoint step
    /// errors out exactly as a crash at that instant would.
    #[doc(hidden)]
    pub fn set_crash_point(&mut self, crash: CrashPoint) {
        if let Some(durability) = self.durability.as_mut() {
            durability.set_crash_point(crash);
        }
    }

    /// The cost model used for index builds.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The work-stealing pool this database's schedulers submit into.
    pub fn pool(&self) -> &Arc<WorkStealingPool> {
        &self.pool
    }

    /// Replaces the execution pool (e.g. a private pool in tests, or a
    /// dedicated pool per tenant). Schedulers already created keep the pool
    /// they were built with.
    pub fn set_pool(&mut self, pool: Arc<WorkStealingPool>) {
        self.pool = pool;
    }

    /// A scheduler over this database's pool running up to `workers` queries
    /// concurrently. Handles from any of this database's tables can be
    /// submitted to it.
    pub fn scheduler(&self, workers: usize) -> Scheduler {
        self.scheduler_with(SchedulerConfig {
            workers: workers.max(1),
            ..SchedulerConfig::default()
        })
    }

    /// A scheduler over this database's pool with explicit tuning.
    pub fn scheduler_with(&self, config: SchedulerConfig) -> Scheduler {
        Scheduler::on_pool(Arc::clone(&self.pool), config)
    }

    /// Registers a table: names the dataset's columns, builds the index
    /// described by `spec` optimized for the sample `workload`, and returns a
    /// handle. The schema's width must match the dataset's and the name must
    /// be unused. `data` accepts either an owned [`Dataset`] or an
    /// `Arc<Dataset>` — pass an `Arc` clone to register the same data under
    /// several index families without copying it per table.
    pub fn create_table<S: Into<String> + Clone>(
        &mut self,
        name: &str,
        columns: &[S],
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::new(columns.to_vec())?;
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(
            name,
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
            Some(spec.clone()),
        )
    }

    /// Like [`Database::create_table`] with auto-generated `col0..colN`
    /// column names.
    pub fn create_table_unnamed(
        &mut self,
        name: &str,
        data: impl Into<Arc<Dataset>>,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        let data = data.into();
        let schema = Schema::numbered(data.num_dims());
        let index = self.build_index(&schema, &data, workload, spec)?;
        self.register(
            name,
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
            Some(spec.clone()),
        )
    }

    /// Registers a table around an already-built index (escape hatch for
    /// custom index construction). The reference workload starts empty, so
    /// shift detection treats every observed query as new.
    pub fn register_table(
        &mut self,
        name: &str,
        schema: Schema,
        data: impl Into<Arc<Dataset>>,
        index: SharedIndex,
    ) -> Result<Table> {
        let data = data.into();
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        let cap = TsunamiConfig::default().observation_window;
        self.register(name, schema, data, index, Workload::default(), cap, None)
    }

    fn build_index(
        &self,
        schema: &Schema,
        data: &Dataset,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<SharedIndex> {
        if schema.num_columns() != data.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: data.num_dims(),
                got: schema.num_columns(),
            });
        }
        for q in workload.queries() {
            q.validate_dims(data.num_dims())?;
        }
        spec.build(data, workload, &self.cost)
    }

    #[allow(clippy::too_many_arguments)]
    fn register(
        &mut self,
        name: &str,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
        reference: Workload,
        observe_cap: usize,
        spec: Option<IndexSpec>,
    ) -> Result<Table> {
        if self.tables.iter().any(|t| t.name() == name) {
            return Err(TsunamiError::DuplicateTable(name.to_string()));
        }
        if self.durability.is_some() {
            let spec = spec.as_ref().ok_or_else(|| {
                TsunamiError::Durability(format!(
                    "table '{name}' was registered around a pre-built index without a spec; \
                     a durable database cannot replay it — use create_table instead"
                ))
            })?;
            let spec = durability::encode_spec(spec);
            self.log_mutation(|| WalRecord::CreateTable {
                name: name.to_string(),
                columns: schema.column_names().map(str::to_string).collect(),
                spec,
                workload: reference.queries().to_vec(),
                data: (*data).clone(),
            })?;
        }
        let table = Table::new(
            name.to_string(),
            schema,
            data,
            index,
            reference,
            observe_cap,
            spec,
        );
        self.tables.push(table.clone());
        Ok(table)
    }

    /// Looks up a table by name.
    pub fn table(&self, name: &str) -> Result<Table> {
        self.tables
            .iter()
            .find(|t| t.name() == name)
            .cloned()
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))
    }

    /// All registered tables, in registration order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.iter()
    }

    /// Number of registered tables.
    pub fn num_tables(&self) -> usize {
        self.tables.len()
    }

    /// Drops a table from the catalog. Outstanding handles and prepared
    /// queries keep working (the state is shared by `Arc`); only the name
    /// becomes free.
    pub fn drop_table(&mut self, name: &str) -> Result<Table> {
        if self.durability.is_some() {
            // There is no DropTable WAL record: recovery would resurrect the
            // table. Refuse rather than silently un-persist a drop.
            return Err(TsunamiError::Durability(
                "drop_table is not supported on a durable database".into(),
            ));
        }
        match self.tables.iter().position(|t| t.name() == name) {
            Some(i) => {
                // Views over the dropped table go with it; keeping them would
                // leave reads that can never resolve their table again.
                self.views.retain(|v| v.table() != name);
                Ok(self.tables.remove(i))
            }
            None => Err(TsunamiError::UnknownTable(name.to_string())),
        }
    }

    /// Registers a named materialized view: an aggregate `query` over table
    /// `table` whose answer the engine keeps pre-folded and maintains
    /// incrementally across inserts/deletes/restructures (see
    /// [`crate::view`]). The query is validated against the table's schema
    /// width up front. On a durable database the view *spec* is WAL-logged
    /// (state is recomputed after recovery, so it cannot diverge from the
    /// durable data). Read the answer with [`Database::view_value`].
    pub fn register_view(&mut self, table: &str, name: &str, query: Query) -> Result<()> {
        let owner = self.table(table)?;
        query.validate_dims(owner.schema().num_columns())?;
        if self.views.iter().any(|v| v.name() == name) {
            return Err(TsunamiError::DuplicateView(name.to_string()));
        }
        self.log_mutation(|| WalRecord::RegisterView {
            table: table.to_string(),
            name: name.to_string(),
            query: query.clone(),
        })?;
        self.views.push(MaterializedView::new(
            table.to_string(),
            name.to_string(),
            query,
        ));
        Ok(())
    }

    /// Looks up a registered view by name.
    pub fn view(&self, name: &str) -> Result<&MaterializedView> {
        self.views
            .iter()
            .find(|v| v.name() == name)
            .ok_or_else(|| TsunamiError::UnknownView(name.to_string()))
    }

    /// All registered views, in registration order.
    pub fn views(&self) -> impl Iterator<Item = &MaterializedView> {
        self.views.iter()
    }

    /// The current answer of a registered view, bit-identical to executing
    /// its query against the table directly. O(1) while the view's state is
    /// fresh; pays one lazy re-fold through the table's index after a delete
    /// or recovery invalidated it.
    pub fn view_value(&self, name: &str) -> Result<AggResult> {
        let view = self.view(name)?;
        let table = self.table(view.table())?;
        view.value(table.index())
    }

    /// Rebuilds a table's index for a new workload (the paper's workload-
    /// shift scenario, Fig 9a): same name, same schema, same data, fresh
    /// layout, same position in the catalog's iteration order. Returns the
    /// new handle; old handles keep answering through the stale layout until
    /// dropped — and keep recording into the same observation log, which is
    /// cleared by the swap (the observations are consumed by the new
    /// layout's reference workload). On failure the catalog is unchanged.
    pub fn reindex(&mut self, name: &str, workload: &Workload, spec: &IndexSpec) -> Result<Table> {
        let pos = self.position(name)?;
        let old = &self.tables[pos];
        let schema = old.schema().clone();
        // Shares the dataset with the old table; only the index is rebuilt.
        let data = Arc::clone(&old.state.data);
        let index = self.build_index(&schema, &data, workload, spec)?;
        let table = Table::with_observation_log(
            name.to_string(),
            schema,
            data,
            index,
            workload.clone(),
            observe_cap(spec),
            Some(spec.clone()),
            0,
            Arc::clone(&old.state.observed),
        );
        table.clear_observations();
        self.tables[pos] = table.clone();
        Ok(table)
    }

    /// Adapts a table's index to a new workload *incrementally* where the
    /// index family supports it, keeping the catalog position. Tsunami
    /// tables re-optimized with a Tsunami spec go through
    /// [`TsunamiIndex::reoptimize_with_cost`] — the Grid Tree and sorted
    /// data are reused and only the regions whose query mix changed are
    /// re-optimized, which is far cheaper than [`Database::reindex`]. Every
    /// other (table, spec) combination falls back to a full reindex.
    ///
    /// Like `reindex`, old handles keep answering (with the stale layout)
    /// until dropped, and on failure the catalog is unchanged.
    pub fn reoptimize(
        &mut self,
        name: &str,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<Table> {
        Ok(self.reoptimize_with_report(name, workload, spec)?.0)
    }

    /// Like [`Database::reoptimize`], also returning the incremental path's
    /// [`ReoptReport`] (`None` when the combination fell back to a full
    /// reindex).
    pub fn reoptimize_with_report(
        &mut self,
        name: &str,
        workload: &Workload,
        spec: &IndexSpec,
    ) -> Result<(Table, Option<ReoptReport>)> {
        let pos = self.position(name)?;
        let old = &self.tables[pos];
        if let IndexSpec::Tsunami(config) = spec {
            if let Some(stale) = old
                .index()
                .as_any()
                .and_then(|any| any.downcast_ref::<TsunamiIndex>())
            {
                let data = Arc::clone(&old.state.data);
                let (index, report) =
                    stale.reoptimize_with_cost(&data, workload, &self.cost, config)?;
                let table = Table::with_observation_log(
                    name.to_string(),
                    old.schema().clone(),
                    data,
                    Box::new(index),
                    workload.clone(),
                    observe_cap(spec),
                    Some(spec.clone()),
                    0,
                    Arc::clone(&old.state.observed),
                );
                table.clear_observations();
                self.tables[pos] = table.clone();
                return Ok((table, Some(report)));
            }
        }
        Ok((self.reindex(name, workload, spec)?, None))
    }

    /// Inserts one row into a table. See [`Database::insert_batch`].
    pub fn insert(&mut self, name: &str, row: &[tsunami_core::Value]) -> Result<Table> {
        self.insert_batch(name, std::slice::from_ref(&row.to_vec()))
    }

    /// Inserts a batch of rows into a table, absorbing them into the
    /// existing index **without a rebuild** where the family supports it:
    /// Tsunami goes through [`TsunamiIndex::ingest_with_cost`] (rows routed
    /// to their Grid-Tree regions, only touched regions re-gridded), Flood
    /// and the single-dim/full-scan baselines through their sorted-merge
    /// ingest. Families without an ingest path (the paged baselines) fall
    /// back to rebuilding from the table's stored spec.
    ///
    /// Rows are validated against the table's schema width. Swap semantics
    /// match [`Database::reindex`] — scheduler-safe: the catalog entry is
    /// replaced atomically with a new table generation, outstanding handles
    /// and prepared queries keep answering over the pre-insert snapshot
    /// until dropped, and on failure the catalog is unchanged.
    pub fn insert_batch(&mut self, name: &str, rows: &[Point]) -> Result<Table> {
        Ok(self.insert_batch_with_report(name, rows)?.0)
    }

    /// Like [`Database::insert_batch`], also returning the Tsunami ingest
    /// report (`None` for other index families).
    pub fn insert_batch_with_report(
        &mut self,
        name: &str,
        rows: &[Point],
    ) -> Result<(Table, Option<IngestReport>)> {
        let pos = self.position(name)?;
        let old = &self.tables[pos];
        let width = old.schema().num_columns();
        let batch = Dataset::from_rows(width, rows)?;
        let mut data = (*old.state.data).clone();
        for row in rows {
            data.push_row(row)?;
        }
        // Log-before-apply: the batch is durable before the catalog changes.
        self.log_mutation(|| WalRecord::InsertBatch {
            table: name.to_string(),
            rows: batch.clone(),
        })?;

        let old = &self.tables[pos];
        let any = old.index().as_any();
        let mut report = None;
        // When the insert itself re-derives the whole layout (the
        // spec-rebuild fallback, or a Tsunami ingest that escalated), the
        // drift counter restarts — the fresh layout already covers the
        // batch, so auto_reoptimize must not fire a second rebuild for it.
        let mut layout_rederived = false;
        let index: SharedIndex = if let Some(tsunami) =
            any.and_then(|a| a.downcast_ref::<TsunamiIndex>())
        {
            let config = match &old.state.spec {
                Some(IndexSpec::Tsunami(c)) => c.clone(),
                _ => TsunamiConfig::default(),
            };
            let (index, r) = tsunami.ingest_with_cost(&batch, &self.cost, &config)?;
            layout_rederived = r.rebuilt;
            report = Some(r);
            Box::new(index)
        } else if let Some(flood) = any.and_then(|a| a.downcast_ref::<FloodIndex>()) {
            Box::new(flood.ingest(&batch))
        } else if let Some(single) = any.and_then(|a| a.downcast_ref::<ClusteredSingleDimIndex>()) {
            Box::new(single.ingest(&batch))
        } else if let Some(full) = any.and_then(|a| a.downcast_ref::<FullScanIndex>()) {
            Box::new(full.ingest(&batch))
        } else {
            // No ingest path: rebuild from the stored spec over the grown
            // dataset (still optimized for the current reference workload).
            let spec = old.state.spec.clone().ok_or_else(|| {
                TsunamiError::Build(format!(
                    "table '{name}' was registered around a pre-built index without a spec; \
                     reindex it before inserting"
                ))
            })?;
            layout_rederived = true;
            spec.build(&data, old.reference_workload(), &self.cost)?
        };

        let old = &self.tables[pos];
        let inserted_since_reopt = if layout_rederived {
            0
        } else {
            old.state.inserted_since_reopt + rows.len()
        };
        let table = Table::with_observation_log(
            name.to_string(),
            old.schema().clone(),
            Arc::new(data),
            index,
            old.reference_workload().clone(),
            old.state.observe_cap,
            old.state.spec.clone(),
            inserted_since_reopt,
            Arc::clone(&old.state.observed),
        );
        self.tables[pos] = table.clone();
        // Incremental view maintenance: fold the batch's matching rows into
        // each registered view on this table as one delta — never a
        // recompute (see `crate::view`).
        for view in &self.views {
            if view.table() == name {
                view.apply_insert(rows);
            }
        }
        Ok((table, report))
    }

    /// Deletes every row matching the conjunction of `predicates` from a
    /// table. See [`Database::delete_with_count`].
    pub fn delete(&mut self, name: &str, predicates: &[Predicate]) -> Result<Table> {
        Ok(self.delete_with_count(name, predicates)?.0)
    }

    /// Deletes every row matching the conjunction of `predicates`, returning
    /// the new table handle and the number of rows deleted.
    ///
    /// Deletion is **tombstone-first** where the index family supports it:
    /// Tsunami tables go through
    /// [`TsunamiIndex::delete_where_with_cost`](tsunami_index::TsunamiIndex::delete_where_with_cost)
    /// — matching rows are marked in the store's deletion bitmap and every
    /// scan tier masks them out, while regions whose accumulated mutation
    /// fraction passes [`TsunamiConfig::ingest_region_staleness`] are
    /// physically compacted and the whole index is rebuilt over the live
    /// rows past [`TsunamiConfig::ingest_rebuild_staleness`]. Full-scan
    /// tables tombstone and compact once majority-dead; every other family
    /// rebuilds from its stored spec over the live rows.
    ///
    /// The table's logical dataset shrinks to the live rows immediately, so
    /// reoptimize/ingest fallback paths never resurrect deleted rows.
    /// Deletes feed the same data-drift counter as inserts
    /// ([`Table::data_drift_fraction`]), so [`Database::auto_reoptimize`]
    /// eventually re-optimizes a heavily-deleted table. Swap semantics match
    /// [`Database::insert_batch`]: old handles keep answering over the
    /// pre-delete snapshot, and on failure the catalog is unchanged.
    pub fn delete_with_count(
        &mut self,
        name: &str,
        predicates: &[Predicate],
    ) -> Result<(Table, usize)> {
        let pos = self.position(name)?;
        let query = Query::count(predicates.to_vec())?;
        let old = &self.tables[pos];
        query.validate_dims(old.schema().num_columns())?;

        let data = &old.state.data;
        let keep: Vec<usize> = (0..data.len())
            .filter(|&r| !query.matches_point(&data.row(r)))
            .collect();
        let deleted = data.len() - keep.len();
        if deleted == 0 {
            // Nothing matched: no WAL record, no swap.
            return Ok((old.clone(), 0));
        }
        let live = Arc::new(data.select_rows(&keep));
        self.log_mutation(|| WalRecord::Delete {
            table: name.to_string(),
            predicates: predicates.to_vec(),
        })?;

        let old = &self.tables[pos];
        let any = old.index().as_any();
        let mut layout_rederived = false;
        let index: SharedIndex = if let Some(tsunami) =
            any.and_then(|a| a.downcast_ref::<TsunamiIndex>())
        {
            let config = match &old.state.spec {
                Some(IndexSpec::Tsunami(c)) => c.clone(),
                _ => TsunamiConfig::default(),
            };
            let (index, report) = tsunami.delete_where_with_cost(&query, &self.cost, &config)?;
            layout_rederived = report.rebuilt;
            Box::new(index)
        } else if let Some(full) = any.and_then(|a| a.downcast_ref::<FullScanIndex>()) {
            let (index, _) = full.delete_where(&query);
            Box::new(index)
        } else {
            // No tombstone path: rebuild from the stored spec over the live
            // rows (still optimized for the current reference workload).
            let spec = old.state.spec.clone().ok_or_else(|| {
                TsunamiError::Build(format!(
                    "table '{name}' was registered around a pre-built index without a spec; \
                     reindex it before deleting"
                ))
            })?;
            layout_rederived = true;
            spec.build(&live, old.reference_workload(), &self.cost)?
        };

        let old = &self.tables[pos];
        // Deletes are mutations against the optimized-for layout, exactly
        // like inserts: they feed the same drift counter unless this delete
        // itself re-derived the layout.
        let mutated_since_reopt = if layout_rederived {
            0
        } else {
            old.state.inserted_since_reopt + deleted
        };
        let table = Table::with_observation_log(
            name.to_string(),
            old.schema().clone(),
            live,
            index,
            old.reference_workload().clone(),
            old.state.observe_cap,
            old.state.spec.clone(),
            mutated_since_reopt,
            Arc::clone(&old.state.observed),
        );
        self.tables[pos] = table.clone();
        // Tombstoned rows cannot be un-folded from MIN/MAX state, so views
        // on this table invalidate and re-fold lazily on their next read.
        for view in &self.views {
            if view.table() == name {
                view.invalidate();
            }
        }
        Ok((table, deleted))
    }

    /// The autonomous monitor → re-optimize loop: compares the queries
    /// recorded via [`Table::record_query`] (the table's bounded observation
    /// log is the engine's sliding window) against the workload the table's
    /// layout was optimized for and re-optimizes via
    /// [`Database::reoptimize`] — which also drains the log, so the consumed
    /// observations become the new reference — when either kind of drift is
    /// detected:
    ///
    /// * **workload drift** — the observed query-type mix shifted from the
    ///   optimized-for reference;
    /// * **data drift** — the fraction of rows inserted since the layout
    ///   was last (re)derived ([`Table::data_drift_fraction`]) passed the
    ///   [`TsunamiConfig::ingest_region_staleness`] bar; ingestion keeps
    ///   results correct on its own, but accumulated growth eventually
    ///   earns the optimizer a pass even with an unchanged workload.
    ///
    /// Returns `Ok(None)` when neither drift is present — calling this
    /// periodically is cheap.
    pub fn auto_reoptimize(&mut self, name: &str, spec: &IndexSpec) -> Result<Option<Table>> {
        let table = self.table(name)?;
        let observed = table.observed_workload();
        let config = match spec {
            IndexSpec::Tsunami(c) => c.clone(),
            _ => TsunamiConfig::default(),
        };
        let data_drift = table.data_drift_fraction() > config.ingest_region_staleness;
        let workload_drift = !observed.is_empty()
            && WorkloadMonitor::new(table.dataset(), table.reference_workload(), &config)
                .observe(table.dataset(), &observed, &config)
                .reoptimize;
        if !data_drift && !workload_drift {
            return Ok(None);
        }
        // Data drift alone re-optimizes for whatever workload evidence is at
        // hand: the observation log if any, else the current reference.
        let target = if observed.is_empty() {
            table.reference_workload().clone()
        } else {
            observed
        };
        self.reoptimize(name, &target, spec).map(Some)
    }

    fn position(&self, name: &str) -> Result<usize> {
        self.tables
            .iter()
            .position(|t| t.name() == name)
            .ok_or_else(|| TsunamiError::UnknownTable(name.to_string()))
    }
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Database {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Database")
            .field("tables", &self.tables)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Aggregation, Predicate, Query};

    fn data() -> Dataset {
        Dataset::from_columns(vec![
            (0..1_000u64).collect(),
            (0..1_000u64).map(|v| v * 2).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn create_lookup_and_query_roundtrip() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "orders",
                &["id", "price"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();
        assert_eq!(t.name(), "orders");
        assert_eq!(db.num_tables(), 1);

        let r = db
            .table("orders")
            .unwrap()
            .query()
            .range("id", 10, 19)
            .unwrap()
            .execute()
            .unwrap();
        assert_eq!(r.as_count(), Some(10));

        assert_eq!(
            db.table("nope").err(),
            Some(TsunamiError::UnknownTable("nope".into()))
        );
    }

    #[test]
    fn duplicate_and_mismatched_registrations_are_rejected() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        assert_eq!(
            db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DuplicateTable("t".into()))
        );
        // Schema width must match the dataset.
        assert!(matches!(
            db.create_table(
                "u",
                &["only_one"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan
            )
            .err(),
            Some(TsunamiError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn boundary_validation_rejects_out_of_bounds_queries() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "t",
                &["a", "b"],
                data(),
                &Workload::default(),
                &IndexSpec::FullScan,
            )
            .unwrap();

        // Hand-assembled query with a phantom predicate dimension.
        let q = Query::count(vec![Predicate::range(7, 0, 10).unwrap()]).unwrap();
        assert_eq!(
            t.execute(&q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 7,
                num_dims: 2
            })
        );
        // ... and with an out-of-bounds aggregation input.
        let q = Query::new(vec![], Aggregation::Sum(4)).unwrap();
        assert_eq!(
            t.prepare(q).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 4,
                num_dims: 2
            })
        );
        // The builder can't even express those: unknown names fail earlier.
        assert_eq!(
            t.query().range("zzz", 0, 1).err(),
            Some(TsunamiError::UnknownColumn("zzz".into()))
        );
        assert_eq!(
            t.query().sum(9usize).err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 9,
                num_dims: 2
            })
        );
        // A workload containing an out-of-bounds query is rejected at build.
        let bad = Workload::new(vec![
            Query::count(vec![Predicate::range(5, 0, 1).unwrap()]).unwrap()
        ]);
        assert_eq!(
            db.create_table_unnamed("v", data(), &bad, &IndexSpec::FullScan)
                .err(),
            Some(TsunamiError::DimensionOutOfBounds {
                dim: 5,
                num_dims: 2
            })
        );
    }

    #[test]
    fn drop_and_reindex_manage_the_catalog() {
        let mut db = Database::new();
        db.create_table_unnamed("t", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        db.create_table_unnamed("u", data(), &Workload::default(), &IndexSpec::FullScan)
            .unwrap();
        let old = db.table("t").unwrap();

        let reindexed = db
            .reindex("t", &Workload::default(), &IndexSpec::SingleDim)
            .unwrap();
        assert_eq!(db.num_tables(), 2);
        // Reindexing keeps the catalog's registration order.
        let names: Vec<&str> = db.tables().map(|t| t.name()).collect();
        assert_eq!(names, vec!["t", "u"]);
        db.drop_table("u").unwrap();
        assert_eq!(reindexed.index().name(), "SingleDim");
        // The old handle still answers through the stale index.
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        assert_eq!(old.execute(&q).unwrap(), reindexed.execute(&q).unwrap());

        db.drop_table("t").unwrap();
        assert_eq!(db.num_tables(), 0);
        assert!(db.drop_table("t").is_err());
        assert!(db
            .reindex("t", &Workload::default(), &IndexSpec::FullScan)
            .is_err());
    }

    /// Correlated 3-d data plus two disjoint workloads for shift tests.
    fn shift_fixture() -> (Dataset, Workload, Workload) {
        let n = 4_000u64;
        let data = Dataset::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|v| v * 2 + v % 13).collect(),
            (0..n).map(|v| (v * 7919) % 10_000).collect(),
        ])
        .unwrap();
        let day = Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(0, i * 100, i * 100 + 150).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        let night = Workload::new(
            (0..30u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(2, i * 250, i * 250 + 400).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        (data, day, night)
    }

    #[test]
    fn reoptimize_takes_the_incremental_path_for_tsunami_tables() {
        let (data, day, night) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
        let mut db = Database::new();
        db.create_table_unnamed("t", data.clone(), &day, &spec)
            .unwrap();
        let stale = db.table("t").unwrap();

        let (fresh, report) = db.reoptimize_with_report("t", &night, &spec).unwrap();
        let report = report.expect("Tsunami + Tsunami spec uses the incremental path");
        assert!(!report.escalated(), "{report:?}");
        assert_eq!(fresh.reference_workload().len(), night.len());
        for q in night.queries().iter().chain(day.queries()).step_by(5) {
            let expected = q.execute_full_scan(&data);
            assert_eq!(stale.execute(q).unwrap(), expected);
            assert_eq!(fresh.execute(q).unwrap(), expected);
        }

        // Non-Tsunami specs fall back to a full reindex (no report).
        let (rebuilt, report) = db
            .reoptimize_with_report("t", &night, &IndexSpec::SingleDim)
            .unwrap();
        assert!(report.is_none());
        assert_eq!(rebuilt.index().name(), "SingleDim");
    }

    #[test]
    fn record_query_feeds_a_bounded_observation_log() {
        let (data, day, _) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig {
            observation_window: 4,
            ..TsunamiConfig::fast()
        });
        let mut db = Database::new();
        let t = db.create_table_unnamed("t", data, &day, &spec).unwrap();
        assert_eq!(t.observed_len(), 0);
        for (i, q) in day.queries().iter().enumerate() {
            t.record_query(q).unwrap();
            assert_eq!(t.observed_len(), (i + 1).min(4));
        }
        // Oldest observations were evicted: the log holds the last 4.
        let obs = t.observed_workload();
        assert_eq!(obs.queries(), &day.queries()[day.len() - 4..]);
        // Out-of-bounds observations are rejected at the boundary.
        let bad = Query::count(vec![Predicate::range(9, 0, 1).unwrap()]).unwrap();
        assert!(t.record_query(&bad).is_err());
        t.clear_observations();
        assert_eq!(t.observed_len(), 0);
    }

    #[test]
    fn insert_batch_ingests_across_families_with_swap_semantics() {
        let (data, day, _) = shift_fixture();
        let mut db = Database::new();
        for (name, spec) in [
            ("tsunami", IndexSpec::Tsunami(TsunamiConfig::fast())),
            ("flood", IndexSpec::flood()),
            ("single", IndexSpec::SingleDim),
            ("full", IndexSpec::FullScan),
            // No ingest path: rebuilds from the stored spec.
            ("zorder", IndexSpec::ZOrder(crate::PageSize::Fixed(256))),
        ] {
            db.create_table_unnamed(name, data.clone(), &day, &spec)
                .unwrap();
            let before = db.table(name).unwrap();

            // In-domain rows plus rows beyond every build-time domain.
            let mut rows: Vec<Vec<u64>> = (0..150u64).map(|i| vec![i * 3, i * 5, i * 7]).collect();
            rows.push(vec![1_000_000, 1_000_000, 1_000_000]);
            let after = db.insert_batch(name, &rows).unwrap();

            let mut merged = data.clone();
            for row in &rows {
                merged.push_row(row).unwrap();
            }
            assert_eq!(after.num_rows(), merged.len());
            // Old handles keep answering over the pre-insert snapshot.
            assert_eq!(before.num_rows(), data.len());

            let probes = [
                Query::count(vec![Predicate::range(0, 0, 500).unwrap()]).unwrap(),
                Query::count(vec![Predicate::range(2, 900_000, 2_000_000).unwrap()]).unwrap(),
                Query::new(
                    vec![Predicate::range(1, 0, 800).unwrap()],
                    Aggregation::Sum(2),
                )
                .unwrap(),
            ];
            for q in &probes {
                assert_eq!(
                    after.execute(q).unwrap(),
                    q.execute_full_scan(&merged),
                    "{name} diverged on {q:?}"
                );
                assert_eq!(before.execute(q).unwrap(), q.execute_full_scan(&data));
            }
        }
        // Single-row convenience + schema validation.
        db.insert("tsunami", &[1, 2, 3]).unwrap();
        assert!(db.insert("tsunami", &[1, 2]).is_err());
        assert!(db.insert_batch("nope", &[vec![1, 2, 3]]).is_err());
    }

    #[test]
    fn insert_batch_reports_tsunami_ingest() {
        let (data, day, _) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
        let mut db = Database::new();
        db.create_table_unnamed("t", data, &day, &spec).unwrap();
        let rows: Vec<Vec<u64>> = (0..100u64).map(|i| vec![i, 2 * i, 3 * i]).collect();
        let (_, report) = db.insert_batch_with_report("t", &rows).unwrap();
        let report = report.expect("Tsunami tables report their ingest");
        assert_eq!(report.rows_ingested, rows.len());
        assert!(!report.rebuilt);
        // Non-Tsunami families return no report.
        let mut db2 = Database::new();
        let (data2, day2, _) = shift_fixture();
        db2.create_table_unnamed("f", data2, &day2, &IndexSpec::flood())
            .unwrap();
        let (_, report) = db2.insert_batch_with_report("f", &rows).unwrap();
        assert!(report.is_none());
    }

    #[test]
    fn delete_hides_rows_across_families_with_swap_semantics() {
        let (data, day, _) = shift_fixture();
        let mut db = Database::new();
        for (name, spec) in [
            ("tsunami", IndexSpec::Tsunami(TsunamiConfig::fast())),
            ("flood", IndexSpec::flood()),
            ("full", IndexSpec::FullScan),
            // No tombstone path: rebuilds from the stored spec.
            ("zorder", IndexSpec::ZOrder(crate::PageSize::Fixed(256))),
        ] {
            db.create_table_unnamed(name, data.clone(), &day, &spec)
                .unwrap();
            let before = db.table(name).unwrap();

            let band = [Predicate::range(0, 500, 1_499).unwrap()];
            let (after, deleted) = db.delete_with_count(name, &band).unwrap();
            assert_eq!(deleted, 1_000, "{name}");
            assert_eq!(after.num_rows(), data.len() - 1_000, "{name}");
            // Old handles keep answering over the pre-delete snapshot.
            assert_eq!(before.num_rows(), data.len());

            let del = Query::count(band.to_vec()).unwrap();
            let oracle: Dataset = {
                let keep: Vec<usize> = (0..data.len())
                    .filter(|&r| !del.matches_point(&data.row(r)))
                    .collect();
                data.select_rows(&keep)
            };
            let probes = [
                Query::count(vec![Predicate::range(0, 0, 2_000).unwrap()]).unwrap(),
                Query::new(
                    vec![Predicate::range(1, 0, 4_000).unwrap()],
                    Aggregation::Sum(2),
                )
                .unwrap(),
                Query::new(vec![], Aggregation::Avg(0)).unwrap(),
            ];
            for q in &probes {
                assert_eq!(
                    after.execute(q).unwrap(),
                    q.execute_full_scan(&oracle),
                    "{name} diverged on {q:?}"
                );
                assert_eq!(before.execute(q).unwrap(), q.execute_full_scan(&data));
            }

            // Deleting the same band again is a no-op (no rows match the
            // already-deleted range in the live data).
            let (_, again) = db.delete_with_count(name, &band).unwrap();
            assert_eq!(again, 0, "{name}");
        }
        // Deletes feed the engine's data-drift counter (on the tombstoning
        // families; the spec-rebuild fallback re-derives the layout and so
        // restarts the counter).
        assert!(db.table("full").unwrap().data_drift_fraction() > 0.0);
        assert_eq!(db.table("zorder").unwrap().data_drift_fraction(), 0.0);
        // Out-of-bounds predicates are rejected at the boundary.
        assert!(db
            .delete("flood", &[Predicate::range(9, 0, 1).unwrap()])
            .is_err());
        assert!(db.delete("nope", &[]).is_err());
    }

    fn temp_db_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tsunami_engine_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_database_recovers_all_mutations_on_reopen() {
        let dir = temp_db_dir("recover");
        let (data, day, _) = shift_fixture();
        let probes = [
            Query::count(vec![Predicate::range(0, 0, 2_000).unwrap()]).unwrap(),
            Query::new(
                vec![Predicate::range(1, 0, 4_000).unwrap()],
                Aggregation::Sum(2),
            )
            .unwrap(),
            Query::new(vec![], Aggregation::Min(1)).unwrap(),
        ];
        let expected = {
            let mut db = Database::open(&dir).unwrap();
            assert!(db.is_durable());
            assert_eq!(db.num_tables(), 0);
            db.create_table_unnamed("t", data.clone(), &day, &IndexSpec::SingleDim)
                .unwrap();
            let rows: Vec<Vec<u64>> = (0..64u64).map(|i| vec![i, i * 2, i * 3]).collect();
            db.insert_batch("t", &rows).unwrap();
            db.delete("t", &[Predicate::range(0, 100, 299).unwrap()])
                .unwrap();
            let t = db.table("t").unwrap();
            probes
                .iter()
                .map(|q| t.execute(q).unwrap())
                .collect::<Vec<_>>()
        };

        // A fresh process (nothing shared but the directory) sees the same
        // logical state, bit-identically.
        let db = Database::open(&dir).unwrap();
        assert_eq!(db.num_tables(), 1);
        let t = db.table("t").unwrap();
        let replayed: Vec<_> = probes.iter().map(|q| t.execute(q).unwrap()).collect();
        assert_eq!(replayed, expected);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_resets_the_wal_and_survives_reopen() {
        let dir = temp_db_dir("checkpoint");
        let (data, day, _) = shift_fixture();
        let q = Query::count(vec![Predicate::range(0, 0, 2_000).unwrap()]).unwrap();
        let expected = {
            let mut db = Database::open(&dir).unwrap();
            db.create_table_unnamed("t", data, &day, &IndexSpec::FullScan)
                .unwrap();
            db.delete("t", &[Predicate::range(0, 0, 99).unwrap()])
                .unwrap();
            db.checkpoint().unwrap();
            // Post-checkpoint mutations land in the fresh WAL.
            db.insert_batch("t", &[vec![1u64, 2, 3]]).unwrap();
            db.table("t").unwrap().execute(&q).unwrap()
        };
        // The WAL was truncated to just the generation marker + the insert.
        let (records, _) = tsunami_store::wal::replay(&dir.join("wal.log")).unwrap();
        assert!(matches!(
            records.first(),
            Some(WalRecord::Checkpoint { generation: 1, .. })
        ));
        assert_eq!(records.len(), 2);

        let db = Database::open(&dir).unwrap();
        assert_eq!(db.table("t").unwrap().execute(&q).unwrap(), expected);
        // Checkpointing an in-memory database is an error.
        assert!(Database::new().checkpoint().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn durable_database_rejects_unreplayable_operations() {
        let dir = temp_db_dir("rejects");
        let (data, day, _) = shift_fixture();
        let mut db = Database::open(&dir).unwrap();
        db.create_table_unnamed("t", data.clone(), &day, &IndexSpec::FullScan)
            .unwrap();
        // register_table has no spec to replay from; drop_table has no
        // DropTable record. Both must refuse rather than diverge from disk.
        let index: SharedIndex = Box::new(tsunami_baselines::FullScanIndex::build(&data));
        assert!(matches!(
            db.register_table("u", Schema::numbered(3), data, index)
                .err(),
            Some(TsunamiError::Durability(_))
        ));
        assert!(matches!(
            db.drop_table("t").err(),
            Some(TsunamiError::Durability(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn auto_reoptimize_fires_on_data_drift_without_workload_shift() {
        let (data, day, _) = shift_fixture();
        // Tight region bar so a modest batch is already "drifted"; huge
        // rebuild bar so ingest itself never escalates.
        let config = TsunamiConfig {
            ingest_region_staleness: 0.02,
            ingest_rebuild_staleness: 1.0,
            ..TsunamiConfig::fast()
        };
        let spec = IndexSpec::Tsunami(config);
        let mut db = Database::new();
        db.create_table_unnamed("t", data.clone(), &day, &spec)
            .unwrap();

        // Fresh table, nothing observed: no action.
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());

        let rows: Vec<Vec<u64>> = (0..400u64).map(|i| vec![i * 2, i * 4, i * 11]).collect();
        db.insert_batch("t", &rows).unwrap();

        // No queries observed, but the ingested fraction passed the bar:
        // the autonomous loop re-optimizes for the reference workload.
        let fresh = db
            .auto_reoptimize("t", &spec)
            .unwrap()
            .expect("data drift must trigger re-optimization");
        let mut merged = data;
        for row in &rows {
            merged.push_row(row).unwrap();
        }
        for q in day.queries().iter().step_by(7) {
            assert_eq!(fresh.execute(q).unwrap(), q.execute_full_scan(&merged));
        }
        // The staleness was repaid: no further action.
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());
    }

    #[test]
    fn auto_reoptimize_triggers_only_on_shift() {
        let (data, day, night) = shift_fixture();
        let spec = IndexSpec::Tsunami(TsunamiConfig::fast());
        let mut db = Database::new();
        let t = db
            .create_table_unnamed("t", data.clone(), &day, &spec)
            .unwrap();

        // Nothing observed: no action.
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());

        // Same-mix observations: still no action.
        for q in day.queries() {
            t.record_query(q).unwrap();
        }
        assert!(db.auto_reoptimize("t", &spec).unwrap().is_none());

        // Shifted observations: re-optimized for the observed workload.
        for q in night.queries() {
            t.record_query(q).unwrap();
        }
        for q in night.queries() {
            t.record_query(q).unwrap();
        }
        let fresh = db
            .auto_reoptimize("t", &spec)
            .unwrap()
            .expect("shifted observations must trigger re-optimization");
        for q in night.queries().iter().step_by(7) {
            assert_eq!(fresh.execute(q).unwrap(), q.execute_full_scan(&data));
        }

        // The swap consumed the observation log...
        assert_eq!(fresh.observed_len(), 0);
        assert_eq!(t.observed_len(), 0);
        // ...and the log is shared across table generations: queries
        // recorded through a pre-swap handle still reach the catalog's
        // current entry, so the autonomous loop keeps working even when the
        // recording side never re-fetches its handle.
        t.record_query(&night.queries()[0]).unwrap();
        assert_eq!(db.table("t").unwrap().observed_len(), 1);
    }
}
