//! The engine's durability layer: a write-ahead log plus atomic checkpoints.
//!
//! A database opened with [`crate::Database::open`] keeps two files inside
//! its data directory:
//!
//! * `wal.log` — a [`Wal`] of logical mutation records ([`WalRecord`]):
//!   every `create_table`, `insert_batch`, and `delete` is appended and
//!   fsync'd *before* it is applied in memory, so a committed mutation
//!   survives any crash.
//! * `checkpoint.db` — a full snapshot in the same frame format: one
//!   `CreateTable` record per table (current data, spec, and reference
//!   workload) followed by a `Checkpoint` marker carrying the checkpoint
//!   generation. [`crate::Database::checkpoint`] writes it to a temporary
//!   file, fsyncs, atomically renames it into place, then truncates the WAL.
//!
//! # Recovery
//!
//! `Durability::open` replays the checkpoint first, then the WAL's valid
//! prefix (torn or corrupt tails are amputated by the strict
//! [`wal::replay`] decoder). The generation marker resolves the one
//! ambiguous crash window: after a fresh checkpoint is renamed into place
//! but before the old WAL is truncated, the WAL's records are *already
//! inside* the checkpoint. A WAL belongs to the current checkpoint only if
//! its first record is the matching-generation `Checkpoint` marker;
//! otherwise the WAL is stale and is discarded rather than double-applied.
//!
//! Index *layout* is not logged: replaying a `CreateTable` record rebuilds
//! the index from its encoded [`IndexSpec`], so post-recovery layouts are
//! re-derived (bit-identical query results, not bit-identical grids).
//! Layout-only operations (`reindex`, `reoptimize`) are therefore absorbed
//! by the next checkpoint instead of the WAL.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use tsunami_core::{Result, TsunamiError};
use tsunami_flood::FloodConfig;
use tsunami_index::{IndexVariant, OptimizerKind, TsunamiConfig};
use tsunami_store::wal::{self, CrashPoint, Wal, WalRecord};

use crate::spec::{IndexSpec, PageSize};

const WAL_FILE: &str = "wal.log";
const CHECKPOINT_FILE: &str = "checkpoint.db";
const CHECKPOINT_TMP: &str = "checkpoint.tmp";

fn io_err(ctx: &str, e: std::io::Error) -> TsunamiError {
    TsunamiError::Durability(format!("{ctx}: {e}"))
}

fn crash_err(point: &str) -> TsunamiError {
    TsunamiError::Durability(format!("injected crash: {point}"))
}

/// The durable state behind a [`crate::Database`] opened from a directory.
#[derive(Debug)]
pub(crate) struct Durability {
    dir: PathBuf,
    wal: Wal,
    /// Generation of the checkpoint currently on disk (0 = none yet).
    generation: u64,
    crash: CrashPoint,
}

impl Durability {
    /// Opens (or initializes) the durable state under `dir` and returns the
    /// mutation records to replay, in order: the checkpoint's snapshot
    /// records followed by the WAL records the checkpoint has not absorbed.
    /// The WAL is truncated to its valid prefix and left open for append.
    pub(crate) fn open(dir: &Path) -> Result<(Self, Vec<WalRecord>)> {
        fs::create_dir_all(dir).map_err(|e| io_err("create data directory", e))?;
        let ckpt_path = dir.join(CHECKPOINT_FILE);
        let wal_path = dir.join(WAL_FILE);
        // A partial checkpoint.tmp from a crashed checkpoint is garbage.
        let _ = fs::remove_file(dir.join(CHECKPOINT_TMP));

        let (ckpt_records, _) = wal::replay(&ckpt_path)?;
        let generation = ckpt_records
            .iter()
            .rev()
            .find_map(|r| match r {
                WalRecord::Checkpoint { generation, .. } => Some(*generation),
                _ => None,
            })
            .unwrap_or(0);
        let has_checkpoint = !ckpt_records.is_empty();

        let (wal_records, valid_len) = wal::replay(&wal_path)?;
        let wal_is_current = match wal_records.first() {
            Some(WalRecord::Checkpoint { generation: g, .. }) => *g == generation,
            // Only a WAL from before the first checkpoint starts unmarked.
            Some(_) | None => !has_checkpoint,
        };

        let mut replayable = ckpt_records;
        let wal = if wal_is_current {
            replayable.extend(wal_records);
            Wal::open_append(&wal_path, valid_len)?
        } else {
            // The checkpoint already absorbed this WAL (crash between the
            // checkpoint rename and the WAL truncate): start it over with a
            // fresh marker instead of double-applying.
            let mut wal = Wal::create(&wal_path)?;
            wal.append_commit(&WalRecord::Checkpoint {
                generation,
                tables: marker_tables(&replayable),
            })?;
            wal
        };

        Ok((
            Self {
                dir: dir.to_path_buf(),
                wal,
                generation,
                crash: CrashPoint::None,
            },
            replayable,
        ))
    }

    /// Appends and fsyncs one mutation record (log-before-apply).
    pub(crate) fn log(&mut self, record: &WalRecord) -> Result<()> {
        self.wal.append_commit(record)
    }

    /// Writes a checkpoint: `snapshot` (one `CreateTable` per table) plus a
    /// generation marker go to a temporary file, which is fsync'd and
    /// atomically renamed over `checkpoint.db`; then the WAL is reset to
    /// just the new generation's marker.
    pub(crate) fn checkpoint(&mut self, snapshot: &[WalRecord], tables: Vec<String>) -> Result<()> {
        let generation = self.generation + 1;
        let marker = WalRecord::Checkpoint { generation, tables };
        let mut buf = Vec::new();
        for record in snapshot {
            buf.extend_from_slice(&wal::encode_record(record));
        }
        buf.extend_from_slice(&wal::encode_record(&marker));

        let tmp = self.dir.join(CHECKPOINT_TMP);
        let mut file = File::create(&tmp).map_err(|e| io_err("create checkpoint.tmp", e))?;
        if self.crash == CrashPoint::MidCheckpoint {
            let half = buf.len() / 2;
            file.write_all(&buf[..half])
                .map_err(|e| io_err("write checkpoint.tmp", e))?;
            let _ = file.sync_all();
            return Err(crash_err("mid-checkpoint"));
        }
        file.write_all(&buf)
            .map_err(|e| io_err("write checkpoint.tmp", e))?;
        file.sync_all()
            .map_err(|e| io_err("fsync checkpoint.tmp", e))?;
        drop(file);

        fs::rename(&tmp, self.dir.join(CHECKPOINT_FILE))
            .map_err(|e| io_err("rename checkpoint into place", e))?;
        // Make the rename itself durable before touching the WAL.
        if let Ok(dir) = File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        if self.crash == CrashPoint::AfterCheckpointRename {
            return Err(crash_err("after-checkpoint-rename"));
        }

        self.wal = Wal::create(&self.dir.join(WAL_FILE))?;
        self.wal.append_commit(&WalRecord::Checkpoint {
            generation,
            tables: Vec::new(),
        })?;
        self.generation = generation;
        Ok(())
    }

    /// Forwards the fault-injection point to both the engine-level
    /// checkpoint steps and the underlying [`Wal`].
    pub(crate) fn set_crash_point(&mut self, crash: CrashPoint) {
        self.crash = crash;
        self.wal.set_crash_point(crash);
    }
}

fn marker_tables(snapshot: &[WalRecord]) -> Vec<String> {
    snapshot
        .iter()
        .filter_map(|r| match r {
            WalRecord::CreateTable { name, .. } => Some(name.clone()),
            _ => None,
        })
        .collect()
}

// --- IndexSpec codec ------------------------------------------------------
//
// The `spec` bytes inside a `CreateTable` record are opaque to the store
// crate; this is their format. Same conventions as the WAL body codec:
// big-endian fixed-width integers, `f64` as IEEE-754 bits, a leading tag
// byte per enum.

const SPEC_TSUNAMI: u8 = 0x01;
const SPEC_FLOOD: u8 = 0x02;
const SPEC_FULL_SCAN: u8 = 0x03;
const SPEC_SINGLE_DIM: u8 = 0x04;
const SPEC_Z_ORDER: u8 = 0x05;
const SPEC_OCTREE: u8 = 0x06;
const SPEC_KD_TREE: u8 = 0x07;

const PAGE_FIXED: u8 = 0x01;
const PAGE_TUNED: u8 = 0x02;
const PAGE_TUNED_OVER: u8 = 0x03;

/// Encodes an [`IndexSpec`] — every field of every variant — for storage
/// inside a [`WalRecord::CreateTable`].
pub fn encode_spec(spec: &IndexSpec) -> Vec<u8> {
    let mut out = Vec::new();
    match spec {
        IndexSpec::Tsunami(c) => {
            out.push(SPEC_TSUNAMI);
            out.push(match c.variant {
                IndexVariant::Full => 0,
                IndexVariant::GridTreeOnly => 1,
                IndexVariant::AugmentedGridOnly => 2,
            });
            out.push(match c.optimizer {
                OptimizerKind::Adaptive => 0,
                OptimizerKind::GradientOnly => 1,
                OptimizerKind::AdaptiveNaiveInit => 2,
                OptimizerKind::BlackBox => 3,
            });
            put_u64(&mut out, c.skew_bins as u64);
            put_f64(&mut out, c.dbscan_eps);
            put_u64(&mut out, c.dbscan_min_pts as u64);
            put_f64(&mut out, c.min_skew_reduction_fraction);
            put_f64(&mut out, c.min_region_point_fraction);
            put_f64(&mut out, c.min_region_query_fraction);
            put_f64(&mut out, c.merge_tolerance);
            put_u64(&mut out, c.max_tree_depth as u64);
            put_f64(&mut out, c.fm_error_fraction);
            put_f64(&mut out, c.ccdf_empty_fraction);
            put_u64(&mut out, c.max_cells_per_grid as u64);
            put_u64(&mut out, c.optimizer_sample_size as u64);
            put_u64(&mut out, c.optimizer_max_iters as u64);
            put_u64(&mut out, c.blackbox_iters as u64);
            put_u64(&mut out, c.seed);
            put_f64(&mut out, c.reopt_rebuild_drift);
            put_u64(&mut out, c.observation_window as u64);
            put_f64(&mut out, c.reopt_collapse_reach);
            put_f64(&mut out, c.ingest_region_staleness);
            put_f64(&mut out, c.ingest_rebuild_staleness);
        }
        IndexSpec::Flood(c) => {
            out.push(SPEC_FLOOD);
            put_u64(&mut out, c.max_cells as u64);
            put_u64(&mut out, c.sample_size as u64);
            put_u64(&mut out, c.max_iters as u64);
            put_u64(&mut out, c.seed);
        }
        IndexSpec::FullScan => out.push(SPEC_FULL_SCAN),
        IndexSpec::SingleDim => out.push(SPEC_SINGLE_DIM),
        IndexSpec::ZOrder(ps) => {
            out.push(SPEC_Z_ORDER);
            put_page_size(&mut out, ps);
        }
        IndexSpec::Octree(ps) => {
            out.push(SPEC_OCTREE);
            put_page_size(&mut out, ps);
        }
        IndexSpec::KdTree(ps) => {
            out.push(SPEC_KD_TREE);
            put_page_size(&mut out, ps);
        }
    }
    out
}

/// Decodes bytes produced by [`encode_spec`]. Trailing bytes, unknown tags,
/// and short payloads are all [`TsunamiError::Durability`] errors.
pub fn decode_spec(bytes: &[u8]) -> Result<IndexSpec> {
    let mut r = SpecReader { buf: bytes, pos: 0 };
    let spec = (|| -> Option<IndexSpec> {
        let spec = match r.u8()? {
            SPEC_TSUNAMI => {
                let variant = match r.u8()? {
                    0 => IndexVariant::Full,
                    1 => IndexVariant::GridTreeOnly,
                    2 => IndexVariant::AugmentedGridOnly,
                    _ => return None,
                };
                let optimizer = match r.u8()? {
                    0 => OptimizerKind::Adaptive,
                    1 => OptimizerKind::GradientOnly,
                    2 => OptimizerKind::AdaptiveNaiveInit,
                    3 => OptimizerKind::BlackBox,
                    _ => return None,
                };
                IndexSpec::Tsunami(TsunamiConfig {
                    variant,
                    optimizer,
                    skew_bins: r.u64()? as usize,
                    dbscan_eps: r.f64()?,
                    dbscan_min_pts: r.u64()? as usize,
                    min_skew_reduction_fraction: r.f64()?,
                    min_region_point_fraction: r.f64()?,
                    min_region_query_fraction: r.f64()?,
                    merge_tolerance: r.f64()?,
                    max_tree_depth: r.u64()? as usize,
                    fm_error_fraction: r.f64()?,
                    ccdf_empty_fraction: r.f64()?,
                    max_cells_per_grid: r.u64()? as usize,
                    optimizer_sample_size: r.u64()? as usize,
                    optimizer_max_iters: r.u64()? as usize,
                    blackbox_iters: r.u64()? as usize,
                    seed: r.u64()?,
                    reopt_rebuild_drift: r.f64()?,
                    observation_window: r.u64()? as usize,
                    reopt_collapse_reach: r.f64()?,
                    ingest_region_staleness: r.f64()?,
                    ingest_rebuild_staleness: r.f64()?,
                })
            }
            SPEC_FLOOD => IndexSpec::Flood(FloodConfig {
                max_cells: r.u64()? as usize,
                sample_size: r.u64()? as usize,
                max_iters: r.u64()? as usize,
                seed: r.u64()?,
            }),
            SPEC_FULL_SCAN => IndexSpec::FullScan,
            SPEC_SINGLE_DIM => IndexSpec::SingleDim,
            SPEC_Z_ORDER => IndexSpec::ZOrder(r.page_size()?),
            SPEC_OCTREE => IndexSpec::Octree(r.page_size()?),
            SPEC_KD_TREE => IndexSpec::KdTree(r.page_size()?),
            _ => return None,
        };
        // Strict: trailing bytes mean the record is not what we encoded.
        (r.pos == r.buf.len()).then_some(spec)
    })();
    spec.ok_or_else(|| TsunamiError::Durability("corrupt index spec in WAL record".into()))
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn put_page_size(out: &mut Vec<u8>, ps: &PageSize) {
    match ps {
        PageSize::Fixed(n) => {
            out.push(PAGE_FIXED);
            put_u64(out, *n as u64);
        }
        PageSize::Tuned => out.push(PAGE_TUNED),
        PageSize::TunedOver(candidates) => {
            out.push(PAGE_TUNED_OVER);
            put_u64(out, candidates.len() as u64);
            for c in candidates {
                put_u64(out, *c as u64);
            }
        }
    }
}

struct SpecReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl SpecReader<'_> {
    fn u8(&mut self) -> Option<u8> {
        let b = *self.buf.get(self.pos)?;
        self.pos += 1;
        Some(b)
    }

    fn u64(&mut self) -> Option<u64> {
        let bytes = self.buf.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_be_bytes(bytes.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn page_size(&mut self) -> Option<PageSize> {
        Some(match self.u8()? {
            PAGE_FIXED => PageSize::Fixed(self.u64()? as usize),
            PAGE_TUNED => PageSize::Tuned,
            PAGE_TUNED_OVER => {
                let n = self.u64()? as usize;
                if n > self.buf.len() {
                    return None;
                }
                let mut candidates = Vec::with_capacity(n);
                for _ in 0..n {
                    candidates.push(self.u64()? as usize);
                }
                PageSize::TunedOver(candidates)
            }
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(spec: &IndexSpec) {
        let bytes = encode_spec(spec);
        let decoded = decode_spec(&bytes).unwrap();
        // IndexSpec is not PartialEq (it holds f64-bearing configs); compare
        // through a second encode, which is exact for every field.
        assert_eq!(encode_spec(&decoded), bytes, "{}", spec.label());
        assert_eq!(decoded.label(), spec.label());
    }

    #[test]
    fn every_spec_variant_round_trips() {
        let mut specs = IndexSpec::all();
        specs.extend(IndexSpec::all_fast());
        specs.push(IndexSpec::ZOrder(PageSize::TunedOver(vec![64, 256, 4096])));
        specs.push(IndexSpec::Tsunami(
            TsunamiConfig::fast()
                .with_variant(IndexVariant::AugmentedGridOnly)
                .with_optimizer(OptimizerKind::BlackBox)
                .with_reopt_rebuild_drift(0.75)
                .with_ingest_staleness(0.1, 0.9),
        ));
        for spec in &specs {
            round_trip(spec);
        }
    }

    #[test]
    fn corrupt_specs_are_rejected() {
        // Unknown tag.
        assert!(decode_spec(&[0x7f]).is_err());
        // Empty.
        assert!(decode_spec(&[]).is_err());
        // Truncated Tsunami payload.
        let good = encode_spec(&IndexSpec::tsunami());
        assert!(decode_spec(&good[..good.len() - 3]).is_err());
        // Trailing bytes.
        let mut padded = encode_spec(&IndexSpec::FullScan);
        padded.push(0);
        assert!(decode_spec(&padded).is_err());
        // Bad enum payloads.
        assert!(decode_spec(&[SPEC_Z_ORDER, 0x44]).is_err());
        let mut bad_variant = encode_spec(&IndexSpec::tsunami());
        bad_variant[1] = 9;
        assert!(decode_spec(&bad_variant).is_err());
    }
}
