//! A registered table: named, schema-carrying, and backed by one built
//! index. Cheaply cloneable so prepared queries and scheduler workers can
//! share it across threads.
//!
//! A table also carries a bounded **observation log**: callers feed served
//! queries to [`Table::record_query`], and [`crate::Database`] compares the
//! recent observations against the workload the index was optimized for to
//! decide when (incremental) re-optimization is worthwhile — the §8
//! monitor → re-optimize loop.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use tsunami_core::{AggResult, Dataset, IndexStats, MultiDimIndex, Query, Result, Workload};

use crate::builder::QueryBuilder;
use crate::prepared::PreparedQuery;
use crate::schema::Schema;
use crate::spec::{IndexSpec, SharedIndex};

/// Immutable table state shared between the database, prepared queries, and
/// scheduler workers. The logical dataset is held by `Arc` so registering
/// the same data under several index families (the benchmark pattern)
/// shares one copy instead of deep-cloning per table. The observation log is
/// the only mutable state, guarded by its own mutex so recording stays cheap
/// and never blocks query execution.
pub(crate) struct TableState {
    pub(crate) name: String,
    pub(crate) schema: Schema,
    pub(crate) data: Arc<Dataset>,
    pub(crate) index: SharedIndex,
    /// The workload the current index layout was optimized for.
    pub(crate) reference: Workload,
    /// Recently observed queries, oldest first, bounded by `observe_cap`.
    /// Shared (by `Arc`) across the table generations a `reindex`/
    /// `reoptimize` swap creates, so old handles keep feeding the same log
    /// the catalog's current entry reads.
    pub(crate) observed: Arc<Mutex<VecDeque<Query>>>,
    pub(crate) observe_cap: usize,
    /// The spec the index was built from — what `Database::insert_batch`
    /// falls back to for index families without an ingest path, and what
    /// parameterizes the Tsunami ingest. `None` only for tables registered
    /// around a pre-built index (`Database::register_table`).
    pub(crate) spec: Option<IndexSpec>,
    /// Rows inserted since the index layout was last (re)derived for a
    /// workload (build, reindex, or reoptimize) — the engine's data-drift
    /// counter, carried forward across insert swaps and reset by the
    /// re-optimization swaps. Ingestion keeps results correct on its own;
    /// this counter is what lets `Database::auto_reoptimize` notice that
    /// enough data landed to earn the optimizer another pass.
    pub(crate) inserted_since_reopt: usize,
}

/// A handle to a registered table. Cloning is cheap (`Arc`); all query
/// execution goes through the immutable built index, so handles can be used
/// freely from many threads at once.
#[derive(Clone)]
pub struct Table {
    pub(crate) state: Arc<TableState>,
}

impl Table {
    pub(crate) fn new(
        name: String,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
        reference: Workload,
        observe_cap: usize,
        spec: Option<IndexSpec>,
    ) -> Self {
        Self::with_observation_log(
            name,
            schema,
            data,
            index,
            reference,
            observe_cap,
            spec,
            0,
            Arc::new(Mutex::new(VecDeque::new())),
        )
    }

    /// Like [`Table::new`], continuing an existing observation log — the
    /// reindex/reoptimize/insert swap path, where handles to the previous
    /// generation must keep recording into the log the catalog reads.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn with_observation_log(
        name: String,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
        reference: Workload,
        observe_cap: usize,
        spec: Option<IndexSpec>,
        inserted_since_reopt: usize,
        observed: Arc<Mutex<VecDeque<Query>>>,
    ) -> Self {
        Self {
            state: Arc::new(TableState {
                name,
                schema,
                data,
                index,
                reference,
                observed,
                observe_cap: observe_cap.max(1),
                spec,
                inserted_since_reopt,
            }),
        }
    }

    /// The spec the table's index was built from (`None` for tables
    /// registered around a pre-built index).
    pub fn index_spec(&self) -> Option<&IndexSpec> {
        self.state.spec.as_ref()
    }

    /// The fraction of the table's rows inserted since the index layout was
    /// last (re)derived for a workload — the engine's data-drift signal,
    /// mirroring the observation log's workload-drift signal.
    pub fn data_drift_fraction(&self) -> f64 {
        self.state.inserted_since_reopt as f64 / self.num_rows().max(1) as f64
    }

    /// The table's registered name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The table's column schema.
    pub fn schema(&self) -> &Schema {
        &self.state.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.state.data.len()
    }

    /// Number of columns (dimensions).
    pub fn num_columns(&self) -> usize {
        self.state.data.num_dims()
    }

    /// The logical dataset the table was registered with (build-order rows;
    /// the index owns its own reorganized copy).
    pub fn dataset(&self) -> &Dataset {
        &self.state.data
    }

    /// The built index backing this table.
    pub fn index(&self) -> &dyn MultiDimIndex {
        self.state.index.as_ref()
    }

    /// Starts a fluent query against this table.
    pub fn query(&self) -> QueryBuilder {
        QueryBuilder::new(self.clone())
    }

    /// Validates a hand-assembled [`Query`] against this table's width and
    /// wraps it as a reusable [`PreparedQuery`].
    pub fn prepare(&self, query: Query) -> Result<PreparedQuery> {
        query.validate_dims(self.num_columns())?;
        Ok(PreparedQuery::new(self.clone(), query))
    }

    /// Prepares every query of a workload against this table.
    pub fn prepare_workload(&self, workload: &Workload) -> Result<Vec<PreparedQuery>> {
        workload
            .queries()
            .iter()
            .map(|q| self.prepare(q.clone()))
            .collect()
    }

    /// Validates and executes a hand-assembled query in one step.
    pub fn execute(&self, query: &Query) -> Result<AggResult> {
        query.validate_dims(self.num_columns())?;
        Ok(self.state.index.execute(query))
    }

    /// Like [`Table::execute`], returning the executor's scan counters too.
    pub fn execute_with_stats(&self, query: &Query) -> Result<(AggResult, IndexStats)> {
        query.validate_dims(self.num_columns())?;
        Ok(self.state.index.execute_with_stats(query))
    }

    /// The workload the current index layout was optimized for.
    pub fn reference_workload(&self) -> &Workload {
        &self.state.reference
    }

    /// Records one served query into the table's bounded observation log
    /// (oldest observation evicted first). Feed every production query here
    /// — or a sample of them — and let [`crate::Database::auto_reoptimize`]
    /// decide when the observed mix has drifted enough to re-optimize.
    pub fn record_query(&self, query: &Query) -> Result<()> {
        query.validate_dims(self.num_columns())?;
        let mut observed = self.lock_observed();
        if observed.len() == self.state.observe_cap {
            observed.pop_front();
        }
        observed.push_back(query.clone());
        Ok(())
    }

    /// Number of queries currently in the observation log.
    pub fn observed_len(&self) -> usize {
        self.lock_observed().len()
    }

    /// The observation log as a workload (oldest observation first).
    pub fn observed_workload(&self) -> Workload {
        Workload::new(self.lock_observed().iter().cloned().collect())
    }

    /// Discards all recorded observations (e.g. after re-optimizing).
    pub fn clear_observations(&self) {
        self.lock_observed().clear();
    }

    fn lock_observed(&self) -> std::sync::MutexGuard<'_, VecDeque<Query>> {
        // Recording never panics while holding the lock, but recover from
        // poisoning anyway: a lost observation log must not take the table
        // down with it.
        self.state
            .observed
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.state.name)
            .field("rows", &self.state.data.len())
            .field("columns", &self.state.data.num_dims())
            .field("index", &self.state.index.name())
            .finish()
    }
}
