//! A registered table: named, schema-carrying, and backed by one built
//! index. Cheaply cloneable so prepared queries and scheduler workers can
//! share it across threads.

use std::sync::Arc;

use tsunami_core::{AggResult, Dataset, IndexStats, MultiDimIndex, Query, Result, Workload};

use crate::builder::QueryBuilder;
use crate::prepared::PreparedQuery;
use crate::schema::Schema;
use crate::spec::SharedIndex;

/// Immutable table state shared between the database, prepared queries, and
/// scheduler workers. The logical dataset is held by `Arc` so registering
/// the same data under several index families (the benchmark pattern)
/// shares one copy instead of deep-cloning per table.
pub(crate) struct TableState {
    pub(crate) name: String,
    pub(crate) schema: Schema,
    pub(crate) data: Arc<Dataset>,
    pub(crate) index: SharedIndex,
}

/// A handle to a registered table. Cloning is cheap (`Arc`); all query
/// execution goes through the immutable built index, so handles can be used
/// freely from many threads at once.
#[derive(Clone)]
pub struct Table {
    pub(crate) state: Arc<TableState>,
}

impl Table {
    pub(crate) fn new(
        name: String,
        schema: Schema,
        data: Arc<Dataset>,
        index: SharedIndex,
    ) -> Self {
        Self {
            state: Arc::new(TableState {
                name,
                schema,
                data,
                index,
            }),
        }
    }

    /// The table's registered name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The table's column schema.
    pub fn schema(&self) -> &Schema {
        &self.state.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.state.data.len()
    }

    /// Number of columns (dimensions).
    pub fn num_columns(&self) -> usize {
        self.state.data.num_dims()
    }

    /// The logical dataset the table was registered with (build-order rows;
    /// the index owns its own reorganized copy).
    pub fn dataset(&self) -> &Dataset {
        &self.state.data
    }

    /// The built index backing this table.
    pub fn index(&self) -> &dyn MultiDimIndex {
        self.state.index.as_ref()
    }

    /// Starts a fluent query against this table.
    pub fn query(&self) -> QueryBuilder {
        QueryBuilder::new(self.clone())
    }

    /// Validates a hand-assembled [`Query`] against this table's width and
    /// wraps it as a reusable [`PreparedQuery`].
    pub fn prepare(&self, query: Query) -> Result<PreparedQuery> {
        query.validate_dims(self.num_columns())?;
        Ok(PreparedQuery::new(self.clone(), query))
    }

    /// Prepares every query of a workload against this table.
    pub fn prepare_workload(&self, workload: &Workload) -> Result<Vec<PreparedQuery>> {
        workload
            .queries()
            .iter()
            .map(|q| self.prepare(q.clone()))
            .collect()
    }

    /// Validates and executes a hand-assembled query in one step.
    pub fn execute(&self, query: &Query) -> Result<AggResult> {
        query.validate_dims(self.num_columns())?;
        Ok(self.state.index.execute(query))
    }

    /// Like [`Table::execute`], returning the executor's scan counters too.
    pub fn execute_with_stats(&self, query: &Query) -> Result<(AggResult, IndexStats)> {
        query.validate_dims(self.num_columns())?;
        Ok(self.state.index.execute_with_stats(query))
    }
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("name", &self.state.name)
            .field("rows", &self.state.data.len())
            .field("columns", &self.state.data.num_dims())
            .field("index", &self.state.index.name())
            .finish()
    }
}
