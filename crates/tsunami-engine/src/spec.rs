//! [`IndexSpec`]: a declarative description of which index to build over a
//! table, covering every index family in the workspace.
//!
//! The database facade builds tables from specs instead of concrete index
//! types, so callers pick an index the way they pick a storage engine —
//! `IndexSpec::tsunami()` — without importing the per-crate builder APIs.

use tsunami_baselines::{
    tune_page_size, ClusteredSingleDimIndex, FullScanIndex, HyperOctree, KdTree, ZOrderIndex,
    DEFAULT_PAGE_SIZES,
};
use tsunami_core::{CostModel, Dataset, MultiDimIndex, Result, Workload};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{TsunamiConfig, TsunamiIndex};

/// A boxed index that can be shared across the scheduler's worker threads.
pub type SharedIndex = Box<dyn MultiDimIndex + Send + Sync>;

/// Page-size choice for the paged baselines (Z-order, octree, k-d tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PageSize {
    /// Use this exact page size.
    Fixed(usize),
    /// Tune over the default candidate grid by measuring the sample workload
    /// (the paper's §6.3 setup).
    Tuned,
    /// Tune over an explicit candidate grid.
    TunedOver(Vec<usize>),
}

impl PageSize {
    fn resolve<I, F>(&self, data: &Dataset, workload: &Workload, build: F) -> usize
    where
        I: MultiDimIndex,
        F: FnMut(&Dataset, &Workload, usize) -> I,
    {
        match self {
            PageSize::Fixed(ps) => *ps,
            PageSize::Tuned => {
                tune_page_size(data, workload, DEFAULT_PAGE_SIZES, build).best_page_size
            }
            PageSize::TunedOver(candidates) => {
                tune_page_size(data, workload, candidates, build).best_page_size
            }
        }
    }
}

/// Which index to build over a table's data, with its build configuration.
#[derive(Debug, Clone)]
pub enum IndexSpec {
    /// The paper's learned index (Grid Tree + Augmented Grids).
    Tsunami(TsunamiConfig),
    /// The Flood baseline (uniform learned grid).
    Flood(FloodConfig),
    /// Trivial full-scan baseline.
    FullScan,
    /// Points clustered by the workload's most selective dimension.
    SingleDim,
    /// Morton-order pages with min/max skipping.
    ZOrder(PageSize),
    /// Recursive equal subdivision into hyperoctants.
    Octree(PageSize),
    /// Median-split k-d tree.
    KdTree(PageSize),
}

impl IndexSpec {
    /// Tsunami with its default configuration.
    pub fn tsunami() -> Self {
        IndexSpec::Tsunami(TsunamiConfig::default())
    }

    /// Flood with its default configuration.
    pub fn flood() -> Self {
        IndexSpec::Flood(FloodConfig::default())
    }

    /// All seven index families with default configurations and tuned page
    /// sizes, in the order the paper's figures list them.
    pub fn all() -> Vec<IndexSpec> {
        vec![
            IndexSpec::tsunami(),
            IndexSpec::flood(),
            IndexSpec::SingleDim,
            IndexSpec::ZOrder(PageSize::Tuned),
            IndexSpec::Octree(PageSize::Tuned),
            IndexSpec::KdTree(PageSize::Tuned),
            IndexSpec::FullScan,
        ]
    }

    /// All seven families with reduced build effort and small fixed page
    /// sizes — the configuration the fast integration tests share.
    pub fn all_fast() -> Vec<IndexSpec> {
        vec![
            IndexSpec::Tsunami(TsunamiConfig::fast()),
            IndexSpec::Flood(FloodConfig::fast()),
            IndexSpec::SingleDim,
            IndexSpec::ZOrder(PageSize::Fixed(256)),
            IndexSpec::Octree(PageSize::Fixed(256)),
            IndexSpec::KdTree(PageSize::Fixed(256)),
            IndexSpec::FullScan,
        ]
    }

    /// Short stable label for the spec (matches the built index's
    /// [`MultiDimIndex::name`] for the default configurations).
    pub fn label(&self) -> &'static str {
        match self {
            IndexSpec::Tsunami(_) => "Tsunami",
            IndexSpec::Flood(_) => "Flood",
            IndexSpec::FullScan => "FullScan",
            IndexSpec::SingleDim => "SingleDim",
            IndexSpec::ZOrder(_) => "ZOrder",
            IndexSpec::Octree(_) => "HyperOctree",
            IndexSpec::KdTree(_) => "KdTree",
        }
    }

    /// Builds the described index over a dataset, optimizing for the sample
    /// workload where the family supports it.
    pub fn build(
        &self,
        data: &Dataset,
        workload: &Workload,
        cost: &CostModel,
    ) -> Result<SharedIndex> {
        Ok(match self {
            IndexSpec::Tsunami(config) => {
                Box::new(TsunamiIndex::build_with_cost(data, workload, cost, config)?)
            }
            IndexSpec::Flood(config) => Box::new(FloodIndex::build(data, workload, cost, config)),
            IndexSpec::FullScan => Box::new(FullScanIndex::build(data)),
            IndexSpec::SingleDim => Box::new(ClusteredSingleDimIndex::build(data, workload)),
            IndexSpec::ZOrder(page_size) => {
                let ps = page_size.resolve(data, workload, ZOrderIndex::build);
                Box::new(ZOrderIndex::build(data, workload, ps))
            }
            IndexSpec::Octree(page_size) => {
                let ps = page_size.resolve(data, workload, HyperOctree::build);
                Box::new(HyperOctree::build(data, workload, ps))
            }
            IndexSpec::KdTree(page_size) => {
                let ps = page_size.resolve(data, workload, KdTree::build);
                Box::new(KdTree::build(data, workload, ps))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Predicate, Query};

    fn small() -> (Dataset, Workload) {
        let data = Dataset::from_columns(vec![
            (0..2_000u64).collect(),
            (0..2_000u64).map(|v| v * 3 % 1_000).collect(),
        ])
        .unwrap();
        let workload = Workload::new(
            (0..8u64)
                .map(|i| {
                    Query::count(vec![Predicate::range(0, i * 100, i * 100 + 250).unwrap()])
                        .unwrap()
                })
                .collect(),
        );
        (data, workload)
    }

    #[test]
    fn every_spec_builds_and_agrees_with_the_oracle() {
        let (data, workload) = small();
        let cost = CostModel::default();
        let mut specs = IndexSpec::all_fast();
        // Cover the tuned-page-size path on one family.
        specs[4] = IndexSpec::Octree(PageSize::TunedOver(vec![256, 1024]));
        assert_eq!(specs.len(), 7);
        for spec in &specs {
            let index = spec.build(&data, &workload, &cost).unwrap();
            for q in workload.queries().iter().step_by(3) {
                assert_eq!(
                    index.execute(q),
                    q.execute_full_scan(&data),
                    "{} disagrees on {q:?}",
                    spec.label()
                );
            }
        }
    }

    #[test]
    fn labels_are_unique_and_cover_all_seven_families() {
        let labels: Vec<&str> = IndexSpec::all().iter().map(|s| s.label()).collect();
        assert_eq!(
            labels,
            vec![
                "Tsunami",
                "Flood",
                "SingleDim",
                "ZOrder",
                "HyperOctree",
                "KdTree",
                "FullScan"
            ]
        );
    }
}
