//! Registered-query materialized views.
//!
//! A [`MaterializedView`] is a named aggregate query over one table whose
//! answer the engine keeps pre-folded and maintains *incrementally*:
//!
//! * `insert_batch` folds the batch's matching rows into the cached state as
//!   one delta ([`MaterializedView::apply_insert`]) — never a recompute;
//! * `delete` invalidates the state ([`MaterializedView::invalidate`]); it is
//!   recomputed lazily on the next read (tombstoned rows cannot be
//!   "un-folded" from MIN/MAX, so deletes pay the lazy re-fold);
//! * restructures (reoptimize/reindex/compaction swaps) change only the
//!   physical layout, never the live rows, so the state carries through them
//!   untouched.
//!
//! State is an [`AggAccumulator`] — the exact representation the scan path
//! folds into — seeded from *component* queries executed through the table's
//! index (COUNT plus SUM/MIN/MAX of the input dimension as the aggregation
//! needs). Every component answer is bit-identical to a scan, and
//! [`AggAccumulator::finish`] applies the same finalization (AVG as
//! SUM/COUNT — never an average of averages), so a view's answer is
//! bit-identical to executing its query from scratch, always.
//!
//! Durability: only the view *spec* (table, name, query) is logged
//! ([`tsunami_store::WalRecord::RegisterView`]); state is never persisted —
//! after recovery it is recomputed from the replayed table, so it cannot
//! diverge from the durable data.

use std::sync::Mutex;

use tsunami_core::{AggAccumulator, AggResult, Aggregation, MultiDimIndex, Point, Query, Result};

/// A named, incrementally-maintained aggregate over one table. See the
/// module docs for the maintenance and bit-identity contract.
#[derive(Debug)]
pub struct MaterializedView {
    name: String,
    table: String,
    query: Query,
    /// Pre-folded state, or `None` when invalidated / not yet computed.
    /// Interior mutability so reads (`&Database`) can refresh lazily.
    state: Mutex<Option<AggAccumulator>>,
}

impl MaterializedView {
    /// Creates an unfolded view; the first read computes its state.
    pub fn new(table: String, name: String, query: Query) -> Self {
        Self {
            name,
            table,
            query,
            state: Mutex::new(None),
        }
    }

    /// The view's unique name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table the view aggregates over.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The aggregate query the view materializes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Whether the state is currently folded (diagnostics/tests; a `false`
    /// only means the next read pays a recompute).
    pub fn is_fresh(&self) -> bool {
        self.state.lock().unwrap().is_some()
    }

    /// Drops the cached state; the next read recomputes from the table.
    pub fn invalidate(&self) {
        *self.state.lock().unwrap() = None;
    }

    /// Folds a batch of newly inserted rows into the cached state as one
    /// delta: matching rows are pre-aggregated and applied with a single
    /// [`AggAccumulator::add_block`]. A no-op while invalidated (the lazy
    /// recompute will see the rows in the table).
    pub fn apply_insert(&self, rows: &[Point]) {
        let mut guard = self.state.lock().unwrap();
        let Some(acc) = guard.as_mut() else {
            return;
        };
        let dim = self.query.aggregation().input_dim().unwrap_or(0);
        let mut n = 0u64;
        let mut sum = 0u128;
        let mut min: Option<u64> = None;
        let mut max: Option<u64> = None;
        for row in rows {
            if !self.query.matches_point(row) {
                continue;
            }
            let v = row[dim];
            n += 1;
            sum += v as u128;
            min = Some(min.map_or(v, |m| m.min(v)));
            max = Some(max.map_or(v, |m| m.max(v)));
        }
        acc.add_block(n, sum, min, max);
    }

    /// The view's current answer, recomputing the state through `index` (the
    /// owning table's index) when invalidated. `index` must answer over the
    /// view's table — the database wires this up.
    pub fn value(&self, index: &dyn MultiDimIndex) -> Result<AggResult> {
        let mut guard = self.state.lock().unwrap();
        if guard.is_none() {
            *guard = Some(recompute(&self.query, index)?);
        }
        Ok(guard.as_ref().expect("folded above").finish())
    }
}

/// Seeds a fresh accumulator from component queries executed through the
/// index: COUNT always, plus the aggregation's SUM or MIN/MAX as needed.
/// Each component is itself bit-identical to a scan, and the accumulator's
/// `finish` applies the scan path's exact finalization, so the seeded state
/// answers bit-identically to executing the view query directly.
fn recompute(query: &Query, index: &dyn MultiDimIndex) -> Result<AggAccumulator> {
    let preds = query.predicates().to_vec();
    let count_q = Query::new(preds.clone(), Aggregation::Count)?;
    let count = index
        .execute(&count_q)
        .as_count()
        .expect("COUNT query returns Count");
    let mut acc = AggAccumulator::new(query.aggregation());
    match query.aggregation() {
        Aggregation::Count => acc.add_block(count, 0, None, None),
        Aggregation::Sum(d) | Aggregation::Avg(d) => {
            let sum_q = Query::new(preds, Aggregation::Sum(d))?;
            let sum = index
                .execute(&sum_q)
                .as_sum()
                .expect("SUM query returns Sum");
            acc.add_block(count, sum, None, None);
        }
        Aggregation::Min(d) => {
            let min_q = Query::new(preds, Aggregation::Min(d))?;
            let min = index
                .execute(&min_q)
                .as_min()
                .expect("MIN query returns Min");
            acc.add_block(count, 0, min, None);
        }
        Aggregation::Max(d) => {
            let max_q = Query::new(preds, Aggregation::Max(d))?;
            let max = index
                .execute(&max_q)
                .as_max()
                .expect("MAX query returns Max");
            acc.add_block(count, 0, None, max);
        }
    }
    Ok(acc)
}
