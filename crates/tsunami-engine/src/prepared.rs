//! A validated, reusable (table, query) pair.
//!
//! Validation — schema resolution, predicate normalization, dimension
//! bounds — happens once at prepare time, so execution is infallible and the
//! handle can be cloned into the scheduler's worker threads.

use tsunami_core::{AggResult, IndexStats, Query};

use crate::table::Table;

/// A query bound to a table, validated and ready to execute any number of
/// times. Cloning is cheap: the table is shared by `Arc` and only the query's
/// predicate list is copied.
#[derive(Clone)]
pub struct PreparedQuery {
    table: Table,
    query: Query,
}

impl PreparedQuery {
    pub(crate) fn new(table: Table, query: Query) -> Self {
        Self { table, query }
    }

    /// The table this query runs against.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The underlying normalized query.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Executes through the table's index.
    pub fn execute(&self) -> AggResult {
        self.table.index().execute(&self.query)
    }

    /// Executes, returning the executor's scan counters too.
    pub fn execute_with_stats(&self) -> (AggResult, IndexStats) {
        self.table.index().execute_with_stats(&self.query)
    }

    /// Executes with the intra-query parallel executor (`threads` workers
    /// splitting this one query's scan plan).
    pub fn execute_parallel(&self, threads: usize) -> (AggResult, IndexStats) {
        self.table.index().execute_parallel(&self.query, threads)
    }

    /// Reference full-scan execution over the table's logical dataset — the
    /// correctness oracle.
    pub fn execute_oracle(&self) -> AggResult {
        self.query.execute_full_scan(self.table.dataset())
    }
}

impl std::fmt::Debug for PreparedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreparedQuery")
            .field("table", &self.table.name())
            .field("query", &self.query)
            .finish()
    }
}
