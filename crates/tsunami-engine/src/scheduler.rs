//! The concurrent query scheduler: inter-query parallelism on the shared
//! work-stealing pool.
//!
//! This complements the intra-query parallel executor (`exec::
//! execute_plan_parallel`, which splits *one* query's scan plan into morsels
//! across pool workers) with *inter-query* parallelism: many small queries
//! in flight at once, which is how serving-scale traffic actually arrives.
//! Queries carry their table handle ([`PreparedQuery`]), so one scheduler
//! serves every table in a database.
//!
//! The scheduler owns **no threads**. It submits drainer tasks into a
//! [`WorkStealingPool`] — by default the process-wide
//! [`pool::global`] pool, the same one the
//! intra-query executor uses — so one saturated box can run one huge
//! morsel-split scan, or many small queries, or any mix, without idle
//! workers or spawn overhead. Each drainer pops queued queries until the
//! queue is empty, then retires; at most
//! [`SchedulerConfig::workers`] drainers run at once, bounding how many
//! queries execute concurrently. With
//! [`SchedulerConfig::intra_query_threads`] > 1, each drained query
//! additionally fans out into morsels on the same pool — inter- and
//! intra-query parallelism composing on one substrate.
//!
//! Two submission APIs:
//!
//! * [`Scheduler::execute_batch`] — run a batch, results in input order.
//! * [`Scheduler::submit`] / [`Scheduler::try_submit`] — enqueue one query
//!   and get a [`QueryHandle`] to `poll`/`wait` on. The queue is bounded:
//!   `submit` blocks when full (backpressure), `try_submit` returns
//!   [`TsunamiError::SchedulerQueueFull`] instead.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use tsunami_core::exec::pool::{self, WorkStealingPool};
use tsunami_core::{AggResult, IndexStats, Result, TsunamiError};

use crate::prepared::PreparedQuery;

/// What gets written into a completion slot: the result and counters, or the
/// error the query resolved with — [`TsunamiError::QueryPanicked`] when it
/// blew up mid-execution, [`TsunamiError::SchedulerShutdown`] when the
/// scheduler was dropped before a drainer picked it up.
type Outcome = std::result::Result<(AggResult, IndexStats), TsunamiError>;

/// Completion slot shared between a drainer and the submitter's handle.
struct Slot {
    result: Mutex<Option<Outcome>>,
    done: Condvar,
}

impl Slot {
    fn new() -> Arc<Self> {
        Arc::new(Self {
            result: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    fn fill(&self, value: Outcome) {
        *self.result.lock().unwrap() = Some(value);
        self.done.notify_all();
    }
}

/// A handle to one submitted query. Obtained from [`Scheduler::submit`];
/// poll for completion or block until the result is ready. A query that
/// panicked on its worker resolves to [`TsunamiError::QueryPanicked`], and
/// one still queued when the scheduler dropped resolves to
/// [`TsunamiError::SchedulerShutdown`] — a handle never hangs its waiter.
pub struct QueryHandle {
    slot: Arc<Slot>,
}

impl QueryHandle {
    /// Non-blocking: the query's outcome if it has finished, `None` if it is
    /// still queued or running.
    pub fn poll(&self) -> Option<Result<AggResult>> {
        self.outcome().map(to_result)
    }

    /// Whether the query has finished.
    pub fn is_done(&self) -> bool {
        self.outcome().is_some()
    }

    /// Blocks until the query finishes and returns its result.
    pub fn wait(&self) -> Result<AggResult> {
        self.wait_with_stats().map(|(r, _)| r)
    }

    /// Blocks until the query finishes; returns result plus scan counters.
    pub fn wait_with_stats(&self) -> Result<(AggResult, IndexStats)> {
        let mut guard = self.slot.result.lock().unwrap();
        loop {
            if let Some(outcome) = guard.clone() {
                return outcome;
            }
            guard = self.slot.done.wait(guard).unwrap();
        }
    }
}

fn to_result(outcome: Outcome) -> Result<AggResult> {
    outcome.map(|(r, _)| r)
}

// Private accessor used by poll/is_done (kept out of the public surface).
impl QueryHandle {
    fn outcome(&self) -> Option<Outcome> {
        self.slot.result.lock().unwrap().clone()
    }
}

/// Scheduler tuning knobs. `Default` derives everything from the shared
/// pool: as many concurrent queries as the pool has workers, the default
/// queue depth, serial per-query execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Maximum queries executing concurrently (drainer tasks in flight).
    /// `0` means "as many as the pool has workers".
    pub workers: usize,
    /// Queue capacity (queries awaiting a drainer). `0` means
    /// `workers * DEFAULT_QUEUE_PER_WORKER`.
    pub queue_capacity: usize,
    /// Intra-query parallelism: each drained query executes across this many
    /// pool workers via the morsel executor. `1` (the default) runs each
    /// query serially — the right choice when queries are small and
    /// plentiful; raise it when queries are few and large.
    pub intra_query_threads: usize,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            queue_capacity: 0,
            intra_query_threads: 1,
        }
    }
}

struct QueueState {
    jobs: VecDeque<(PreparedQuery, Arc<Slot>)>,
    /// Drainer tasks currently submitted and not yet retired.
    active: usize,
    shutdown: bool,
}

struct Shared {
    state: Mutex<QueueState>,
    /// Signals blocked submitters that queue space freed up.
    space_ready: Condvar,
    /// Signals `Drop` that the last drainer retired with an empty queue.
    idle: Condvar,
    capacity: usize,
    max_active: usize,
    intra_query_threads: usize,
    completed: AtomicU64,
    pool: Arc<WorkStealingPool>,
}

/// A bounded query queue drained by tasks on the shared work-stealing pool.
/// Dropping the scheduler waits for in-flight queries to finish and resolves
/// still-queued ones with [`TsunamiError::SchedulerShutdown`] — waiters on
/// their handles (e.g. server connections mid-request) unblock with an error
/// instead of hanging.
pub struct Scheduler {
    shared: Arc<Shared>,
}

impl Scheduler {
    /// Default queue capacity per worker used when
    /// [`SchedulerConfig::queue_capacity`] is zero.
    pub const DEFAULT_QUEUE_PER_WORKER: usize = 64;

    /// A scheduler running up to `workers` queries concurrently (clamped to
    /// at least one) on the process-wide pool, with a queue of
    /// `workers * DEFAULT_QUEUE_PER_WORKER` slots.
    pub fn new(workers: usize) -> Self {
        Self::with_config(SchedulerConfig {
            workers: workers.max(1),
            ..SchedulerConfig::default()
        })
    }

    /// A scheduler with an explicit queue capacity (clamped to at least one
    /// slot). Smaller capacities apply backpressure sooner.
    pub fn with_queue_capacity(workers: usize, capacity: usize) -> Self {
        Self::with_config(SchedulerConfig {
            workers: workers.max(1),
            queue_capacity: capacity.max(1),
            ..SchedulerConfig::default()
        })
    }

    /// A scheduler on the process-wide pool with explicit tuning.
    pub fn with_config(config: SchedulerConfig) -> Self {
        Self::on_pool(Arc::clone(pool::global()), config)
    }

    /// A scheduler submitting into an explicit pool (tests inject private
    /// pools; a `Database` injects its shared one).
    pub fn on_pool(pool: Arc<WorkStealingPool>, config: SchedulerConfig) -> Self {
        let max_active = if config.workers == 0 {
            pool.worker_count()
        } else {
            config.workers
        };
        let capacity = if config.queue_capacity == 0 {
            max_active * Self::DEFAULT_QUEUE_PER_WORKER
        } else {
            config.queue_capacity
        };
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    active: 0,
                    shutdown: false,
                }),
                space_ready: Condvar::new(),
                idle: Condvar::new(),
                capacity: capacity.max(1),
                max_active: max_active.max(1),
                intra_query_threads: config.intra_query_threads.max(1),
                completed: AtomicU64::new(0),
                pool,
            }),
        }
    }

    /// Maximum queries executing concurrently.
    pub fn worker_count(&self) -> usize {
        self.shared.max_active
    }

    /// Queue capacity (maximum queries awaiting execution).
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Intra-query parallelism each drained query executes with.
    pub fn intra_query_threads(&self) -> usize {
        self.shared.intra_query_threads
    }

    /// The pool this scheduler submits into.
    pub fn pool(&self) -> &Arc<WorkStealingPool> {
        &self.shared.pool
    }

    /// Total queries completed since the scheduler started.
    pub fn completed(&self) -> u64 {
        self.shared.completed.load(Ordering::Relaxed)
    }

    /// Enqueues a query, blocking while the queue is full (backpressure).
    pub fn submit(&self, query: PreparedQuery) -> Result<QueryHandle> {
        self.enqueue(query, true)
    }

    /// Enqueues a query without blocking; fails with
    /// [`TsunamiError::SchedulerQueueFull`] when the queue is at capacity.
    pub fn try_submit(&self, query: PreparedQuery) -> Result<QueryHandle> {
        self.enqueue(query, false)
    }

    fn enqueue(&self, query: PreparedQuery, block: bool) -> Result<QueryHandle> {
        let mut state = self.shared.state.lock().unwrap();
        while state.jobs.len() >= self.shared.capacity {
            if state.shutdown {
                return Err(TsunamiError::SchedulerShutdown);
            }
            if !block {
                return Err(TsunamiError::SchedulerQueueFull);
            }
            state = self.shared.space_ready.wait(state).unwrap();
        }
        if state.shutdown {
            return Err(TsunamiError::SchedulerShutdown);
        }
        let slot = Slot::new();
        state.jobs.push_back((query, Arc::clone(&slot)));
        // Spin up another drainer unless the concurrency bound is already
        // met. The increment happens under the lock so a drainer retiring at
        // this instant (it also holds the lock to pop) cannot strand the job.
        let spawn_drainer = state.active < self.shared.max_active;
        if spawn_drainer {
            state.active += 1;
        }
        drop(state);
        if spawn_drainer {
            let shared = Arc::clone(&self.shared);
            self.shared.pool.spawn(move || drain(&shared));
        }
        Ok(QueryHandle { slot })
    }

    /// Executes a batch of queries across the pool and returns their results
    /// in input order. Submission applies the same backpressure as
    /// [`Scheduler::submit`]; a query that panicked surfaces as an error.
    pub fn execute_batch(&self, queries: &[PreparedQuery]) -> Result<Vec<AggResult>> {
        let handles: Vec<QueryHandle> = queries
            .iter()
            .map(|q| self.submit(q.clone()))
            .collect::<Result<_>>()?;
        handles.iter().map(QueryHandle::wait).collect()
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        let cancelled = {
            let mut state = self.shared.state.lock().unwrap();
            state.shutdown = true;
            // Wake blocked submitters so they observe the shutdown.
            self.shared.space_ready.notify_all();
            std::mem::take(&mut state.jobs)
        };
        // Resolve queued-but-unstarted queries instead of executing them: a
        // waiter blocked on its handle (a server connection mid-request, say)
        // gets SchedulerShutdown rather than hanging on work that will never
        // be drained. Slots are filled outside the lock — in-flight drainers
        // keep retiring concurrently.
        for (_query, slot) in cancelled {
            slot.fill(Err(TsunamiError::SchedulerShutdown));
        }
        // Wait only for queries already executing on a drainer; the last one
        // to retire with an empty queue signals `idle`.
        let mut state = self.shared.state.lock().unwrap();
        while state.active != 0 {
            state = self.shared.idle.wait(state).unwrap();
        }
    }
}

/// One drainer task: pops queued queries and executes them until the queue
/// is empty, then retires. Runs on a pool worker.
fn drain(shared: &Shared) {
    loop {
        let (query, slot) = {
            let mut state = shared.state.lock().unwrap();
            match state.jobs.pop_front() {
                Some(job) => job,
                None => {
                    state.active -= 1;
                    if state.active == 0 {
                        shared.idle.notify_all();
                    }
                    return;
                }
            }
        };
        // A slot freed up; wake one blocked submitter.
        shared.space_ready.notify_one();
        // Catch panics so a poisoned query can neither hang its waiter (the
        // slot always gets filled) nor kill the pool worker.
        let threads = shared.intra_query_threads;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if threads > 1 {
                query.execute_parallel(threads)
            } else {
                query.execute_with_stats()
            }
        }))
        .map_err(|payload| {
            TsunamiError::QueryPanicked(
                payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string()),
            )
        });
        // Count before filling: once `fill` wakes a waiter, the query must
        // already be visible in `completed()`.
        shared.completed.fetch_add(1, Ordering::Relaxed);
        slot.fill(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::Database;
    use crate::spec::IndexSpec;
    use tsunami_core::{Dataset, Workload};

    fn table() -> crate::table::Table {
        let mut db = Database::new();
        db.create_table(
            "t",
            &["a", "b"],
            Dataset::from_columns(vec![
                (0..5_000u64).collect(),
                (0..5_000u64).map(|v| v % 97).collect(),
            ])
            .unwrap(),
            &Workload::default(),
            &IndexSpec::FullScan,
        )
        .unwrap()
    }

    #[test]
    fn batch_results_match_serial_execution_in_order() {
        let t = table();
        let queries: Vec<_> = (0..40u64)
            .map(|i| {
                t.query()
                    .range("a", i * 100, i * 100 + 500)
                    .unwrap()
                    .sum("b")
                    .unwrap()
                    .prepare()
                    .unwrap()
            })
            .collect();
        let scheduler = Scheduler::new(4);
        let parallel = scheduler.execute_batch(&queries).unwrap();
        let serial: Vec<_> = queries.iter().map(|q| q.execute()).collect();
        assert_eq!(parallel, serial);
        assert_eq!(scheduler.completed(), 40);
    }

    #[test]
    fn submit_poll_wait_lifecycle() {
        let t = table();
        let q = t.query().range("a", 0, 999).unwrap().prepare().unwrap();
        let scheduler = Scheduler::new(2);
        let handle = scheduler.submit(q.clone()).unwrap();
        let result = handle.wait().unwrap();
        assert_eq!(result.as_count(), Some(1_000));
        assert!(handle.is_done());
        assert_eq!(handle.poll().unwrap().unwrap(), result);
        // wait() is idempotent.
        assert_eq!(handle.wait().unwrap(), result);
    }

    #[test]
    fn worker_panics_surface_as_errors_and_do_not_hang_the_pool() {
        use tsunami_core::exec::{ScanPlan, ScanSource};
        use tsunami_core::{BuildTiming, Dataset, MultiDimIndex, Query};

        /// An index whose planner panics — stands in for any internal
        /// invariant failure during query execution.
        struct Exploding {
            data: Dataset,
        }
        impl MultiDimIndex for Exploding {
            fn name(&self) -> &str {
                "Exploding"
            }
            fn source(&self) -> &dyn ScanSource {
                &self.data
            }
            fn plan(&self, _query: &Query) -> ScanPlan {
                panic!("invariant violated")
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn build_timing(&self) -> BuildTiming {
                BuildTiming::default()
            }
        }

        let data = Dataset::from_columns(vec![(0..100u64).collect()]).unwrap();
        let mut db = Database::new();
        let bad = db
            .register_table(
                "bad",
                crate::schema::Schema::numbered(1),
                data.clone(),
                Box::new(Exploding { data }),
            )
            .unwrap();
        let good = table();

        let scheduler = Scheduler::new(2);
        let bad_handle = scheduler.submit(bad.query().prepare().unwrap()).unwrap();
        match bad_handle.wait() {
            Err(TsunamiError::QueryPanicked(msg)) => assert!(msg.contains("invariant")),
            other => panic!("expected QueryPanicked, got {other:?}"),
        }
        assert!(bad_handle.is_done());
        assert!(bad_handle.poll().unwrap().is_err());

        // The pool keeps serving after the panic.
        let q = good.query().range("a", 0, 9).unwrap().prepare().unwrap();
        for _ in 0..8 {
            let h = scheduler.submit(q.clone()).unwrap();
            assert_eq!(h.wait().unwrap().as_count(), Some(10));
        }
        // execute_batch propagates the panic as an error, not a hang.
        let batch = vec![q.clone(), bad.query().prepare().unwrap(), q];
        assert!(matches!(
            scheduler.execute_batch(&batch),
            Err(TsunamiError::QueryPanicked(_))
        ));
    }

    #[test]
    fn try_submit_applies_backpressure_when_the_queue_is_full() {
        let t = table();
        let q = t.query().prepare().unwrap();
        // One drainer, one queue slot: flooding must hit SchedulerQueueFull.
        let scheduler = Scheduler::with_queue_capacity(1, 1);
        let mut saw_full = false;
        let mut handles = Vec::new();
        for _ in 0..10_000 {
            match scheduler.try_submit(q.clone()) {
                Ok(h) => handles.push(h),
                Err(TsunamiError::SchedulerQueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(saw_full, "a 1-slot queue never reported backpressure");
        for h in &handles {
            h.wait().unwrap();
        }
    }

    #[test]
    fn shutdown_resolves_every_handle_with_a_result_or_shutdown_error() {
        let t = table();
        let q = t.query().range("a", 0, 99).unwrap().prepare().unwrap();
        let scheduler = Scheduler::new(2);
        let handles: Vec<_> = (0..16)
            .map(|_| scheduler.submit(q.clone()).unwrap())
            .collect();
        drop(scheduler);
        // Every handle resolved by the time drop returned: in-flight queries
        // with their real result, still-queued ones with SchedulerShutdown.
        for h in handles {
            assert!(h.is_done());
            match h.wait() {
                Ok(r) => assert_eq!(r.as_count(), Some(100)),
                Err(TsunamiError::SchedulerShutdown) => {}
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }

    #[test]
    fn drop_resolves_unstarted_handles_instead_of_hanging() {
        use tsunami_core::exec::pool::WorkStealingPool;
        use tsunami_core::exec::{ScanPlan, ScanSource};
        use tsunami_core::{BuildTiming, Dataset, MultiDimIndex, Query};

        /// An index whose planner blocks on an external gate — stands in for
        /// any long-running query occupying the only drainer. `entered`
        /// flips when the planner is reached, so the test can tell the
        /// drainer has actually dequeued the query.
        struct Gated {
            data: Dataset,
            gate: Arc<(Mutex<GateState>, Condvar)>,
        }
        #[derive(Default)]
        struct GateState {
            entered: bool,
            open: bool,
        }
        impl MultiDimIndex for Gated {
            fn name(&self) -> &str {
                "Gated"
            }
            fn source(&self) -> &dyn ScanSource {
                &self.data
            }
            fn plan(&self, _query: &Query) -> ScanPlan {
                let (lock, cv) = &*self.gate;
                let mut state = lock.lock().unwrap();
                state.entered = true;
                cv.notify_all();
                while !state.open {
                    state = cv.wait(state).unwrap();
                }
                ScanPlan::full(self.data.len())
            }
            fn size_bytes(&self) -> usize {
                0
            }
            fn build_timing(&self) -> BuildTiming {
                BuildTiming::default()
            }
        }

        let gate = Arc::new((Mutex::new(GateState::default()), Condvar::new()));
        let data = Dataset::from_columns(vec![(0..100u64).collect()]).unwrap();
        let mut db = Database::new();
        let t = db
            .register_table(
                "gated",
                crate::schema::Schema::numbered(1),
                data.clone(),
                Box::new(Gated {
                    data,
                    gate: Arc::clone(&gate),
                }),
            )
            .unwrap();

        // One drainer total: the gated query occupies it, so the remaining
        // submissions stay queued until drop cancels them.
        let pool = Arc::new(WorkStealingPool::new(1));
        let scheduler = Scheduler::on_pool(
            pool,
            SchedulerConfig {
                workers: 1,
                ..SchedulerConfig::default()
            },
        );
        let q = t.query().prepare().unwrap();
        let blocked = scheduler.submit(q.clone()).unwrap();
        {
            // Only once the drainer is provably inside the gated planner are
            // further submissions guaranteed to stay queued.
            let (lock, cv) = &*gate;
            let mut state = lock.lock().unwrap();
            while !state.entered {
                state = cv.wait(state).unwrap();
            }
        }
        let queued: Vec<_> = (0..4)
            .map(|_| scheduler.submit(q.clone()).unwrap())
            .collect();

        // A waiter holding the queued handles, like a server connection
        // blocked mid-request. It only opens the gate (letting the in-flight
        // query and therefore `drop` finish) after all queued handles
        // resolved with SchedulerShutdown — with the old drop-executes-all
        // semantics this test deadlocks instead of passing.
        let waiter = std::thread::spawn(move || {
            for h in queued {
                assert!(matches!(h.wait(), Err(TsunamiError::SchedulerShutdown)));
            }
            let (lock, cv) = &*gate;
            lock.lock().unwrap().open = true;
            cv.notify_all();
        });
        drop(scheduler);
        waiter.join().unwrap();
        assert_eq!(blocked.wait().unwrap().as_count(), Some(100));
    }

    #[test]
    fn intra_query_parallel_scheduler_matches_serial() {
        // Inter- and intra-query parallelism composing on one pool: each
        // drained query fans out into morsels without deadlocking, and
        // results stay bit-identical to serial execution.
        let t = table();
        let queries: Vec<_> = (0..12u64)
            .map(|i| {
                t.query()
                    .range("b", i, i + 40)
                    .unwrap()
                    .sum("a")
                    .unwrap()
                    .prepare()
                    .unwrap()
            })
            .collect();
        let scheduler = Scheduler::with_config(SchedulerConfig {
            workers: 4,
            intra_query_threads: 4,
            ..SchedulerConfig::default()
        });
        let results = scheduler.execute_batch(&queries).unwrap();
        for (r, q) in results.iter().zip(&queries) {
            assert_eq!(*r, q.execute());
        }
    }
}
