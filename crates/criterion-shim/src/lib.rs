//! A minimal, dependency-free stand-in for the `criterion` bench harness.
//!
//! The build container has no crates.io access, so the real criterion crate
//! cannot be fetched. This shim implements exactly the API surface the
//! `tsunami-bench` benchmarks use (`criterion_group!`/`criterion_main!`,
//! benchmark groups with per-input benches, and `Bencher::iter`) with a
//! straightforward timing loop: per sample it runs a fixed batch of
//! iterations and reports the median per-iteration time.
//!
//! Numbers from this shim are comparable between indexes in the same run but
//! lack criterion's outlier analysis; swap the workspace `criterion`
//! dependency back to the real crate when network access is available.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from the benchmark's parameter (e.g. an index name).
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }

    /// Creates an id from a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Drives the measured closure. Handed to the bench body by
/// [`BenchmarkGroup::bench_with_input`] and [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Median per-iteration time of the last `iter` call, in seconds.
    last_median_secs: f64,
}

impl Bencher {
    /// Times `routine`, storing the median per-iteration latency.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate a batch size so one sample takes roughly
        // measurement_time / samples.
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let once = t0.elapsed().as_secs_f64().max(1e-9);
        let per_sample = self.measurement_time.as_secs_f64() / self.samples.max(1) as f64;
        let batch = ((per_sample / once) as usize).clamp(1, 1_000_000);

        let mut sample_secs = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            sample_secs.push(start.elapsed().as_secs_f64() / batch as f64);
        }
        sample_secs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        self.last_median_secs = sample_secs[sample_secs.len() / 2];
    }
}

/// A named collection of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored beyond API compatibility (the shim warms up with one call).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Total time budget split across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            last_median_secs: 0.0,
        };
        f(&mut b, input);
        report(&self.name, &id.id, b.last_median_secs);
        let _ = &self.criterion;
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: self.sample_size,
            measurement_time: self.measurement_time,
            last_median_secs: 0.0,
        };
        f(&mut b);
        report(&self.name, &id.id, b.last_median_secs);
        self
    }

    /// Ends the group (printing is done per bench; nothing to flush).
    pub fn finish(&mut self) {}
}

/// The bench harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: 10,
            measurement_time: Duration::from_secs(2),
            last_median_secs: 0.0,
        };
        f(&mut b);
        report(name, "", b.last_median_secs);
        self
    }
}

fn report(group: &str, id: &str, median_secs: f64) {
    let label = if id.is_empty() {
        group.to_string()
    } else {
        format!("{group}/{id}")
    };
    let (value, unit) = if median_secs >= 1.0 {
        (median_secs, "s")
    } else if median_secs >= 1e-3 {
        (median_secs * 1e3, "ms")
    } else if median_secs >= 1e-6 {
        (median_secs * 1e6, "us")
    } else {
        (median_secs * 1e9, "ns")
    };
    println!("{label:<60} time: [{value:.3} {unit}]");
}

/// Mirrors `criterion::criterion_group!`: bundles bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`: generates `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
