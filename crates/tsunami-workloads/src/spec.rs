//! Bundles of (dataset, workload, metadata) ready for the benchmark harness.

use crate::{perfmon, stocks, taxi, tpch};
use tsunami_core::{Dataset, Workload};

/// A named dataset together with its sample workload and column names —
/// one row of the paper's Table 3.
#[derive(Debug, Clone)]
pub struct DatasetBundle {
    /// Human-readable dataset name ("TPC-H", "Taxi", "Perfmon", "Stocks").
    pub name: &'static str,
    /// The generated dataset.
    pub data: Dataset,
    /// The sample query workload (used both for optimization and evaluation).
    pub workload: Workload,
    /// Column names, index-aligned with the dataset's dimensions.
    pub columns: Vec<&'static str>,
    /// Number of query types in the workload.
    pub query_types: usize,
}

impl DatasetBundle {
    /// Generates the four standard dataset/workload bundles of the paper's
    /// evaluation, scaled to `rows` rows and `queries_per_type` queries per
    /// type.
    pub fn standard(rows: usize, queries_per_type: usize, seed: u64) -> Vec<DatasetBundle> {
        let tpch_data = tpch::generate(rows, seed);
        let taxi_data = taxi::generate(rows, seed ^ 1);
        let perfmon_data = perfmon::generate(rows, seed ^ 2);
        let stocks_data = stocks::generate(rows, seed ^ 3);
        vec![
            DatasetBundle {
                name: "TPC-H",
                workload: tpch::workload(&tpch_data, queries_per_type, seed ^ 10),
                data: tpch_data,
                columns: tpch::COLUMNS.to_vec(),
                query_types: 5,
            },
            DatasetBundle {
                name: "Taxi",
                workload: taxi::workload(&taxi_data, queries_per_type, seed ^ 11),
                data: taxi_data,
                columns: taxi::COLUMNS.to_vec(),
                query_types: 6,
            },
            DatasetBundle {
                name: "Perfmon",
                workload: perfmon::workload(&perfmon_data, queries_per_type, seed ^ 12),
                data: perfmon_data,
                columns: perfmon::COLUMNS.to_vec(),
                query_types: 5,
            },
            DatasetBundle {
                name: "Stocks",
                workload: stocks::workload(&stocks_data, queries_per_type, seed ^ 13),
                data: stocks_data,
                columns: stocks::COLUMNS.to_vec(),
                query_types: 5,
            },
        ]
    }

    /// Dataset size in GiB (8 bytes per value), for Table 3.
    pub fn size_gib(&self) -> f64 {
        (self.data.len() * self.data.num_dims() * 8) as f64 / (1024.0 * 1024.0 * 1024.0)
    }

    /// Average workload selectivity over this dataset.
    pub fn average_selectivity(&self) -> f64 {
        self.workload.average_selectivity(&self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_bundles_cover_the_four_datasets() {
        let bundles = DatasetBundle::standard(3_000, 5, 99);
        assert_eq!(bundles.len(), 4);
        let names: Vec<&str> = bundles.iter().map(|b| b.name).collect();
        assert_eq!(names, vec!["TPC-H", "Taxi", "Perfmon", "Stocks"]);
        for b in &bundles {
            assert_eq!(b.data.len(), 3_000);
            assert_eq!(b.columns.len(), b.data.num_dims());
            assert!(!b.workload.is_empty());
            assert!(b.size_gib() > 0.0);
            assert!(b.average_selectivity() < 0.2);
        }
        // Dimensionalities match Table 3: 8, 9, 7, 7.
        let dims: Vec<usize> = bundles.iter().map(|b| b.data.num_dims()).collect();
        assert_eq!(dims, vec![8, 9, 7, 7]);
    }
}
