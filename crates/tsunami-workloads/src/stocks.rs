//! A daily-stock-prices-like dataset and workload (§6.2).
//!
//! Dimensions:
//!
//! | idx | column      | structure                                            |
//! |-----|-------------|------------------------------------------------------|
//! | 0   | date        | trading days over ~48 years, uniform                 |
//! | 1   | open        | log-uniform price in cents                           |
//! | 2   | close       | open ± a few percent (tightly correlated)            |
//! | 3   | low         | ≤ min(open, close), correlated                       |
//! | 4   | high        | ≥ max(open, close), correlated                       |
//! | 5   | adj close   | close scaled by a split factor (correlated)          |
//! | 6   | volume      | heavy-tailed, skewed low                             |
//!
//! Five query types, e.g. "which stocks saw the lowest intra-day price change
//! while trading at high volume?" and "what one-year span in the past decade
//! saw the most stocks close in a certain price range?". Queries skew over
//! time (recent years) and volume (very low and very high volume types).
//! Query selectivity is tightly concentrated (the paper reports 0.5%±0.04%).

use crate::queries::{count_query, range_at, recency_biased_start, sorted_column};
use crate::rng::StdRng;
use crate::rng::{Rng, SeedableRng};
use tsunami_core::{Dataset, Value, Workload};

/// Column names, index-aligned with the generated dataset.
pub const COLUMNS: [&str; 7] = [
    "date",
    "open",
    "close",
    "low",
    "high",
    "adj_close",
    "volume",
];

/// Trading days in the date domain (1970–2018).
pub const DATE_DOMAIN: u64 = 48 * 252;

/// Generates a stock-prices-like dataset with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<Value>> = (0..7).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let date = rng.gen_range(0..DATE_DOMAIN);
        // Log-uniform open price between $1 and $1000 (in cents).
        let open = (100.0 * 1000f64.powf(rng.gen::<f64>())) as u64;
        let drift = 1.0 + (rng.gen::<f64>() - 0.5) * 0.06;
        let close = ((open as f64) * drift) as u64;
        let low = (open.min(close) as f64 * (1.0 - rng.gen::<f64>() * 0.03)) as u64;
        let high = (open.max(close) as f64 * (1.0 + rng.gen::<f64>() * 0.03)) as u64;
        let adj = close * rng.gen_range(90..=100u64) / 100;
        // Heavy-tailed volume.
        let v: f64 = rng.gen::<f64>();
        let volume = (1_000.0 + 10_000_000.0 * v.powi(4)) as u64;
        let row = [date, open, close, low, high, adj, volume];
        for (c, val) in row.into_iter().enumerate() {
            cols[c].push(val);
        }
    }
    Dataset::from_columns(cols).expect("valid stocks dataset")
}

/// Generates the stocks workload: five query types, `queries_per_type` each,
/// each with roughly 0.5% selectivity.
pub fn workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let sorted: Vec<Vec<Value>> = (0..data.num_dims())
        .map(|d| sorted_column(data.column(d)))
        .collect();
    let mut queries = Vec::with_capacity(5 * queries_per_type);
    for _ in 0..queries_per_type {
        // Type 1: low intra-day change at high volume.
        let (o_lo, o_hi) = range_at(&sorted[1], rng.gen::<f64>() * 0.8, 0.05);
        let (v_lo, v_hi) = range_at(&sorted[6], 0.9 + 0.09 * rng.gen::<f64>(), 0.08);
        queries.push(count_query(&[(1, o_lo, o_hi), (6, v_lo, v_hi)]));

        // Type 2: recent one-year span, close in a price band.
        let start = recency_biased_start(&mut rng, 0.85, 0.2);
        let (d_lo, d_hi) = range_at(&sorted[0], start.min(0.97), 0.02);
        let (c_lo, c_hi) = range_at(&sorted[2], rng.gen::<f64>() * 0.7, 0.2);
        queries.push(count_query(&[(0, d_lo, d_hi), (2, c_lo, c_hi)]));

        // Type 3: very low volume penny-stock days.
        let (v_lo, v_hi) = range_at(&sorted[6], 0.0, 0.04);
        let (l_lo, l_hi) = range_at(&sorted[3], 0.0, 0.12);
        queries.push(count_query(&[(6, v_lo, v_hi), (3, l_lo, l_hi)]));

        // Type 4: high/low band spread over a recent window.
        let start = recency_biased_start(&mut rng, 0.8, 0.15);
        let (d_lo, d_hi) = range_at(&sorted[0], start.min(0.96), 0.03);
        let (h_lo, h_hi) = range_at(&sorted[4], 0.75 + 0.2 * rng.gen::<f64>(), 0.15);
        queries.push(count_query(&[(0, d_lo, d_hi), (4, h_lo, h_hi)]));

        // Type 5: adjusted close vs close band (correlated pair).
        let start = rng.gen::<f64>() * 0.8;
        let (a_lo, a_hi) = range_at(&sorted[5], start, 0.05);
        let (c_lo, c_hi) = range_at(&sorted[2], start, 0.1);
        queries.push(count_query(&[(5, a_lo, a_hi), (2, c_lo, c_hi)]));
    }
    Workload::new(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_price_correlations_hold() {
        let ds = generate(20_000, 31);
        assert_eq!(ds.num_dims(), COLUMNS.len());
        for r in (0..ds.len()).step_by(991) {
            let open = ds.get(r, 1);
            let close = ds.get(r, 2);
            let low = ds.get(r, 3);
            let high = ds.get(r, 4);
            assert!(low <= open.min(close) && high >= open.max(close));
            // Close within ±4% of open.
            assert!((close as f64) < open as f64 * 1.04 && (close as f64) > open as f64 * 0.96);
            assert!(ds.get(r, 5) <= close);
        }
    }

    #[test]
    fn volume_is_heavy_tailed() {
        let ds = generate(20_000, 32);
        let sorted = sorted_column(ds.column(6));
        let median = sorted[sorted.len() / 2];
        let p99 = sorted[sorted.len() * 99 / 100];
        assert!(p99 > median * 10, "median {median}, p99 {p99}");
    }

    #[test]
    fn workload_selectivity_is_tightly_concentrated_and_low() {
        let ds = generate(30_000, 33);
        let w = workload(&ds, 20, 34);
        assert_eq!(w.len(), 100);
        let avg = w.average_selectivity(&ds);
        assert!(avg < 0.06, "avg selectivity {avg}");
        assert!(w.group_by_filtered_dims().len() >= 4);
    }

    #[test]
    fn workload_skews_to_recent_dates() {
        let ds = generate(20_000, 35);
        let w = workload(&ds, 30, 36);
        let date_preds: Vec<_> = w
            .queries()
            .iter()
            .filter_map(|q| q.predicate_on(0).copied())
            .collect();
        let recent = date_preds
            .iter()
            .filter(|p| p.lo > DATE_DOMAIN * 6 / 10)
            .count();
        assert!(recent * 2 > date_preds.len());
    }
}
