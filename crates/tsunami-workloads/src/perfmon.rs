//! A performance-monitoring-log-like dataset and workload (§6.2).
//!
//! Dimensions:
//!
//! | idx | column        | structure                                        |
//! |-----|---------------|--------------------------------------------------|
//! | 0   | log time      | minutes over one year, uniform                   |
//! | 1   | machine id    | 0..=499 dictionary-encoded                       |
//! | 2   | cpu user %    | bimodal: mostly low, occasionally high (x100)    |
//! | 3   | cpu system %  | correlated with user cpu                         |
//! | 4   | load avg 1m   | correlated with cpu (x100)                       |
//! | 5   | load avg 5m   | tightly correlated with 1m load                  |
//! | 6   | memory used % | weakly correlated with load (x100)               |
//!
//! Five query types. Queries skew over time (recent data) and CPU usage
//! (queries about high usage), e.g. "when in the last month did a certain set
//! of machines experience high load?".

use crate::queries::{count_query, range_at, recency_biased_start, sorted_column};
use crate::rng::StdRng;
use crate::rng::{Rng, SeedableRng};
use tsunami_core::{Dataset, Value, Workload};

/// Column names, index-aligned with the generated dataset.
pub const COLUMNS: [&str; 7] = [
    "time", "machine", "cpu_user", "cpu_sys", "load1", "load5", "mem_used",
];

/// Minutes in the one-year time domain.
pub const TIME_DOMAIN: u64 = 365 * 24 * 60;

/// Generates a perfmon-like dataset with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<Value>> = (0..7).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let time = rng.gen_range(0..TIME_DOMAIN);
        let machine = rng.gen_range(0..500u64);
        // Bimodal CPU: 85% of samples idle-ish, 15% busy.
        let cpu_user: u64 = if rng.gen_bool(0.85) {
            rng.gen_range(0..2_500u64)
        } else {
            rng.gen_range(6_000..10_000u64)
        };
        let cpu_sys = cpu_user / 4 + rng.gen_range(0..800u64);
        let load1 = cpu_user / 2 + rng.gen_range(0..1_000u64);
        let load5 = load1 * 9 / 10 + rng.gen_range(0..300u64);
        let mem = 2_000 + load1 / 3 + rng.gen_range(0..4_000u64);
        let row = [
            time,
            machine,
            cpu_user,
            cpu_sys,
            load1,
            load5,
            mem.min(10_000),
        ];
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    Dataset::from_columns(cols).expect("valid perfmon dataset")
}

/// Generates the perfmon workload: five query types, `queries_per_type` each.
pub fn workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let sorted: Vec<Vec<Value>> = (0..data.num_dims())
        .map(|d| sorted_column(data.column(d)))
        .collect();
    let mut queries = Vec::with_capacity(5 * queries_per_type);
    for _ in 0..queries_per_type {
        // Type 1: a set of machines with high load in the last month.
        let m = rng.gen_range(0..460u64);
        let start = recency_biased_start(&mut rng, 0.9, 0.08);
        let (t_lo, t_hi) = range_at(&sorted[0], start.min(0.97), 0.03);
        queries.push(count_query(&[
            (0, t_lo, t_hi),
            (1, m, m + 25),
            (4, 5_000, 20_000),
        ]));

        // Type 2: very high user CPU recently.
        let start = recency_biased_start(&mut rng, 0.85, 0.15);
        let (t_lo, t_hi) = range_at(&sorted[0], start.min(0.95), 0.05);
        queries.push(count_query(&[(0, t_lo, t_hi), (2, 8_000, 10_000)]));

        // Type 3: memory pressure on a machine band over a broad window.
        let m = rng.gen_range(0..440u64);
        let (mem_lo, mem_hi) = range_at(&sorted[6], 0.85 + 0.1 * rng.gen::<f64>(), 0.06);
        queries.push(count_query(&[(1, m, m + 60), (6, mem_lo, mem_hi)]));

        // Type 4: system CPU vs user CPU band (correlated pair).
        let (u_lo, u_hi) = range_at(&sorted[2], rng.gen::<f64>() * 0.7, 0.1);
        let (s_lo, s_hi) = range_at(&sorted[3], rng.gen::<f64>() * 0.7, 0.15);
        queries.push(count_query(&[(2, u_lo, u_hi), (3, s_lo, s_hi)]));

        // Type 5: 5-minute load spike in a narrow recent window.
        let start = recency_biased_start(&mut rng, 0.8, 0.1);
        let (t_lo, t_hi) = range_at(&sorted[0], start.min(0.98), 0.01);
        let (l_lo, l_hi) = range_at(&sorted[5], 0.9, 0.1);
        queries.push(count_query(&[(0, t_lo, t_hi), (5, l_lo, l_hi)]));
    }
    Workload::new(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_correlations_hold() {
        let ds = generate(20_000, 21);
        assert_eq!(ds.num_dims(), COLUMNS.len());
        for r in (0..ds.len()).step_by(983) {
            let user = ds.get(r, 2);
            let sys = ds.get(r, 3);
            assert!(sys >= user / 4 && sys <= user / 4 + 800);
            let l1 = ds.get(r, 4);
            let l5 = ds.get(r, 5);
            assert!(l5 >= l1 * 9 / 10 && l5 <= l1 * 9 / 10 + 300);
        }
    }

    #[test]
    fn cpu_usage_is_bimodal() {
        let ds = generate(20_000, 22);
        let low = ds.column(2).iter().filter(|&&v| v < 2_500).count();
        let high = ds.column(2).iter().filter(|&&v| v >= 6_000).count();
        let mid = ds.len() - low - high;
        assert!(low > high);
        assert!(high > ds.len() / 20);
        assert_eq!(mid, 0);
    }

    #[test]
    fn workload_skews_to_recent_time_and_high_cpu() {
        let ds = generate(30_000, 23);
        let w = workload(&ds, 20, 24);
        assert_eq!(w.len(), 100);
        assert!(w.group_by_filtered_dims().len() >= 4);
        let time_preds: Vec<_> = w
            .queries()
            .iter()
            .filter_map(|q| q.predicate_on(0).copied())
            .collect();
        let recent = time_preds
            .iter()
            .filter(|p| p.lo > TIME_DOMAIN * 6 / 10)
            .count();
        assert!(recent * 2 > time_preds.len());
        let avg = w.average_selectivity(&ds);
        assert!(avg < 0.12, "avg selectivity {avg}");
    }
}
