//! Synthetic datasets and query workloads reproducing the *structure* of the
//! paper's evaluation data (§6.2).
//!
//! The paper evaluates on three real datasets (NYC Taxi, a university
//! performance-monitoring log, and daily stock prices) plus TPC-H's
//! `lineitem`, each with hundreds of millions of rows and a workload of 5–6
//! query types (100 queries per type). Those datasets are not redistributable
//! here, so this crate generates synthetic stand-ins that deliberately plant
//! the characteristics Tsunami exploits:
//!
//! * **Correlations** — e.g. fare ≈ linear in trip distance (Taxi), open ≈
//!   close prices (Stocks), ship/commit/receipt dates within days of each
//!   other (TPC-H), CPU counters tracking each other (Perfmon).
//! * **Query skew** — more queries over recent time ranges, query types about
//!   extreme values (very low / very high passenger counts or volumes), and
//!   query types with very different per-dimension selectivities.
//!
//! Each dataset module exposes `generate(rows, seed)` and
//! `workload(&Dataset, queries_per_type, seed)`; [`DatasetBundle::standard`]
//! returns all four ready for the benchmark harness.

pub mod perfmon;
pub mod queries;
pub mod rng;
pub mod spec;
pub mod stocks;
pub mod synthetic;
pub mod taxi;
pub mod tpch;

pub use spec::DatasetBundle;
