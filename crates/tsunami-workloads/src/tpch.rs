//! A TPC-H `lineitem`-like dataset and workload (§6.2).
//!
//! Dimensions (all integer-encoded, mirroring the paper's setup):
//!
//! | idx | column          | structure                                              |
//! |-----|-----------------|--------------------------------------------------------|
//! | 0   | quantity        | uniform 1..=50                                          |
//! | 1   | extended price  | ≈ quantity × unit price (correlated with quantity)      |
//! | 2   | discount        | 0..=10 (percent)                                        |
//! | 3   | tax             | 0..=8 (percent)                                         |
//! | 4   | ship mode       | 7 dictionary-encoded values                             |
//! | 5   | ship date       | days 0..2555 (7 years), uniform                         |
//! | 6   | commit date     | ship date ± 45 days (correlated)                        |
//! | 7   | receipt date    | ship date + 1..30 days (tightly correlated)             |
//!
//! The workload has five query types modeled on common TPC-H filters, e.g.
//! "how many high-priced orders in the past year used a significant
//! discount?" and "how many shipments by air had below ten items?". Queries
//! skew toward recent ship dates.

use crate::queries::{count_query, range_at, recency_biased_start, sorted_column};
use crate::rng::StdRng;
use crate::rng::{Rng, SeedableRng};
use tsunami_core::{Dataset, Value, Workload};

/// Column names, index-aligned with the generated dataset.
pub const COLUMNS: [&str; 8] = [
    "quantity",
    "extendedprice",
    "discount",
    "tax",
    "shipmode",
    "shipdate",
    "commitdate",
    "receiptdate",
];

/// Number of days in the generated date domain.
pub const DATE_DOMAIN: u64 = 2555;

/// Generates a `lineitem`-like dataset with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut quantity = Vec::with_capacity(rows);
    let mut price = Vec::with_capacity(rows);
    let mut discount = Vec::with_capacity(rows);
    let mut tax = Vec::with_capacity(rows);
    let mut shipmode = Vec::with_capacity(rows);
    let mut shipdate = Vec::with_capacity(rows);
    let mut commitdate = Vec::with_capacity(rows);
    let mut receiptdate = Vec::with_capacity(rows);
    for _ in 0..rows {
        let q: u64 = rng.gen_range(1..=50);
        // Unit price in cents, so extended price is correlated with quantity.
        let unit_price: u64 = rng.gen_range(90_000..110_000);
        quantity.push(q);
        price.push(q * unit_price / 100);
        discount.push(rng.gen_range(0..=10));
        tax.push(rng.gen_range(0..=8));
        shipmode.push(rng.gen_range(0..7));
        let sd: u64 = rng.gen_range(0..DATE_DOMAIN);
        shipdate.push(sd);
        commitdate
            .push((sd as i64 + rng.gen_range(-45i64..=45)).clamp(0, DATE_DOMAIN as i64 - 1) as u64);
        receiptdate.push((sd + rng.gen_range(1..=30u64)).min(DATE_DOMAIN - 1));
    }
    Dataset::from_columns(vec![
        quantity,
        price,
        discount,
        tax,
        shipmode,
        shipdate,
        commitdate,
        receiptdate,
    ])
    .expect("valid tpch dataset")
}

/// Generates the TPC-H-like workload: five query types, `queries_per_type`
/// queries each.
pub fn workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    build_workload(data, queries_per_type, seed, false)
}

/// Generates the *shifted* workload used by the adaptability experiment
/// (Fig 9a): five new query types with different filtered dimensions and
/// selectivities.
pub fn shifted_workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    build_workload(data, queries_per_type, seed ^ 0x5817F7, true)
}

fn build_workload(data: &Dataset, per_type: usize, seed: u64, shifted: bool) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let sorted: Vec<Vec<Value>> = (0..data.num_dims())
        .map(|d| sorted_column(data.column(d)))
        .collect();
    let mut queries = Vec::with_capacity(5 * per_type);

    for _ in 0..per_type {
        if !shifted {
            // Type 1: high-priced recent orders with a significant discount.
            let start = recency_biased_start(&mut rng, 0.9, 0.15);
            let (d_lo, d_hi) = (7, 10);
            let (p_lo, p_hi) = range_at(&sorted[1], 0.8 + 0.19 * rng.gen::<f64>(), 0.05);
            let (s_lo, s_hi) = range_at(&sorted[5], start.min(0.97), 0.03);
            queries.push(count_query(&[
                (1, p_lo, p_hi),
                (2, d_lo, d_hi),
                (5, s_lo, s_hi),
            ]));

            // Type 2: shipments by air (one ship mode) with below ten items.
            let mode = rng.gen_range(0..7);
            queries.push(count_query(&[(4, mode, mode), (0, 1, 9)]));

            // Type 3: narrow receipt-date window with tax filter (recent skew).
            let start = recency_biased_start(&mut rng, 0.8, 0.2);
            let (r_lo, r_hi) = range_at(&sorted[7], start.min(0.98), 0.015);
            queries.push(count_query(&[(7, r_lo, r_hi), (3, 0, 4)]));

            // Type 4: quantity + discount + ship date over a season.
            let start = rng.gen::<f64>() * 0.9;
            let (s_lo, s_hi) = range_at(&sorted[5], start, 0.08);
            queries.push(count_query(&[(0, 25, 50), (2, 5, 10), (5, s_lo, s_hi)]));

            // Type 5: commit-vs-ship window, broad price band.
            let start = rng.gen::<f64>() * 0.95;
            let (c_lo, c_hi) = range_at(&sorted[6], start, 0.04);
            let (p_lo, p_hi) = range_at(&sorted[1], rng.gen::<f64>() * 0.5, 0.3);
            queries.push(count_query(&[(6, c_lo, c_hi), (1, p_lo, p_hi)]));
        } else {
            // Five new query types for the workload-shift experiment: they
            // filter different dimensions with different selectivities.
            let (t_lo, t_hi) = range_at(&sorted[3], rng.gen::<f64>() * 0.6, 0.2);
            queries.push(count_query(&[(3, t_lo, t_hi), (0, 1, 5)]));

            let (q_lo, q_hi) = (40, 50);
            let (p_lo, p_hi) = range_at(&sorted[1], 0.01 * rng.gen::<f64>(), 0.04);
            queries.push(count_query(&[(0, q_lo, q_hi), (1, p_lo, p_hi)]));

            let start = 0.3 * rng.gen::<f64>();
            let (s_lo, s_hi) = range_at(&sorted[5], start, 0.02);
            queries.push(count_query(&[(5, s_lo, s_hi), (4, 0, 2)]));

            let (c_lo, c_hi) = range_at(&sorted[6], 0.5 + 0.4 * rng.gen::<f64>(), 0.01);
            queries.push(count_query(&[(6, c_lo, c_hi), (2, 0, 2), (3, 5, 8)]));

            let (r_lo, r_hi) = range_at(&sorted[7], rng.gen::<f64>() * 0.5, 0.1);
            let (p_lo, p_hi) = range_at(&sorted[1], 0.45 + 0.1 * rng.gen::<f64>(), 0.08);
            queries.push(count_query(&[(7, r_lo, r_hi), (1, p_lo, p_hi)]));
        }
    }
    Workload::new(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_documented_shape_and_correlations() {
        let ds = generate(20_000, 1);
        assert_eq!(ds.num_dims(), COLUMNS.len());
        assert_eq!(ds.len(), 20_000);
        // Price is correlated with quantity (ratio bounded by unit price range).
        for r in (0..ds.len()).step_by(977) {
            let q = ds.get(r, 0);
            let p = ds.get(r, 1);
            assert!(p >= q * 900 && p <= q * 1100, "row {r}: q={q} p={p}");
        }
        // Receipt date is within 30 days after ship date.
        for r in (0..ds.len()).step_by(977) {
            let s = ds.get(r, 5);
            let rc = ds.get(r, 7);
            assert!(rc >= s && rc <= s + 30 || rc == DATE_DOMAIN - 1);
        }
        // Ship mode has 7 distinct values.
        let (lo, hi) = ds.domain(4).unwrap();
        assert!(lo == 0 && hi == 6);
    }

    #[test]
    fn workload_has_five_types_and_reasonable_selectivity() {
        let ds = generate(30_000, 2);
        let w = workload(&ds, 20, 3);
        assert_eq!(w.len(), 100);
        let groups = w.group_by_filtered_dims();
        assert!(
            groups.len() >= 4,
            "expected >=4 distinct filter-dim sets, got {}",
            groups.len()
        );
        let avg = w.average_selectivity(&ds);
        assert!(avg > 0.0001 && avg < 0.1, "avg selectivity {avg}");
    }

    #[test]
    fn workload_skews_toward_recent_ship_dates() {
        let ds = generate(20_000, 4);
        let w = workload(&ds, 40, 5);
        let ship_preds: Vec<_> = w
            .queries()
            .iter()
            .filter_map(|q| q.predicate_on(5).copied())
            .collect();
        assert!(!ship_preds.is_empty());
        let recent = ship_preds
            .iter()
            .filter(|p| p.lo >= DATE_DOMAIN * 7 / 10)
            .count();
        assert!(
            recent * 2 > ship_preds.len(),
            "recent {recent} of {}",
            ship_preds.len()
        );
    }

    #[test]
    fn shifted_workload_differs_from_original() {
        let ds = generate(10_000, 6);
        let original = workload(&ds, 10, 7);
        let shifted = shifted_workload(&ds, 10, 7);
        assert_eq!(shifted.len(), 50);
        // The filtered-dimension signature of the shifted workload differs.
        let sig = |w: &Workload| {
            let mut dims: Vec<Vec<usize>> = w.queries().iter().map(|q| q.filtered_dims()).collect();
            dims.sort();
            dims.dedup();
            dims
        };
        assert_ne!(sig(&original), sig(&shifted));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(generate(1_000, 9), generate(1_000, 9));
    }
}
