//! A tiny self-contained pseudo-random number generator with a `rand`-style
//! API surface.
//!
//! The build container has no crates.io access, so the `rand` crate cannot be
//! fetched; this module provides the subset of its API the workload
//! generators use (`StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool`)
//! on top of the SplitMix64 mixer. The streams differ from `rand`'s StdRng,
//! which only changes the concrete synthetic data, not its distributional
//! structure; every generator remains fully deterministic per seed.

/// Seeding interface mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface mirroring the parts of `rand::Rng` the workload
/// generators use.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (here: `f64` in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self.next_u64())
    }

    /// A uniform sample from a range (`lo..hi` or `lo..=hi`). The output
    /// type is an independent parameter (as in `rand`) so integer literals
    /// in the range infer from the expected result type.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

/// Types samplable uniformly from raw generator output (mirrors
/// `rand::distributions::Standard`).
pub trait Standard {
    /// Converts 64 uniform bits into a uniform value of `Self`.
    fn from_rng(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_rng(bits: u64) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_rng(bits: u64) -> Self {
        bits
    }
}

/// Ranges that can be sampled uniformly into `T` (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Maps 64 uniform bits onto the range.
    fn sample(self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, bits: u64) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (bits as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, bits: u64) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (bits as u128 % width) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, u32, i64, u64, usize);

/// The workspace's standard generator: SplitMix64.
///
/// Small state, excellent mixing, and no external dependencies; statistical
/// quality is more than sufficient for generating benchmark datasets.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Namespace mirror of `rand::rngs` so call sites can keep the familiar
/// `use crate::rng::rngs::StdRng` shape if they prefer it.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&v));
            let v = rng.gen_range(0..100);
            assert!((0..100).contains(&v));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_varied() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut low = 0;
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            if v < 0.5 {
                low += 1;
            }
        }
        // Roughly balanced halves.
        assert!((300..700).contains(&low), "low half count: {low}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..1_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((100..300).contains(&hits), "hits: {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
