//! A NYC-Taxi-like dataset and workload (§6.2).
//!
//! Dimensions:
//!
//! | idx | column           | structure                                            |
//! |-----|------------------|------------------------------------------------------|
//! | 0   | pickup time      | minutes over two years, uniform                      |
//! | 1   | dropoff time     | pickup + trip duration (tightly correlated)          |
//! | 2   | trip distance    | 1/100 miles, heavy-tailed (many short trips)         |
//! | 3   | fare             | ≈ linear in distance (correlated)                    |
//! | 4   | tip              | ≈ fraction of fare (correlated)                      |
//! | 5   | total amount     | fare + tip + fees (tightly correlated)               |
//! | 6   | passenger count  | 1..=6, heavily skewed toward 1                       |
//! | 7   | pickup zone      | 0..=262 dictionary-encoded                           |
//! | 8   | dropoff zone     | 0..=262, correlated with pickup for short trips      |
//!
//! Six query types: queries skew over time (recent data), passenger count
//! (types about very low and very high counts) and trip distance (more
//! queries about very short trips). Examples: "how common were
//! single-passenger trips between two particular parts of Manhattan?",
//! "what month saw the most short-distance trips?".

use crate::queries::{count_query, range_at, recency_biased_start, sorted_column};
use crate::rng::StdRng;
use crate::rng::{Rng, SeedableRng};
use tsunami_core::{Dataset, Value, Workload};

/// Column names, index-aligned with the generated dataset.
pub const COLUMNS: [&str; 9] = [
    "pickup_time",
    "dropoff_time",
    "trip_distance",
    "fare",
    "tip",
    "total",
    "passenger_count",
    "pickup_zone",
    "dropoff_zone",
];

/// Minutes in the two-year time domain.
pub const TIME_DOMAIN: u64 = 2 * 365 * 24 * 60;

/// Generates a taxi-trip-like dataset with `rows` rows.
pub fn generate(rows: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cols: Vec<Vec<Value>> = (0..9).map(|_| Vec::with_capacity(rows)).collect();
    for _ in 0..rows {
        let pickup: u64 = rng.gen_range(0..TIME_DOMAIN);
        // Heavy-tailed trip distance in 1/100 miles: mostly short trips.
        let r: f64 = rng.gen::<f64>();
        let distance = (100.0 + 4_900.0 * r * r * r) as u64;
        let duration = 3 + distance / 30 + rng.gen_range(0..20u64);
        let fare = 250 + distance * 25 / 100 + rng.gen_range(0..200u64);
        let tip = fare * rng.gen_range(0..=30u64) / 100;
        let total = fare + tip + rng.gen_range(0..300u64);
        let passengers = match rng.gen_range(0..100) {
            0..=69 => 1,
            70..=84 => 2,
            85..=92 => 3,
            93..=96 => 4,
            97..=98 => 5,
            _ => 6,
        };
        let pickup_zone = rng.gen_range(0..263u64);
        let dropoff_zone = if distance < 500 {
            // Short trips stay near the pickup zone.
            (pickup_zone + rng.gen_range(0..20u64)) % 263
        } else {
            rng.gen_range(0..263u64)
        };
        let row = [
            pickup,
            (pickup + duration).min(TIME_DOMAIN + 10_000),
            distance,
            fare,
            tip,
            total,
            passengers,
            pickup_zone,
            dropoff_zone,
        ];
        for (c, v) in row.into_iter().enumerate() {
            cols[c].push(v);
        }
    }
    Dataset::from_columns(cols).expect("valid taxi dataset")
}

/// Generates the taxi workload: six query types, `queries_per_type` each.
pub fn workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let sorted: Vec<Vec<Value>> = (0..data.num_dims())
        .map(|d| sorted_column(data.column(d)))
        .collect();
    let mut queries = Vec::with_capacity(6 * queries_per_type);
    for _ in 0..queries_per_type {
        // Type 1: single-passenger trips between two particular zone bands.
        let pz = rng.gen_range(0..250u64);
        let dz = rng.gen_range(0..250u64);
        queries.push(count_query(&[
            (6, 1, 1),
            (7, pz, pz + 12),
            (8, dz, dz + 12),
        ]));

        // Type 2: short-distance trips in a recent month.
        let start = recency_biased_start(&mut rng, 0.85, 0.12);
        let (t_lo, t_hi) = range_at(&sorted[0], start.min(0.96), 0.04);
        queries.push(count_query(&[(0, t_lo, t_hi), (2, 0, 400)]));

        // Type 3: very high passenger counts over a broad recent window.
        let start = recency_biased_start(&mut rng, 0.8, 0.25);
        let (t_lo, t_hi) = range_at(&sorted[0], start.min(0.9), 0.1);
        queries.push(count_query(&[(0, t_lo, t_hi), (6, 5, 6)]));

        // Type 4: expensive trips (high fare, decent tip).
        let (f_lo, f_hi) = range_at(&sorted[3], 0.9 + 0.09 * rng.gen::<f64>(), 0.04);
        let (tip_lo, tip_hi) = range_at(&sorted[4], 0.7, 0.3);
        queries.push(count_query(&[(3, f_lo, f_hi), (4, tip_lo, tip_hi)]));

        // Type 5: narrow dropoff-time window (rush hour style), any distance.
        let start = recency_biased_start(&mut rng, 0.75, 0.2);
        let (d_lo, d_hi) = range_at(&sorted[1], start.min(0.97), 0.015);
        queries.push(count_query(&[(1, d_lo, d_hi)]));

        // Type 6: medium-distance trips with a particular total band.
        let (dist_lo, dist_hi) = range_at(&sorted[2], 0.5 + 0.3 * rng.gen::<f64>(), 0.08);
        let (tot_lo, tot_hi) = range_at(&sorted[5], rng.gen::<f64>() * 0.6, 0.1);
        queries.push(count_query(&[(2, dist_lo, dist_hi), (5, tot_lo, tot_hi)]));
    }
    Workload::new(queries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_shape_and_correlations_hold() {
        let ds = generate(20_000, 11);
        assert_eq!(ds.num_dims(), COLUMNS.len());
        // Dropoff after pickup; fare grows with distance.
        for r in (0..ds.len()).step_by(991) {
            assert!(ds.get(r, 1) >= ds.get(r, 0));
            let distance = ds.get(r, 2);
            let fare = ds.get(r, 3);
            assert!(fare >= 250 + distance / 4 && fare <= 450 + distance / 2);
            assert!(ds.get(r, 5) >= fare);
            assert!((1..=6).contains(&ds.get(r, 6)));
        }
    }

    #[test]
    fn trip_distances_are_heavy_tailed() {
        let ds = generate(20_000, 12);
        let short = ds.column(2).iter().filter(|&&d| d < 1_000).count();
        assert!(short * 2 > ds.len(), "most trips should be short: {short}");
    }

    #[test]
    fn passenger_counts_are_skewed_toward_one() {
        let ds = generate(20_000, 13);
        let singles = ds.column(6).iter().filter(|&&p| p == 1).count();
        assert!(singles as f64 / ds.len() as f64 > 0.6);
    }

    #[test]
    fn workload_has_six_types_and_time_skew() {
        let ds = generate(30_000, 14);
        let w = workload(&ds, 15, 15);
        assert_eq!(w.len(), 90);
        assert!(w.group_by_filtered_dims().len() >= 5);
        // Pickup-time filters skew toward recent values.
        let preds: Vec<_> = w
            .queries()
            .iter()
            .filter_map(|q| q.predicate_on(0).copied())
            .collect();
        let recent = preds.iter().filter(|p| p.lo > TIME_DOMAIN * 6 / 10).count();
        assert!(recent * 2 > preds.len());
        let avg = w.average_selectivity(&ds);
        assert!(avg < 0.15, "avg selectivity {avg}");
    }
}
