//! Synthetic datasets for the scalability experiments (Fig 10 and Fig 11b).
//!
//! Two families of d-dimensional datasets (§6.5):
//!
//! * **Uncorrelated** — every dimension sampled i.i.d. uniformly.
//! * **Correlated** — half of the dimensions are uniform; each dimension in
//!   the other half is linearly correlated with one of the first half, either
//!   strongly (±1% error) or loosely (±10% error).
//!
//! The accompanying workload has four query types; earlier dimensions are
//! filtered with exponentially higher selectivity than later ones, and the
//! queries are skewed over the first four dimensions.

use crate::queries::{count_query, range_at, sorted_column};
use crate::rng::StdRng;
use crate::rng::{Rng, SeedableRng};
use tsunami_core::{Dataset, Value, Workload};

/// Domain size of every synthetic dimension.
pub const DOMAIN: u64 = 1_000_000;

/// Generates an uncorrelated d-dimensional uniform dataset.
pub fn uncorrelated(rows: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let cols: Vec<Vec<Value>> = (0..dims)
        .map(|_| (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect())
        .collect();
    Dataset::from_columns(cols).expect("valid synthetic dataset")
}

/// Generates a correlated d-dimensional dataset: dimensions `0..dims/2` are
/// uniform; dimension `dims/2 + i` is linearly correlated with dimension `i`,
/// strongly (±1%) for even `i` and loosely (±10%) for odd `i`.
pub fn correlated(rows: usize, dims: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let half = dims.div_ceil(2);
    let mut cols: Vec<Vec<Value>> = (0..half)
        .map(|_| (0..rows).map(|_| rng.gen_range(0..DOMAIN)).collect())
        .collect();
    for i in 0..dims - half {
        let src = i % half;
        let error_frac = if i % 2 == 0 { 0.01 } else { 0.10 };
        let max_err = (DOMAIN as f64 * error_frac) as i64;
        let col: Vec<Value> = (0..rows)
            .map(|r| {
                let base = cols[src][r] as i64;
                let err = rng.gen_range(-max_err..=max_err);
                (base + err).clamp(0, DOMAIN as i64 - 1) as Value
            })
            .collect();
        cols.push(col);
    }
    Dataset::from_columns(cols).expect("valid synthetic dataset")
}

/// Generates the synthetic workload: four query types with exponentially
/// decreasing selectivity by dimension index and recency-style skew over the
/// first (up to) four dimensions.
pub fn workload(data: &Dataset, queries_per_type: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5711);
    let d = data.num_dims();
    let sorted: Vec<Vec<Value>> = (0..d).map(|dim| sorted_column(data.column(dim))).collect();

    // Each query type filters a distinct pair of dimensions.
    let type_dims: Vec<(usize, usize)> = (0..4)
        .map(|t| (t % d, (t + d / 2).max(t + 1) % d))
        .collect();

    let mut queries = Vec::with_capacity(4 * queries_per_type);
    for (t, &(d0, d1)) in type_dims.iter().enumerate() {
        // Earlier dimensions are filtered with exponentially higher
        // selectivity than later dimensions.
        let sel0 = (0.02 / (1 << d0.min(4)) as f64).max(0.003);
        let sel1 = (0.4 / (1 << (d1.min(4))) as f64).max(0.05);
        for _ in 0..queries_per_type {
            // Skew: query types concentrate on the upper part of the first
            // four dimensions.
            let start0 = if d0 < 4 {
                0.7 + 0.3 * rng.gen::<f64>() * (1.0 - sel0)
            } else {
                rng.gen::<f64>()
            };
            let start1 = rng.gen::<f64>() * (1.0 - sel1);
            let (lo0, hi0) = range_at(&sorted[d0], start0.min(0.999), sel0);
            let (lo1, hi1) = range_at(&sorted[d1], start1, sel1);
            if d0 == d1 {
                queries.push(count_query(&[(d0, lo0, hi0)]));
            } else {
                queries.push(count_query(&[(d0, lo0, hi0), (d1, lo1, hi1)]));
            }
        }
        let _ = t;
    }
    Workload::new(queries)
}

/// Scales every query's filter ranges around their centers so the workload's
/// average selectivity changes by roughly `factor` in each filtered dimension
/// (used for the selectivity sweep of Fig 11b).
pub fn scale_selectivity(workload: &Workload, factor: f64) -> Workload {
    let factor = factor.max(0.0);
    Workload::new(
        workload
            .queries()
            .iter()
            .map(|q| {
                let preds = q
                    .predicates()
                    .iter()
                    .map(|p| {
                        let center = (p.lo as f64 + p.hi as f64) / 2.0;
                        let half_width = (p.hi - p.lo) as f64 / 2.0 * factor;
                        let lo = (center - half_width).max(0.0) as Value;
                        let hi = (center + half_width) as Value;
                        (p.dim, lo, hi.max(lo))
                    })
                    .collect::<Vec<_>>();
                count_query(&preds)
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncorrelated_dataset_has_requested_shape() {
        let ds = uncorrelated(5_000, 6, 1);
        assert_eq!(ds.len(), 5_000);
        assert_eq!(ds.num_dims(), 6);
        let (lo, hi) = ds.domain(3).unwrap();
        assert!(hi <= DOMAIN && hi > DOMAIN / 2 && lo < DOMAIN / 10);
    }

    #[test]
    fn correlated_dataset_actually_correlates_pairs() {
        let ds = correlated(5_000, 8, 2);
        assert_eq!(ds.num_dims(), 8);
        // dim 4 is strongly correlated with dim 0.
        let c0 = ds.column(0);
        let c4 = ds.column(4);
        let max_dev = c0
            .iter()
            .zip(c4)
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .max()
            .unwrap();
        assert!(
            max_dev <= (DOMAIN as f64 * 0.011) as u64,
            "deviation {max_dev}"
        );
        // dim 5 is loosely correlated with dim 1.
        let dev5: u64 = ds
            .column(1)
            .iter()
            .zip(ds.column(5))
            .map(|(&a, &b)| (a as i64 - b as i64).unsigned_abs())
            .max()
            .unwrap();
        assert!(dev5 <= (DOMAIN as f64 * 0.11) as u64);
        assert!(dev5 > (DOMAIN as f64 * 0.02) as u64);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        assert_eq!(correlated(500, 4, 7), correlated(500, 4, 7));
        assert_ne!(correlated(500, 4, 7), correlated(500, 4, 8));
    }

    #[test]
    fn workload_has_four_types_and_sane_selectivities() {
        let ds = correlated(20_000, 8, 3);
        let w = workload(&ds, 25, 4);
        assert_eq!(w.len(), 100);
        let avg = w.average_selectivity(&ds);
        assert!(avg > 0.00002 && avg < 0.3, "average selectivity {avg}");
        // Queries are well-formed over existing dimensions.
        assert!(w
            .queries()
            .iter()
            .all(|q| q.filtered_dims().iter().all(|&d| d < 8)));
    }

    #[test]
    fn workload_is_skewed_toward_high_values_of_early_dims() {
        let ds = correlated(10_000, 8, 5);
        let w = workload(&ds, 50, 6);
        // Queries filtering dim 0 should mostly start in the top third.
        let (dom_lo, dom_hi) = ds.domain(0).unwrap();
        let cutoff = dom_lo + (dom_hi - dom_lo) / 2;
        let dim0_preds: Vec<_> = w
            .queries()
            .iter()
            .filter_map(|q| q.predicate_on(0).copied())
            .collect();
        assert!(!dim0_preds.is_empty());
        let high = dim0_preds.iter().filter(|p| p.lo >= cutoff).count();
        assert!(high * 2 > dim0_preds.len(), "{high}/{}", dim0_preds.len());
    }

    #[test]
    fn scale_selectivity_changes_range_widths() {
        let ds = correlated(5_000, 4, 9);
        let w = workload(&ds, 10, 10);
        let wider = scale_selectivity(&w, 4.0);
        let narrower = scale_selectivity(&w, 0.25);
        let width = |wl: &Workload| -> f64 {
            wl.queries()
                .iter()
                .flat_map(|q| q.predicates().iter().map(|p| (p.hi - p.lo) as f64))
                .sum::<f64>()
        };
        assert!(width(&wider) > width(&w) * 2.0);
        assert!(width(&narrower) < width(&w));
        assert_eq!(wider.len(), w.len());
    }
}
