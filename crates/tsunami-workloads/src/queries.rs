//! Helpers for generating range queries with controlled selectivity and skew.

use crate::rng::Rng;
use crate::rng::StdRng;
use tsunami_core::{Predicate, Query, Value};

/// Picks an inclusive range over a column that covers approximately
/// `selectivity` of the rows, with the range's *starting* position drawn at
/// `start_quantile` of the value distribution.
///
/// `sorted` must be a sorted copy (or sorted sample) of the column.
pub fn range_at(sorted: &[Value], start_quantile: f64, selectivity: f64) -> (Value, Value) {
    if sorted.is_empty() {
        return (0, 0);
    }
    let n = sorted.len();
    let sel = selectivity.clamp(0.0, 1.0);
    let start = (start_quantile.clamp(0.0, 1.0) * (n - 1) as f64) as usize;
    let start = start.min(n - 1);
    let end = ((start as f64 + sel * n as f64) as usize).min(n - 1);
    let lo = sorted[start];
    let hi = sorted[end].max(lo);
    (lo, hi)
}

/// Draws a start quantile that is skewed toward the *top* of the domain
/// (recent data): with probability `recency`, the start is drawn from the
/// top `top_fraction` of the distribution.
pub fn recency_biased_start(rng: &mut StdRng, recency: f64, top_fraction: f64) -> f64 {
    if rng.gen_bool(recency.clamp(0.0, 1.0)) {
        1.0 - top_fraction * rng.gen::<f64>()
    } else {
        rng.gen::<f64>()
    }
}

/// Builds a `COUNT(*)` query from `(dim, lo, hi)` triples.
pub fn count_query(preds: &[(usize, Value, Value)]) -> Query {
    Query::count(
        preds
            .iter()
            .map(|&(dim, lo, hi)| {
                Predicate::range(dim, lo.min(hi), lo.max(hi)).expect("valid range")
            })
            .collect(),
    )
    .expect("valid query")
}

/// Returns a sorted copy of a column (used to pick quantile-based ranges).
pub fn sorted_column(col: &[Value]) -> Vec<Value> {
    let mut v = col.to_vec();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SeedableRng;

    #[test]
    fn range_at_hits_requested_selectivity_on_uniform_data() {
        let sorted: Vec<Value> = (0..10_000).collect();
        let (lo, hi) = range_at(&sorted, 0.2, 0.1);
        let covered = sorted.iter().filter(|&&v| v >= lo && v <= hi).count();
        let frac = covered as f64 / sorted.len() as f64;
        assert!((frac - 0.1).abs() < 0.02, "got selectivity {frac}");
    }

    #[test]
    fn range_at_clamps_at_domain_end() {
        let sorted: Vec<Value> = (0..1000).collect();
        let (lo, hi) = range_at(&sorted, 0.95, 0.2);
        assert!(hi >= lo);
        assert_eq!(hi, 999);
        assert_eq!(range_at(&[], 0.5, 0.5), (0, 0));
    }

    #[test]
    fn recency_bias_concentrates_starts_near_the_top() {
        let mut rng = StdRng::seed_from_u64(7);
        let starts: Vec<f64> = (0..2000)
            .map(|_| recency_biased_start(&mut rng, 0.9, 0.1))
            .collect();
        let recent = starts.iter().filter(|&&s| s >= 0.9).count();
        assert!(recent as f64 / starts.len() as f64 > 0.8);
    }

    #[test]
    fn count_query_normalizes_reversed_bounds() {
        let q = count_query(&[(0, 50, 10), (2, 3, 3)]);
        let p = q.predicate_on(0).unwrap();
        assert_eq!((p.lo, p.hi), (10, 50));
        assert_eq!(q.num_filtered_dims(), 2);
    }

    #[test]
    fn sorted_column_sorts() {
        assert_eq!(sorted_column(&[3, 1, 2]), vec![1, 2, 3]);
    }
}
