//! Store-level encoding policy: when block encoding runs and with which
//! knobs.
//!
//! The block formats and the per-block chooser live in
//! [`tsunami_core::encode`]; this module only decides *whether* a store
//! encodes at all and how aggressively, controlled by environment variables
//! so benchmarks and deployments can flip encoding without code changes:
//!
//! | variable | default | meaning |
//! |---|---|---|
//! | `TSUNAMI_ENCODE` | `1` | `0`/`off`/`false` disables block encoding entirely |
//! | `TSUNAMI_ENCODE_MIN_BLOCK` | `1` | minimum number of full blocks before encoding kicks in |
//! | `TSUNAMI_ENCODE_MAX_FOR_BITS` | `31` | FOR deltas needing more bits fall back to Dict/Plain |
//! | `TSUNAMI_ENCODE_DICT_MAX` | `256` | max distinct values per block for dictionary coding |

use tsunami_core::EncodeOptions;

/// Whether and how a [`crate::ColumnStore`] encodes its blocks.
#[derive(Debug, Clone, Copy)]
pub struct EncodePolicy {
    /// Master switch; when false, `encode_blocks` is a no-op and every
    /// column stays a plain `Vec<u64>`.
    pub enabled: bool,
    /// Stores with fewer than this many full blocks skip encoding — tiny
    /// tables gain nothing and tests sometimes want guaranteed-plain stores.
    pub min_blocks: usize,
    /// Per-block format knobs passed through to the chooser.
    pub opts: EncodeOptions,
}

impl Default for EncodePolicy {
    fn default() -> Self {
        Self {
            enabled: true,
            min_blocks: 1,
            opts: EncodeOptions::default(),
        }
    }
}

impl EncodePolicy {
    /// The policy configured by the `TSUNAMI_ENCODE*` environment variables
    /// (see the module table), falling back to defaults on unset or
    /// unparsable values.
    pub fn from_env() -> Self {
        let mut p = Self::default();
        if let Ok(v) = std::env::var("TSUNAMI_ENCODE") {
            let v = v.trim().to_ascii_lowercase();
            p.enabled = !matches!(v.as_str(), "0" | "off" | "false" | "no");
        }
        if let Some(v) = parse_env("TSUNAMI_ENCODE_MIN_BLOCK") {
            p.min_blocks = v;
        }
        if let Some(v) = parse_env("TSUNAMI_ENCODE_MAX_FOR_BITS") {
            p.opts.max_for_bits = v as u32;
        }
        if let Some(v) = parse_env("TSUNAMI_ENCODE_DICT_MAX") {
            p.opts.dict_max = v;
        }
        p
    }

    /// A policy that never encodes (plain `Vec<u64>` storage throughout).
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

fn parse_env(name: &str) -> Option<usize> {
    std::env::var(name).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_enable_encoding() {
        let p = EncodePolicy::default();
        assert!(p.enabled);
        assert_eq!(p.min_blocks, 1);
        assert!(!EncodePolicy::disabled().enabled);
    }
}
