//! The clustered column store: permuted physical storage plus range scans
//! with the paper's exact-range optimization.

use std::cell::Cell;
use std::ops::Range;

use crate::column::Column;
use tsunami_core::{AggAccumulator, AggResult, Dataset, Query, Value};

/// Counters accumulated while executing one query against the store.
///
/// These mirror the features of the cost model (§5.3.1): the number of
/// contiguous physical ranges visited and the number of points scanned.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounters {
    /// Number of contiguous ranges scanned.
    pub ranges: usize,
    /// Number of points visited (whether or not they matched).
    pub points: usize,
    /// Number of points that matched every predicate.
    pub matched: usize,
}

/// A column-oriented physical table.
///
/// Indexes are *clustered*: at build time each index computes a permutation
/// of the rows (its sort order / cell order) and the store is reordered once
/// with [`ColumnStore::permute`]. Queries then scan contiguous row ranges.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    columns: Vec<Column>,
    len: usize,
    scan_counters: Cell<ScanCounters>,
}

impl ColumnStore {
    /// Builds a store from a logical dataset (copying the data).
    pub fn from_dataset(data: &Dataset) -> Self {
        let columns = (0..data.num_dims())
            .map(|d| Column::new(data.column(d).to_vec()))
            .collect();
        Self {
            columns,
            len: data.len(),
            scan_counters: Cell::new(ScanCounters::default()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (dimensions).
    pub fn num_dims(&self) -> usize {
        self.columns.len()
    }

    /// The column for a dimension.
    pub fn column(&self, dim: usize) -> &Column {
        &self.columns[dim]
    }

    /// Value of row `row` in dimension `dim`.
    #[inline]
    pub fn get(&self, row: usize, dim: usize) -> Value {
        self.columns[dim].get(row)
    }

    /// Physically reorders all columns so that new row `i` holds what was at
    /// row `perm[i]`. This is the "data sorting" phase of index creation.
    pub fn permute(&mut self, perm: &[usize]) {
        assert_eq!(perm.len(), self.len, "permutation length must match row count");
        for c in &mut self.columns {
            c.permute(perm);
        }
    }

    /// Resets the per-query scan counters.
    pub fn reset_counters(&self) {
        self.scan_counters.set(ScanCounters::default());
    }

    /// Returns the counters accumulated since the last reset.
    pub fn counters(&self) -> ScanCounters {
        self.scan_counters.get()
    }

    /// Scans a contiguous row range, adding matching rows to the accumulator.
    ///
    /// `exact` enables the paper's scan-time optimization (§6.1): when the
    /// caller guarantees that *every* row in the range matches the query
    /// filter, per-value predicate checks are skipped entirely. For `COUNT`
    /// this avoids touching the data at all; for other aggregations only the
    /// aggregation input column is read.
    pub fn scan_range(&self, range: Range<usize>, query: &Query, exact: bool, acc: &mut AggAccumulator) {
        let range = range.start.min(self.len)..range.end.min(self.len);
        if range.is_empty() {
            return;
        }
        let mut counters = self.scan_counters.get();
        counters.ranges += 1;
        counters.points += range.len();

        let agg_dim = acc.aggregation().input_dim();
        if exact {
            counters.matched += range.len();
            match agg_dim {
                None => acc.add_bulk(range.len() as u64, 0),
                Some(d) => {
                    let sum = self.columns[d].sum_range(range.clone());
                    // MIN/MAX still need per-row values; fall through for those.
                    match acc.aggregation() {
                        tsunami_core::Aggregation::Min(_) | tsunami_core::Aggregation::Max(_) => {
                            for row in range {
                                acc.add(self.columns[d].get(row));
                            }
                        }
                        _ => acc.add_bulk(range.len() as u64, sum),
                    }
                }
            }
            self.scan_counters.set(counters);
            return;
        }

        let preds = query.predicates();
        for row in range {
            let mut ok = true;
            for p in preds {
                if !p.matches(self.columns[p.dim].get(row)) {
                    ok = false;
                    break;
                }
            }
            if ok {
                counters.matched += 1;
                acc.add(agg_dim.map_or(0, |d| self.columns[d].get(row)));
            }
        }
        self.scan_counters.set(counters);
    }

    /// Convenience: executes a query by scanning the given ranges (with
    /// per-range exactness flags) and returns the final aggregate.
    pub fn execute_ranges<I>(&self, query: &Query, ranges: I) -> AggResult
    where
        I: IntoIterator<Item = (Range<usize>, bool)>,
    {
        let mut acc = AggAccumulator::new(query.aggregation());
        for (r, exact) in ranges {
            self.scan_range(r, query, exact, &mut acc);
        }
        acc.finish()
    }

    /// Executes a query by scanning the entire store (the trivial index).
    pub fn full_scan(&self, query: &Query) -> AggResult {
        self.execute_ranges(query, [(0..self.len, false)])
    }

    /// Size of the stored data in bytes.
    pub fn data_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Aggregation, Predicate};

    fn store() -> ColumnStore {
        // dim0: 0..100, dim1: (0..100)*2
        let ds = Dataset::from_columns(vec![
            (0..100u64).collect(),
            (0..100u64).map(|v| v * 2).collect(),
        ])
        .unwrap();
        ColumnStore::from_dataset(&ds)
    }

    #[test]
    fn full_scan_matches_reference() {
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(10));
    }

    #[test]
    fn scan_counters_track_ranges_and_points() {
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        s.reset_counters();
        let res = s.execute_ranges(&q, [(0..50, false), (50..100, false)]);
        assert_eq!(res, AggResult::Count(10));
        let c = s.counters();
        assert_eq!(c.ranges, 2);
        assert_eq!(c.points, 100);
        assert_eq!(c.matched, 10);
    }

    #[test]
    fn exact_range_skips_filter_checks() {
        let s = store();
        // Query filter actually only matches rows 0..10, but we claim the
        // whole range 0..20 is exact: the store must trust us and count 20.
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let res = s.execute_ranges(&q, [(0..20, true)]);
        assert_eq!(res, AggResult::Count(20));
    }

    #[test]
    fn exact_range_sum_uses_column_sum() {
        let s = store();
        let q = Query::new(vec![Predicate::range(0, 0, 9).unwrap()], Aggregation::Sum(1)).unwrap();
        let res = s.execute_ranges(&q, [(0..10, true)]);
        assert_eq!(res, AggResult::Sum((0..10u128).map(|v| v * 2).sum()));
    }

    #[test]
    fn exact_range_min_max_still_correct() {
        let s = store();
        let q = Query::new(vec![], Aggregation::Max(1)).unwrap();
        let res = s.execute_ranges(&q, [(5..10, true)]);
        assert_eq!(res, AggResult::Max(Some(18)));
        let q = Query::new(vec![], Aggregation::Min(1)).unwrap();
        let res = s.execute_ranges(&q, [(5..10, true)]);
        assert_eq!(res, AggResult::Min(Some(10)));
    }

    #[test]
    fn permute_reorders_rows_consistently() {
        let mut s = store();
        let perm: Vec<usize> = (0..100).rev().collect();
        s.permute(&perm);
        assert_eq!(s.get(0, 0), 99);
        assert_eq!(s.get(0, 1), 198);
        assert_eq!(s.get(99, 0), 0);
        // Query results are unchanged by physical reordering.
        let q = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(10));
    }

    #[test]
    fn out_of_bounds_ranges_are_clamped() {
        let s = store();
        let q = Query::count(vec![]).unwrap();
        let res = s.execute_ranges(&q, [(90..500, false)]);
        assert_eq!(res, AggResult::Count(10));
        let res = s.execute_ranges(&q, [(500..600, false)]);
        assert_eq!(res, AggResult::Count(0));
    }

    #[test]
    fn data_bytes_counts_all_columns() {
        let s = store();
        assert_eq!(s.data_bytes(), 2 * 100 * 8);
        assert_eq!(s.num_dims(), 2);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }
}
