//! The clustered column store: permuted physical storage scanned through the
//! shared vectorized executor (with the paper's exact-range optimization).

use std::ops::Range;

use crate::column::Column;
use crate::encode::EncodePolicy;
use tsunami_core::exec::{self, BlockScratch, ColumnData, ScanPlan, ScanSource, BLOCK_ROWS};
use tsunami_core::{AggAccumulator, AggResult, Dataset, Query, ScanCounters, TombstoneSet, Value};

/// A column-oriented physical table.
///
/// Indexes are *clustered*: at build time each index computes a permutation
/// of the rows (its sort order / cell order) and the store is reordered once
/// with [`ColumnStore::permute`]. Queries then scan contiguous row ranges
/// through the executor in [`tsunami_core::exec`].
///
/// The store holds no per-query mutable state — scan counters are threaded
/// through the executor and returned per call — so a `ColumnStore` is `Sync`
/// and many queries can scan it concurrently.
#[derive(Debug, Clone)]
pub struct ColumnStore {
    columns: Vec<Column>,
    len: usize,
    /// Deletion bitmap: one bit per physical row, set = tombstoned. The
    /// executor ANDs liveness into every selection (see
    /// [`ScanSource::tombstones`]); bits travel with rows through every
    /// permutation and are physically dropped only by
    /// [`ColumnStore::drop_deleted_in`] (compaction).
    tombstones: TombstoneSet,
}

impl ColumnStore {
    /// Builds a store from a logical dataset (copying the data).
    pub fn from_dataset(data: &Dataset) -> Self {
        let columns = (0..data.num_dims())
            .map(|d| Column::new(data.column(d).to_vec()))
            .collect();
        Self {
            columns,
            len: data.len(),
            tombstones: TombstoneSet::new(data.len()),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (dimensions).
    pub fn num_dims(&self) -> usize {
        self.columns.len()
    }

    /// The column for a dimension.
    pub fn column(&self, dim: usize) -> &Column {
        &self.columns[dim]
    }

    /// Value of row `row` in dimension `dim`.
    #[inline]
    pub fn get(&self, row: usize, dim: usize) -> Value {
        self.columns[dim].get(row)
    }

    /// Physically reorders all columns so that new row `i` holds what was at
    /// row `perm[i]`. This is the "data sorting" phase of index creation.
    pub fn permute(&mut self, perm: &[usize]) {
        assert_eq!(
            perm.len(),
            self.len,
            "permutation length must match row count"
        );
        for c in &mut self.columns {
            c.permute(perm);
        }
        self.tombstones = self.tombstones.permuted(perm);
    }

    /// Appends a dataset's rows at the end of the store (the *append
    /// region*). The new rows keep the dataset's order; the owning index is
    /// expected to graft them into place afterwards with
    /// [`ColumnStore::permute`] / [`ColumnStore::permute_range`] (or leave
    /// them at the tail, for layouts where position is irrelevant). Column
    /// min/max bounds are widened to cover the new values.
    pub fn append_dataset(&mut self, data: &Dataset) {
        assert_eq!(
            data.num_dims(),
            self.num_dims(),
            "appended rows must match the store's width"
        );
        for (dim, c) in self.columns.iter_mut().enumerate() {
            c.append(data.column(dim));
        }
        self.len += data.len();
        self.tombstones.extend_live(data.len());
    }

    /// Stably sorts the rows of `range` by their value in dimension `dim`,
    /// leaving rows outside the range untouched. This is the per-region
    /// ingest primitive for sorted layouts: after appending rows at the tail
    /// of a region's slice, one `sort_range` restores the region's order —
    /// and because the slice is two sorted runs (old rows, then new rows),
    /// the stable sort degenerates to a cheap merge.
    pub fn sort_range(&mut self, range: Range<usize>, dim: usize) {
        assert!(
            range.end <= self.len && dim < self.num_dims(),
            "sort range and dimension must be in bounds"
        );
        let keys = self.columns[dim].decode_range(range.clone());
        let mut perm: Vec<usize> = (0..keys.len()).collect();
        perm.sort_by_key(|&i| keys[i]);
        self.permute_range(range.start, &perm);
    }

    /// Reorders rows *within* `base..base + perm.len()` only: new row
    /// `base + i` holds what was at row `base + perm[i]` (local indices).
    /// Rows outside the range are untouched. This is the incremental
    /// re-optimization counterpart of [`ColumnStore::permute`]: a re-laid-out
    /// region rewrites just its own slice of the store.
    pub fn permute_range(&mut self, base: usize, perm: &[usize]) {
        assert!(
            base + perm.len() <= self.len,
            "range permutation must stay in bounds"
        );
        for c in &mut self.columns {
            c.permute_range(base, perm);
        }
        self.tombstones.permute_range(base, perm);
    }

    /// Copies a contiguous row range back out as a logical [`Dataset`]
    /// (store order). Used by incremental re-optimization to rebuild one
    /// region's grid without keeping a second copy of the data around.
    pub fn slice_dataset(&self, range: Range<usize>) -> Dataset {
        let cols: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|c| c.decode_range(range.clone()))
            .collect();
        Dataset::from_columns(cols).expect("store columns are equal-length")
    }

    /// Encodes every column's accumulated full blocks with the
    /// environment-configured [`EncodePolicy`]. Indexes call this after
    /// build/compaction/re-optimization restructures the store; ingest
    /// appends stay plain until then.
    pub fn encode_blocks(&mut self) {
        self.encode_blocks_with(&EncodePolicy::from_env());
    }

    /// Encodes every column's accumulated full blocks under an explicit
    /// policy. Rows tombstoned *now* are dead at encode time, so each block
    /// records tombstone-aware live bounds: a fully-dead block classifies as
    /// skip, and a block whose extreme rows are dead prunes on the live
    /// extremes — never the stale physical ones. Sound forever, because the
    /// live set only shrinks (deletes accrue; physical mutation re-encodes).
    pub fn encode_blocks_with(&mut self, policy: &EncodePolicy) {
        if !policy.enabled || self.len / BLOCK_ROWS < policy.min_blocks {
            return;
        }
        let Self {
            columns,
            tombstones,
            ..
        } = self;
        for c in columns.iter_mut() {
            c.encode_blocks(&policy.opts, |row| !tombstones.is_deleted(row));
        }
    }

    /// Per-kind encoded-block counts and plain-tail rows, summed over all
    /// columns: `(for, dict, plain_blocks, tail_rows)`. For tests and bench
    /// reporting.
    pub fn encoding_stats(&self) -> (usize, usize, usize, usize) {
        let mut stats = (0, 0, 0, 0);
        for c in &self.columns {
            for eb in c.encoded_blocks() {
                match eb.kind_label() {
                    "for" => stats.0 += 1,
                    "dict" => stats.1 += 1,
                    _ => stats.2 += 1,
                }
            }
            stats.3 += c.tail_rows();
        }
        stats
    }

    /// Scans a contiguous row range, adding matching rows to the accumulator
    /// and folding the work done into `counters`.
    ///
    /// `exact` enables the paper's scan-time optimization (§6.1): when the
    /// caller guarantees that *every* row in the range matches the query
    /// filter, per-value predicate checks are skipped entirely. For `COUNT`
    /// this avoids touching the data at all; for other aggregations only the
    /// aggregation input column is read.
    ///
    /// Counter updates are computed locally and folded in once — there is no
    /// shared counter state to double-account, and concurrent scans cannot
    /// interleave updates.
    pub fn scan_range(
        &self,
        range: Range<usize>,
        query: &Query,
        exact: bool,
        acc: &mut AggAccumulator,
        counters: &mut ScanCounters,
    ) {
        let mut scratch = BlockScratch::new();
        exec::scan_range_into(
            self,
            query.predicates(),
            range,
            exact,
            true,
            acc,
            counters,
            &mut scratch,
        );
    }

    /// Convenience: executes a query by scanning the given ranges (with
    /// per-range exactness flags) and returns the final aggregate.
    pub fn execute_ranges<I>(&self, query: &Query, ranges: I) -> (AggResult, ScanCounters)
    where
        I: IntoIterator<Item = (Range<usize>, bool)>,
    {
        self.execute_plan(query, &ScanPlan::from_ranges(ranges))
    }

    /// Executes a scan plan serially through the shared executor.
    pub fn execute_plan(&self, query: &Query, plan: &ScanPlan) -> (AggResult, ScanCounters) {
        exec::execute_plan(self, query, plan)
    }

    /// Executes a scan plan with the parallel executor across `threads`
    /// worker threads. Results and counters match [`Self::execute_plan`].
    pub fn execute_plan_parallel(
        &self,
        query: &Query,
        plan: &ScanPlan,
        threads: usize,
    ) -> (AggResult, ScanCounters) {
        exec::execute_plan_parallel(self, query, plan, threads)
    }

    /// Executes a query by scanning the entire store (the trivial index).
    pub fn full_scan(&self, query: &Query) -> AggResult {
        self.execute_plan(query, &ScanPlan::full(self.len)).0
    }

    /// Size of the stored data in bytes.
    pub fn data_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum()
    }

    /// The store's deletion bitmap.
    pub fn tombstones(&self) -> &TombstoneSet {
        &self.tombstones
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_len(&self) -> usize {
        self.tombstones.live()
    }

    /// Tombstones every live row matching all of the query's predicates.
    /// Returns the number of rows newly deleted. The rows keep their
    /// physical slots (scans skip them via the bitmap) until a
    /// [`ColumnStore::drop_deleted_in`] compaction removes them.
    pub fn delete_where(&mut self, query: &Query) -> usize {
        let preds = query.predicates();
        let mut newly = 0usize;
        'rows: for row in 0..self.len {
            if self.tombstones.is_deleted(row) {
                continue;
            }
            for p in preds {
                if !p.matches(self.columns[p.dim].get(row)) {
                    continue 'rows;
                }
            }
            newly += self.tombstones.mark(row) as usize;
        }
        newly
    }

    /// Physically removes the tombstoned rows of `range`: live rows inside
    /// compact down, rows after the range shift left, and the store shrinks.
    /// Returns the number of rows removed. Callers owning row ranges (region
    /// indexes) must re-base everything after `range.start` themselves.
    pub fn drop_deleted_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.end <= self.len, "compaction range must be in bounds");
        let keep: Vec<usize> = range
            .clone()
            .filter(|&r| !self.tombstones.is_deleted(r))
            .collect();
        let removed = range.len() - keep.len();
        if removed == 0 {
            return 0;
        }
        for c in &mut self.columns {
            c.drop_range_except(range.clone(), &keep);
        }
        let t_removed = self.tombstones.remove_deleted_in(range);
        debug_assert_eq!(t_removed, removed);
        self.len -= removed;
        removed
    }

    /// Copies the live rows of a contiguous physical range out as a logical
    /// [`Dataset`], in store order. The tombstone-aware counterpart of
    /// [`ColumnStore::slice_dataset`], used wherever an index rebuilds from
    /// its own store — rebuilding from raw slices would resurrect deleted
    /// rows.
    pub fn live_slice_dataset(&self, range: Range<usize>) -> Dataset {
        if !self.tombstones.any() {
            return self.slice_dataset(range);
        }
        let rows: Vec<usize> = range.filter(|&r| !self.tombstones.is_deleted(r)).collect();
        let cols: Vec<Vec<Value>> = self
            .columns
            .iter()
            .map(|c| rows.iter().map(|&r| c.get(r)).collect())
            .collect();
        Dataset::from_columns(cols).expect("store columns are equal-length")
    }
}

impl ScanSource for ColumnStore {
    fn num_rows(&self) -> usize {
        self.len
    }
    fn num_dims(&self) -> usize {
        self.columns.len()
    }
    fn column_data(&self, dim: usize) -> ColumnData<'_> {
        self.columns[dim].data()
    }
    fn tombstones(&self) -> Option<&TombstoneSet> {
        Some(&self.tombstones)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::{Aggregation, Predicate};

    fn store() -> ColumnStore {
        // dim0: 0..100, dim1: (0..100)*2
        let ds = Dataset::from_columns(vec![
            (0..100u64).collect(),
            (0..100u64).map(|v| v * 2).collect(),
        ])
        .unwrap();
        ColumnStore::from_dataset(&ds)
    }

    #[test]
    fn full_scan_matches_reference() {
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(10));
    }

    #[test]
    fn scan_counters_track_ranges_and_points() {
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        // Non-adjacent fragments stay distinct ranges.
        let (res, c) = s.execute_ranges(&q, [(0..40, false), (60..100, false)]);
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(c.ranges, 2);
        assert_eq!(c.points, 80);
        assert_eq!(c.matched, 10);
        // Adjacent fragments of equal exactness are merged by the plan.
        let (_, c) = s.execute_ranges(&q, [(0..50, false), (50..100, false)]);
        assert_eq!(c.ranges, 1);
        assert_eq!(c.points, 100);
    }

    #[test]
    fn counters_come_from_the_call_not_shared_state() {
        // Regression test for the old `Cell<ScanCounters>` double-accounting
        // hazard: two executions over the same store must each see exactly
        // their own work, and an interleaved scan_range call cannot leak into
        // another execution's counters.
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let (_, c1) = s.execute_ranges(&q, [(0..100, false)]);
        let (_, c2) = s.execute_ranges(&q, [(0..100, false)]);
        assert_eq!(
            c1, c2,
            "identical executions must report identical counters"
        );

        let mut acc = AggAccumulator::new(q.aggregation());
        let mut mine = ScanCounters::default();
        s.scan_range(0..50, &q, false, &mut acc, &mut mine);
        // A scan on another "thread" (same store, different counters).
        let mut other_acc = AggAccumulator::new(q.aggregation());
        let mut other = ScanCounters::default();
        s.scan_range(0..100, &q, false, &mut other_acc, &mut other);
        s.scan_range(50..100, &q, false, &mut acc, &mut mine);
        assert_eq!(mine.points, 100);
        assert_eq!(mine.ranges, 2);
        assert_eq!(mine.matched, 10);
        assert_eq!(other.points, 100);
        assert_eq!(other.ranges, 1);
    }

    #[test]
    fn concurrent_scans_do_not_interfere() {
        // The store is Sync: many threads can scan simultaneously, each with
        // private counters.
        let s = store();
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let s = &s;
                    let q = &q;
                    scope.spawn(move || s.execute_ranges(q, [(0..100, false)]))
                })
                .collect();
            for h in handles {
                let (res, c) = h.join().unwrap();
                assert_eq!(res, AggResult::Count(10));
                assert_eq!((c.ranges, c.points, c.matched), (1, 100, 10));
            }
        });
    }

    #[test]
    fn exact_range_skips_filter_checks() {
        let s = store();
        // Query filter actually only matches rows 0..10, but we claim the
        // whole range 0..20 is exact: the store must trust us and count 20.
        let q = Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap();
        let (res, _) = s.execute_ranges(&q, [(0..20, true)]);
        assert_eq!(res, AggResult::Count(20));
    }

    #[test]
    fn exact_range_sum_uses_column_sum() {
        let s = store();
        let q = Query::new(
            vec![Predicate::range(0, 0, 9).unwrap()],
            Aggregation::Sum(1),
        )
        .unwrap();
        let (res, _) = s.execute_ranges(&q, [(0..10, true)]);
        assert_eq!(res, AggResult::Sum((0..10u128).map(|v| v * 2).sum()));
    }

    #[test]
    fn exact_range_min_max_still_correct() {
        let s = store();
        let q = Query::new(vec![], Aggregation::Max(1)).unwrap();
        let (res, _) = s.execute_ranges(&q, [(5..10, true)]);
        assert_eq!(res, AggResult::Max(Some(18)));
        let q = Query::new(vec![], Aggregation::Min(1)).unwrap();
        let (res, _) = s.execute_ranges(&q, [(5..10, true)]);
        assert_eq!(res, AggResult::Min(Some(10)));
    }

    #[test]
    fn permute_reorders_rows_consistently() {
        let mut s = store();
        let perm: Vec<usize> = (0..100).rev().collect();
        s.permute(&perm);
        assert_eq!(s.get(0, 0), 99);
        assert_eq!(s.get(0, 1), 198);
        assert_eq!(s.get(99, 0), 0);
        // Query results are unchanged by physical reordering.
        let q = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(10));
    }

    #[test]
    fn append_dataset_grows_the_store_and_answers_correctly() {
        let mut s = store();
        let extra = Dataset::from_columns(vec![vec![100, 101], vec![200, 202]]).unwrap();
        s.append_dataset(&extra);
        assert_eq!(s.len(), 102);
        assert_eq!(s.get(100, 0), 100);
        assert_eq!(s.get(101, 1), 202);
        assert_eq!((s.column(0).min(), s.column(0).max()), (Some(0), Some(101)));
        let q = Query::count(vec![Predicate::range(0, 95, 200).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(7));
    }

    #[test]
    fn sort_range_orders_a_slice_by_one_dimension() {
        let ds =
            Dataset::from_columns(vec![vec![5, 3, 9, 1, 7], vec![50, 30, 90, 10, 70]]).unwrap();
        let mut s = ColumnStore::from_dataset(&ds);
        // Sort only the middle three rows by dim 0; the ends stay put.
        s.sort_range(1..4, 0);
        assert_eq!(s.column(0).values(), &[5, 1, 3, 9, 7]);
        // Rows stay aligned across columns.
        assert_eq!(s.column(1).values(), &[50, 10, 30, 90, 70]);
    }

    #[test]
    fn out_of_bounds_ranges_are_clamped() {
        let s = store();
        let q = Query::count(vec![]).unwrap();
        let (res, _) = s.execute_ranges(&q, [(90..500, false)]);
        assert_eq!(res, AggResult::Count(10));
        let (res, c) = s.execute_ranges(&q, [(500..600, false)]);
        assert_eq!(res, AggResult::Count(0));
        assert_eq!(c.ranges, 0);
    }

    #[test]
    fn parallel_plan_execution_matches_serial() {
        let ds = Dataset::from_columns(vec![
            (0..30_000u64).collect(),
            (0..30_000u64).map(|v| v % 321).collect(),
        ])
        .unwrap();
        let s = ColumnStore::from_dataset(&ds);
        let q = Query::new(
            vec![Predicate::range(1, 5, 200).unwrap()],
            Aggregation::Sum(0),
        )
        .unwrap();
        let plan = ScanPlan::full(s.len());
        let (serial, sc) = s.execute_plan(&q, &plan);
        let (parallel, pc) = s.execute_plan_parallel(&q, &plan, 4);
        assert_eq!(serial, parallel);
        assert_eq!(sc, pc);
    }

    #[test]
    fn delete_where_hides_rows_from_every_scan_shape() {
        let mut s = store();
        let del = Query::count(vec![Predicate::range(0, 10, 19).unwrap()]).unwrap();
        assert_eq!(s.delete_where(&del), 10);
        // Re-deleting is a no-op.
        assert_eq!(s.delete_where(&del), 0);
        assert_eq!((s.len(), s.live_len()), (100, 90));

        // Non-exact scan: the deleted band no longer matches.
        let q = Query::count(vec![Predicate::range(0, 0, 29).unwrap()]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(20));
        // Exact range over the deleted band: liveness still applies.
        let all = Query::count(vec![]).unwrap();
        let (res, c) = s.execute_ranges(&all, [(0..30, true)]);
        assert_eq!(res, AggResult::Count(20));
        assert_eq!(c.matched, 20);
        // Aggregations over the store skip tombstoned values.
        let sum = Query::new(vec![], Aggregation::Sum(1)).unwrap();
        let expected: u128 = (0..100u128)
            .filter(|v| !(10..20).contains(v))
            .map(|v| v * 2)
            .sum();
        assert_eq!(s.full_scan(&sum), AggResult::Sum(expected));
    }

    #[test]
    fn tombstones_travel_through_permutations() {
        let mut s = store();
        let del = Query::count(vec![Predicate::range(0, 0, 4).unwrap()]).unwrap();
        assert_eq!(s.delete_where(&del), 5);
        let perm: Vec<usize> = (0..100).rev().collect();
        s.permute(&perm);
        let q = Query::count(vec![]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(95));
        // Reorder a slice containing deleted rows; results unchanged.
        s.sort_range(90..100, 0);
        assert_eq!(s.full_scan(&q), AggResult::Count(95));
        assert_eq!(s.tombstones().deleted(), 5);
    }

    #[test]
    fn drop_deleted_in_compacts_physically() {
        let mut s = store();
        let del = Query::count(vec![Predicate::range(0, 40, 59).unwrap()]).unwrap();
        assert_eq!(s.delete_where(&del), 20);
        // Compact only the first half: 10 dead rows (40..50) go away.
        assert_eq!(s.drop_deleted_in(0..50), 10);
        assert_eq!((s.len(), s.live_len()), (90, 80));
        // Full compaction clears the rest.
        assert_eq!(s.drop_deleted_in(0..90), 10);
        assert_eq!((s.len(), s.live_len()), (80, 80));
        assert!(!s.tombstones().any());
        let q = Query::count(vec![]).unwrap();
        assert_eq!(s.full_scan(&q), AggResult::Count(80));
        // Values survived compaction in order.
        assert_eq!(s.get(39, 0), 39);
        assert_eq!(s.get(40, 0), 60);
    }

    #[test]
    fn live_slice_dataset_excludes_tombstones() {
        let mut s = store();
        let del = Query::count(vec![Predicate::range(0, 2, 3).unwrap()]).unwrap();
        s.delete_where(&del);
        let ds = s.live_slice_dataset(0..6);
        assert_eq!(ds.len(), 4);
        assert_eq!(ds.column(0), &[0, 1, 4, 5]);
        // Without tombstones in range the raw slice path is taken.
        let ds = s.live_slice_dataset(10..12);
        assert_eq!(ds.column(0), &[10, 11]);
    }

    #[test]
    fn data_bytes_counts_all_columns() {
        let s = store();
        assert_eq!(s.data_bytes(), 2 * 100 * 8);
        assert_eq!(s.num_dims(), 2);
        assert_eq!(s.len(), 100);
        assert!(!s.is_empty());
    }

    /// dim0 FOR-compressible, dim1 low-cardinality (dict), dim2
    /// incompressible (plain fallback).
    fn big_dataset(n: u64) -> Dataset {
        Dataset::from_columns(vec![
            (0..n).map(|v| v * 29 % 4096).collect(),
            (0..n).map(|v| (v * 7 % 19) * 1_000_000_007).collect(),
            (0..n)
                .map(|v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
        ])
        .unwrap()
    }

    fn queries() -> Vec<Query> {
        let preds = vec![
            Predicate::range(0, 500, 2500).unwrap(),
            Predicate::range(1, 3 * 1_000_000_007, 11 * 1_000_000_007).unwrap(),
        ];
        vec![
            Query::count(preds.clone()).unwrap(),
            Query::new(preds.clone(), Aggregation::Sum(0)).unwrap(),
            Query::new(preds.clone(), Aggregation::Sum(2)).unwrap(),
            Query::new(preds.clone(), Aggregation::Min(2)).unwrap(),
            Query::new(preds, Aggregation::Max(0)).unwrap(),
            Query::count(vec![Predicate::range(2, 0, u64::MAX / 3).unwrap()]).unwrap(),
        ]
    }

    #[test]
    fn encoded_store_matches_plain_store_bit_for_bit() {
        let n = 7 * BLOCK_ROWS as u64 + 123;
        let ds = big_dataset(n);
        let plain = ColumnStore::from_dataset(&ds);
        let mut encoded = plain.clone();
        encoded.encode_blocks_with(&EncodePolicy::default());
        let (for_b, dict_b, _, tail) = encoded.encoding_stats();
        assert!(for_b > 0, "dim0 must FOR-encode");
        assert!(dict_b > 0, "dim1 must dict-encode");
        assert_eq!(tail, 3 * 123, "partial tail blocks stay plain");
        assert!(encoded.data_bytes() < plain.data_bytes());
        let plan = ScanPlan::from_ranges([
            (0..3_000, false),
            (3_000..3_500, true),
            (4_000..plain.len(), false),
        ]);
        for q in queries() {
            let (want, wc) = plain.execute_plan(&q, &plan);
            let (got, gc) = encoded.execute_plan(&q, &plan);
            assert_eq!(got, want, "{q:?}");
            assert_eq!(gc, wc, "counters {q:?}");
            let (par, pc) = encoded.execute_plan_parallel(&q, &plan, 4);
            assert_eq!(par, want, "parallel {q:?}");
            assert_eq!(pc, wc, "parallel counters {q:?}");
        }
    }

    #[test]
    fn encoding_policy_gates_apply() {
        let ds = big_dataset(3 * BLOCK_ROWS as u64);
        let mut s = ColumnStore::from_dataset(&ds);
        s.encode_blocks_with(&EncodePolicy::disabled());
        assert_eq!(s.encoding_stats().3, s.len() * s.num_dims());
        let mut s = ColumnStore::from_dataset(&ds);
        s.encode_blocks_with(&EncodePolicy {
            min_blocks: 100,
            ..EncodePolicy::default()
        });
        assert_eq!(s.encoding_stats(), (0, 0, 0, 3 * BLOCK_ROWS * 3));
    }

    #[test]
    fn ingest_appends_stay_plain_until_next_encode() {
        let n = 2 * BLOCK_ROWS as u64;
        let mut s = ColumnStore::from_dataset(&big_dataset(n));
        s.encode_blocks_with(&EncodePolicy::default());
        assert_eq!(s.encoding_stats().3, 0);
        // Appends land in the plain tail: mixed encoded/plain scans.
        s.append_dataset(&big_dataset(BLOCK_ROWS as u64 + 77));
        let (_, _, _, tail) = s.encoding_stats();
        assert_eq!(tail, 3 * (BLOCK_ROWS + 77));
        let plain = {
            let mut p = ColumnStore::from_dataset(&big_dataset(n));
            p.append_dataset(&big_dataset(BLOCK_ROWS as u64 + 77));
            p
        };
        for q in queries() {
            assert_eq!(s.full_scan(&q), plain.full_scan(&q), "{q:?}");
        }
        // The next encode packs the accumulated full blocks.
        s.encode_blocks_with(&EncodePolicy::default());
        assert_eq!(s.encoding_stats().3, 3 * 77);
        for q in queries() {
            assert_eq!(s.full_scan(&q), plain.full_scan(&q), "{q:?} after encode");
        }
    }

    #[test]
    fn tombstones_then_compaction_keep_encoded_store_oracle_equal() {
        let n = 4 * BLOCK_ROWS as u64;
        let mut enc = ColumnStore::from_dataset(&big_dataset(n));
        let mut plain = enc.clone();
        // Delete before encoding: blocks record tombstone-aware live bounds
        // (one band kills whole blocks' extremes; scattered rows elsewhere).
        let del = Query::count(vec![Predicate::range(0, 0, 64).unwrap()]).unwrap();
        assert_eq!(enc.delete_where(&del), plain.delete_where(&del));
        enc.encode_blocks_with(&EncodePolicy::default());
        for q in queries() {
            assert_eq!(enc.full_scan(&q), plain.full_scan(&q), "{q:?} deleted");
        }
        // More deletes after encoding: live bounds stay sound (only shrink).
        let del2 = Query::count(vec![Predicate::range(1, 0, 2 * 1_000_000_007).unwrap()]).unwrap();
        assert_eq!(enc.delete_where(&del2), plain.delete_where(&del2));
        for q in queries() {
            assert_eq!(enc.full_scan(&q), plain.full_scan(&q), "{q:?} deleted2");
        }
        // Compaction decodes, drops dead rows, and re-encodes.
        let r1 = enc.drop_deleted_in(0..enc.len());
        let r2 = plain.drop_deleted_in(0..plain.len());
        assert_eq!(r1, r2);
        enc.encode_blocks_with(&EncodePolicy::default());
        assert!(enc.encoding_stats().0 > 0, "re-encoded after compaction");
        for q in queries() {
            assert_eq!(enc.full_scan(&q), plain.full_scan(&q), "{q:?} compacted");
        }
        assert_eq!(enc.len(), plain.len());
    }

    #[test]
    fn fully_dead_block_skips_but_stays_correct() {
        let n = 3 * BLOCK_ROWS as u64;
        let mut s = ColumnStore::from_dataset(&big_dataset(n));
        // Tombstone one entire block, then encode: its live bounds are None.
        let mut plain = s.clone();
        for row in BLOCK_ROWS..2 * BLOCK_ROWS {
            let q = Query::count(vec![
                Predicate::range(0, s.get(row, 0), s.get(row, 0)).unwrap(),
                Predicate::range(2, s.get(row, 2), s.get(row, 2)).unwrap(),
            ])
            .unwrap();
            s.delete_where(&q);
            plain.delete_where(&q);
        }
        assert!(s.tombstones().deleted() >= BLOCK_ROWS);
        s.encode_blocks_with(&EncodePolicy::default());
        for q in queries() {
            assert_eq!(s.full_scan(&q), plain.full_scan(&q), "{q:?}");
        }
    }
}
