//! A single column of 64-bit integer values with lightweight metadata and
//! optional per-block encoding.
//!
//! Physically a column is an **encoded prefix** plus a **plain tail**: blocks
//! of [`BLOCK_ROWS`] rows aligned to the absolute grid may be stored as
//! [`EncodedBlock`]s (frame-of-reference bit-packing, dictionary codes, or a
//! plain fallback — see [`tsunami_core::encode`]), while everything after the
//! prefix stays a raw `Vec<u64>`. Appends go to the plain tail, so ingest
//! never pays encode cost; [`Column::encode_blocks`] (called by index
//! build/compaction) packs the accumulated full blocks. Any mutation that
//! moves rows ([`Column::permute`], [`Column::permute_range`],
//! [`Column::drop_range_except`]) first decodes the affected suffix, which
//! also keeps block metadata trivially consistent: an encoded block's
//! contents never change after encoding.

use tsunami_core::exec::{ColumnData, BLOCK_ROWS};
use tsunami_core::{EncodeOptions, EncodedBlock, Value};

/// A dense, in-memory column of `u64` values.
///
/// The column tracks its physical min/max so scans over a whole column (or
/// index structures that need per-page metadata) can cheaply prune. Bounds
/// are `None` for an empty column — never a `(0, 0)` sentinel, which would
/// be indistinguishable from a real all-zero column and poison block
/// skipping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Encoded blocks covering rows `0 .. packed.len() * BLOCK_ROWS`.
    packed: Vec<EncodedBlock>,
    /// Plain values for every row after the encoded prefix.
    values: Vec<Value>,
    /// Physical min/max over every stored row; `None` when empty.
    bounds: Option<(Value, Value)>,
}

impl Column {
    /// Creates a plain column from raw values.
    pub fn new(values: Vec<Value>) -> Self {
        let bounds = min_max(&values);
        Self {
            packed: Vec::new(),
            values,
            bounds,
        }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.packed.len() * BLOCK_ROWS + self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.packed.is_empty() && self.values.is_empty()
    }

    /// The raw values of a fully plain column. Panics if any block is
    /// encoded — callers that may see encoded columns use
    /// [`Column::decode_range`] or [`Column::data`] instead.
    pub fn values(&self) -> &[Value] {
        assert!(
            self.packed.is_empty(),
            "values() on an encoded column; use decode_range()"
        );
        &self.values
    }

    /// The column as the executor sees it.
    pub fn data(&self) -> ColumnData<'_> {
        if self.packed.is_empty() {
            ColumnData::Plain(&self.values)
        } else {
            ColumnData::Encoded {
                blocks: &self.packed,
                tail: &self.values,
            }
        }
    }

    /// The encoded prefix blocks.
    pub fn encoded_blocks(&self) -> &[EncodedBlock] {
        &self.packed
    }

    /// Number of plain rows after the encoded prefix.
    pub fn tail_rows(&self) -> usize {
        self.values.len()
    }

    /// Value at row `i`, whatever its representation.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        let covered = self.packed.len() * BLOCK_ROWS;
        if i < covered {
            self.packed[i / BLOCK_ROWS].value_at(i % BLOCK_ROWS)
        } else {
            self.values[i - covered]
        }
    }

    /// Decodes rows `range` into a fresh vector (store order).
    pub fn decode_range(&self, range: std::ops::Range<usize>) -> Vec<Value> {
        debug_assert!(range.end <= self.len());
        let mut out = vec![0; range.len()];
        let covered = self.packed.len() * BLOCK_ROWS;
        let mut row = range.start;
        while row < range.end {
            let at = row - range.start;
            if row >= covered {
                out[at..].copy_from_slice(&self.values[row - covered..range.end - covered]);
                break;
            }
            let eb = &self.packed[row / BLOCK_ROWS];
            let off = row % BLOCK_ROWS;
            let n = (BLOCK_ROWS - off).min(range.end - row);
            eb.decode_into(off, &mut out[at..at + n]);
            row += n;
        }
        out
    }

    /// Physical minimum value; `None` when empty. Bounds cover every stored
    /// row including tombstoned ones (per-block *live* bounds live in the
    /// encoded blocks); physical removal re-tightens them.
    pub fn min(&self) -> Option<Value> {
        self.bounds.map(|(lo, _)| lo)
    }

    /// Physical maximum value; `None` when empty.
    pub fn max(&self) -> Option<Value> {
        self.bounds.map(|(_, hi)| hi)
    }

    /// Appends values at the end of the column, extending min/max to cover
    /// them. This is the storage half of incremental ingestion: appended rows
    /// land in the **plain tail** — never encoded on the hot insert path —
    /// and the owning index then grafts them into place with
    /// [`Column::permute`]/[`Column::permute_range`] (or leaves them, and a
    /// later [`Column::encode_blocks`] packs them).
    pub fn append(&mut self, values: &[Value]) {
        let Some((lo, hi)) = min_max(values) else {
            return;
        };
        self.bounds = Some(match self.bounds {
            None => (lo, hi),
            Some((a, b)) => (a.min(lo), b.max(hi)),
        });
        self.values.extend_from_slice(values);
    }

    /// Encodes every full [`BLOCK_ROWS`] block of the plain tail, extending
    /// the encoded prefix; a trailing partial block stays plain. `is_live`
    /// reports whether an **absolute** row is live at encode time, feeding
    /// the per-block tombstone-aware live bounds that block skipping prunes
    /// on.
    pub fn encode_blocks(&mut self, opts: &EncodeOptions, is_live: impl Fn(usize) -> bool) {
        let full = self.values.len() / BLOCK_ROWS;
        if full == 0 {
            return;
        }
        let base = self.packed.len() * BLOCK_ROWS;
        self.packed.reserve(full);
        for b in 0..full {
            let start = b * BLOCK_ROWS;
            let abs = base + start;
            self.packed.push(EncodedBlock::encode(
                &self.values[start..start + BLOCK_ROWS],
                |i| is_live(abs + i),
                opts,
            ));
        }
        self.values.drain(..full * BLOCK_ROWS);
    }

    /// Decodes every encoded block back into the plain tail.
    pub fn make_plain(&mut self) {
        self.decode_from(0);
    }

    /// Decodes blocks `k0..` of the encoded prefix into the plain tail
    /// (the prefix must stay contiguous from row 0, so mutating any row of
    /// block `k` requires decoding `k` and everything after it).
    fn decode_from(&mut self, k0: usize) {
        if k0 >= self.packed.len() {
            return;
        }
        let decoded_rows: usize = self.packed[k0..].iter().map(|eb| eb.len()).sum();
        let mut plain = Vec::with_capacity(decoded_rows + self.values.len());
        for eb in self.packed.drain(k0..) {
            let off = plain.len();
            plain.resize(off + eb.len(), 0);
            eb.decode_into(0, &mut plain[off..]);
        }
        plain.append(&mut self.values);
        self.values = plain;
    }

    /// Rebuilds the column with rows in permuted order: new row `i` holds the
    /// value previously at row `perm[i]`. Decodes the whole column first; the
    /// owner re-encodes after restructuring.
    pub fn permute(&mut self, perm: &[usize]) {
        self.make_plain();
        debug_assert_eq!(perm.len(), self.values.len());
        let new_values: Vec<Value> = perm.iter().map(|&src| self.values[src]).collect();
        self.values = new_values;
    }

    /// Permutes only the rows `base..base + perm.len()`: new row `base + i`
    /// holds the value previously at row `base + perm[i]` (`perm` uses local,
    /// 0-based indices). Min/max are unchanged by any reordering. Encoded
    /// blocks from the first touched one on are decoded first.
    pub fn permute_range(&mut self, base: usize, perm: &[usize]) {
        debug_assert!(base + perm.len() <= self.len());
        self.decode_from(base / BLOCK_ROWS);
        let covered = self.packed.len() * BLOCK_ROWS;
        let slice = &mut self.values[base - covered..base - covered + perm.len()];
        let reordered: Vec<Value> = perm.iter().map(|&src| slice[src]).collect();
        slice.copy_from_slice(&reordered);
    }

    /// Removes the rows of `range` that are not listed in `keep` (absolute
    /// row indices inside `range`, ascending); rows after the range shift
    /// down to close the gap. This is compaction's storage primitive —
    /// min/max are recomputed, since removal can tighten them (this is where
    /// bounds staled by tombstone deletes snap back to the live data).
    pub fn drop_range_except(&mut self, range: std::ops::Range<usize>, keep: &[usize]) {
        debug_assert!(range.end <= self.len());
        debug_assert!(keep.iter().all(|&i| range.contains(&i)));
        self.decode_from(range.start / BLOCK_ROWS);
        let covered = self.packed.len() * BLOCK_ROWS;
        let mut out = range.start - covered;
        for &i in keep {
            self.values[out] = self.values[i - covered];
            out += 1;
        }
        self.values.copy_within(range.end - covered.., out);
        let removed = range.len() - keep.len();
        self.values.truncate(self.values.len() - removed);
        self.recompute_bounds();
    }

    fn recompute_bounds(&mut self) {
        let mut bounds = min_max(&self.values);
        for eb in &self.packed {
            let (lo, hi) = eb.bounds();
            bounds = Some(match bounds {
                None => (lo, hi),
                Some((a, b)) => (a.min(lo), b.max(hi)),
            });
        }
        self.bounds = bounds;
    }

    /// Sum of values in `range`, as a wide integer.
    pub fn sum_range(&self, range: std::ops::Range<usize>) -> u128 {
        range.map(|i| self.get(i) as u128).sum()
    }

    /// Approximate heap size in bytes (packed payloads plus the plain tail).
    pub fn size_bytes(&self) -> usize {
        self.packed
            .iter()
            .map(EncodedBlock::size_bytes)
            .sum::<usize>()
            + self.values.len() * std::mem::size_of::<Value>()
    }
}

/// Min/max of a slice; `None` when empty (no `(0, 0)` sentinel — see the
/// regression test below).
fn min_max(values: &[Value]) -> Option<(Value, Value)> {
    let mut min = Value::MAX;
    let mut max = Value::MIN;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    (!values.is_empty()).then_some((min, max))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_max() {
        let c = Column::new(vec![5, 1, 9, 3]);
        assert_eq!(c.min(), Some(1));
        assert_eq!(c.max(), Some(9));
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_column_has_no_bounds() {
        // Regression: an empty column used to report the `(0, 0)` sentinel,
        // indistinguishable from a real all-zero column — block skipping on
        // those bounds would wrongly prune (or wrongly keep) rows.
        let c = Column::new(vec![]);
        assert_eq!((c.min(), c.max()), (None, None));
        assert!(c.is_empty());
        let zeros = Column::new(vec![0, 0]);
        assert_eq!((zeros.min(), zeros.max()), (Some(0), Some(0)));
        assert_ne!((c.min(), c.max()), (zeros.min(), zeros.max()));
    }

    #[test]
    fn append_extends_values_and_bounds() {
        let mut c = Column::new(vec![5, 9]);
        c.append(&[]);
        assert_eq!((c.len(), c.min(), c.max()), (2, Some(5), Some(9)));
        c.append(&[1, 20]);
        assert_eq!(c.values(), &[5, 9, 1, 20]);
        assert_eq!((c.min(), c.max()), (Some(1), Some(20)));

        let mut empty = Column::new(vec![]);
        empty.append(&[7, 3]);
        assert_eq!((empty.min(), empty.max()), (Some(3), Some(7)));
    }

    #[test]
    fn permute_reorders_values() {
        let mut c = Column::new(vec![10, 20, 30, 40]);
        c.permute(&[3, 1, 0, 2]);
        assert_eq!(c.values(), &[40, 20, 10, 30]);
        assert_eq!(c.get(0), 40);
    }

    #[test]
    fn drop_range_except_compacts_and_retightens_bounds() {
        let mut c = Column::new(vec![10, 99, 30, 99, 50, 60]);
        // Drop rows 1 and 3 of range 0..5, keeping 0, 2, 4; the tail (60)
        // shifts down.
        c.drop_range_except(0..5, &[0, 2, 4]);
        assert_eq!(c.values(), &[10, 30, 50, 60]);
        assert_eq!((c.min(), c.max()), (Some(10), Some(60)));
        // Keeping everything is a no-op.
        c.drop_range_except(1..3, &[1, 2]);
        assert_eq!(c.values(), &[10, 30, 50, 60]);
    }

    #[test]
    fn sum_range_uses_wide_accumulator() {
        let c = Column::new(vec![u64::MAX, u64::MAX, 1]);
        assert_eq!(c.sum_range(0..2), 2 * (u64::MAX as u128));
        assert_eq!(c.sum_range(2..3), 1);
        assert_eq!(c.sum_range(1..1), 0);
    }

    fn encoded_column(n: usize) -> Column {
        let mut c = Column::new((0..n as u64).map(|v| v * 3 % 2048).collect());
        c.encode_blocks(&EncodeOptions::default(), |_| true);
        c
    }

    #[test]
    fn encode_blocks_packs_full_blocks_and_leaves_tail_plain() {
        let n = 2 * BLOCK_ROWS + 100;
        let c = encoded_column(n);
        assert_eq!(c.encoded_blocks().len(), 2);
        assert_eq!(c.tail_rows(), 100);
        assert_eq!(c.len(), n);
        // Every row reads back identically.
        for i in (0..n).step_by(37) {
            assert_eq!(c.get(i), (i as u64) * 3 % 2048);
        }
        // And compressed blocks actually shrink the footprint.
        assert!(c.size_bytes() < n * 8);
    }

    #[test]
    fn decode_range_spans_blocks_and_tail() {
        let n = 2 * BLOCK_ROWS + 50;
        let c = encoded_column(n);
        let plain: Vec<Value> = (0..n as u64).map(|v| v * 3 % 2048).collect();
        for range in [0..n, 10..BLOCK_ROWS + 5, BLOCK_ROWS - 1..n - 3, n - 20..n] {
            assert_eq!(c.decode_range(range.clone()), &plain[range]);
        }
    }

    #[test]
    fn mutations_decode_the_touched_suffix() {
        let n = 3 * BLOCK_ROWS;
        let mut c = encoded_column(n);
        assert_eq!(c.encoded_blocks().len(), 3);
        // Permuting a range inside block 1 decodes blocks 1.. but keeps 0.
        let perm: Vec<usize> = (0..10).rev().collect();
        c.permute_range(BLOCK_ROWS + 5, &perm);
        assert_eq!(c.encoded_blocks().len(), 1);
        assert_eq!(c.get(BLOCK_ROWS + 5), ((BLOCK_ROWS + 14) as u64) * 3 % 2048);
        // Unaffected prefix block still reads correctly.
        assert_eq!(c.get(7), 21);
        // Re-encoding packs the plain region again.
        c.encode_blocks(&EncodeOptions::default(), |_| true);
        assert_eq!(c.encoded_blocks().len(), 3);
    }

    #[test]
    fn drop_range_except_works_across_encoded_blocks() {
        let n = 2 * BLOCK_ROWS;
        let mut c = encoded_column(n);
        let keep: Vec<usize> = (0..n).filter(|&i| i % 2 == 0).collect();
        c.drop_range_except(0..n, &keep);
        assert_eq!(c.len(), n / 2);
        for (new_row, &old_row) in keep.iter().enumerate() {
            assert_eq!(c.get(new_row), (old_row as u64) * 3 % 2048);
        }
    }

    #[test]
    fn size_bytes_counts_values() {
        let c = Column::new(vec![0; 100]);
        assert_eq!(c.size_bytes(), 800);
    }
}
