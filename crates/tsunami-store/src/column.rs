//! A single column of 64-bit integer values with lightweight metadata.

use tsunami_core::Value;

/// A dense, in-memory column of `u64` values.
///
/// The column tracks its min/max so scans over a whole column (or index
/// structures that need per-page metadata) can cheaply prune.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    values: Vec<Value>,
    min: Value,
    max: Value,
}

impl Column {
    /// Creates a column from raw values.
    pub fn new(values: Vec<Value>) -> Self {
        let (min, max) = min_max(&values);
        Self { values, min, max }
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> Value {
        self.values[i]
    }

    /// Minimum value (0 for an empty column).
    pub fn min(&self) -> Value {
        self.min
    }

    /// Maximum value (0 for an empty column).
    pub fn max(&self) -> Value {
        self.max
    }

    /// Appends values at the end of the column, extending min/max to cover
    /// them. This is the storage half of incremental ingestion: appended rows
    /// land in an append region at the tail and the owning index then grafts
    /// them into place with [`Column::permute`]/[`Column::permute_range`].
    pub fn append(&mut self, values: &[Value]) {
        if values.is_empty() {
            return;
        }
        let (lo, hi) = min_max(values);
        if self.values.is_empty() {
            self.min = lo;
            self.max = hi;
        } else {
            self.min = self.min.min(lo);
            self.max = self.max.max(hi);
        }
        self.values.extend_from_slice(values);
    }

    /// Rebuilds the column with rows in permuted order: new row `i` holds the
    /// value previously at row `perm[i]`.
    pub fn permute(&mut self, perm: &[usize]) {
        debug_assert_eq!(perm.len(), self.values.len());
        let new_values: Vec<Value> = perm.iter().map(|&src| self.values[src]).collect();
        self.values = new_values;
    }

    /// Permutes only the rows `base..base + perm.len()`: new row `base + i`
    /// holds the value previously at row `base + perm[i]` (`perm` uses local,
    /// 0-based indices). Min/max are unchanged by any reordering.
    pub fn permute_range(&mut self, base: usize, perm: &[usize]) {
        debug_assert!(base + perm.len() <= self.values.len());
        let slice = &mut self.values[base..base + perm.len()];
        let reordered: Vec<Value> = perm.iter().map(|&src| slice[src]).collect();
        slice.copy_from_slice(&reordered);
    }

    /// Removes the rows of `range` that are not listed in `keep` (absolute
    /// row indices inside `range`, ascending); rows after the range shift
    /// down to close the gap. This is compaction's storage primitive —
    /// min/max are recomputed, since removal can tighten them.
    pub fn drop_range_except(&mut self, range: std::ops::Range<usize>, keep: &[usize]) {
        debug_assert!(range.end <= self.values.len());
        debug_assert!(keep.iter().all(|&i| range.contains(&i)));
        let mut out = range.start;
        for &i in keep {
            self.values[out] = self.values[i];
            out += 1;
        }
        self.values.copy_within(range.end.., out);
        let removed = range.len() - keep.len();
        self.values.truncate(self.values.len() - removed);
        let (min, max) = min_max(&self.values);
        self.min = min;
        self.max = max;
    }

    /// Sum of values in `range`, as a wide integer.
    pub fn sum_range(&self, range: std::ops::Range<usize>) -> u128 {
        self.values[range].iter().map(|&v| v as u128).sum()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
    }
}

fn min_max(values: &[Value]) -> (Value, Value) {
    let mut min = Value::MAX;
    let mut max = Value::MIN;
    for &v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if values.is_empty() {
        (0, 0)
    } else {
        (min, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_max() {
        let c = Column::new(vec![5, 1, 9, 3]);
        assert_eq!(c.min(), 1);
        assert_eq!(c.max(), 9);
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn empty_column_has_zero_bounds() {
        let c = Column::new(vec![]);
        assert_eq!((c.min(), c.max()), (0, 0));
        assert!(c.is_empty());
    }

    #[test]
    fn append_extends_values_and_bounds() {
        let mut c = Column::new(vec![5, 9]);
        c.append(&[]);
        assert_eq!((c.len(), c.min(), c.max()), (2, 5, 9));
        c.append(&[1, 20]);
        assert_eq!(c.values(), &[5, 9, 1, 20]);
        assert_eq!((c.min(), c.max()), (1, 20));

        let mut empty = Column::new(vec![]);
        empty.append(&[7, 3]);
        assert_eq!((empty.min(), empty.max()), (3, 7));
    }

    #[test]
    fn permute_reorders_values() {
        let mut c = Column::new(vec![10, 20, 30, 40]);
        c.permute(&[3, 1, 0, 2]);
        assert_eq!(c.values(), &[40, 20, 10, 30]);
        assert_eq!(c.get(0), 40);
    }

    #[test]
    fn drop_range_except_compacts_and_retightens_bounds() {
        let mut c = Column::new(vec![10, 99, 30, 99, 50, 60]);
        // Drop rows 1 and 3 of range 0..5, keeping 0, 2, 4; the tail (60)
        // shifts down.
        c.drop_range_except(0..5, &[0, 2, 4]);
        assert_eq!(c.values(), &[10, 30, 50, 60]);
        assert_eq!((c.min(), c.max()), (10, 60));
        // Keeping everything is a no-op.
        c.drop_range_except(1..3, &[1, 2]);
        assert_eq!(c.values(), &[10, 30, 50, 60]);
    }

    #[test]
    fn sum_range_uses_wide_accumulator() {
        let c = Column::new(vec![u64::MAX, u64::MAX, 1]);
        assert_eq!(c.sum_range(0..2), 2 * (u64::MAX as u128));
        assert_eq!(c.sum_range(2..3), 1);
        assert_eq!(c.sum_range(1..1), 0);
    }

    #[test]
    fn size_bytes_counts_values() {
        let c = Column::new(vec![0; 100]);
        assert_eq!(c.size_bytes(), 800);
    }
}
