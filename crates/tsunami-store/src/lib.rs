//! In-memory column store substrate.
//!
//! The paper evaluates every index "on data stored in a custom column store
//! with one scan-time optimization: if the range of data being scanned is
//! exact, i.e. we are guaranteed ahead of time that all elements within the
//! range match the query filter, we skip checking each value against the
//! query filter" (§6.1). This crate provides that substrate:
//!
//! * [`Column`] — a single `u64` attribute vector with min/max metadata and
//!   optional per-block lightweight encoding (frame-of-reference
//!   bit-packing, dictionary codes) behind an unencoded ingest tail.
//! * [`ColumnStore`] — the clustered physical table: all indexes produce a
//!   row permutation at build time and the store is reordered once, so query
//!   execution scans contiguous ranges. After restructuring, indexes call
//!   [`ColumnStore::encode_blocks`] to pack full blocks under the
//!   environment-configured [`EncodePolicy`].
//! * [`Dictionary`] — string dictionary encoding (§6.1: "any string values
//!   are dictionary encoded prior to evaluation").
//! * [`Wal`] — the write-ahead log the engine's durability layer appends
//!   mutation records to, with strict checksummed replay (see [`wal`]).
//!
//! Scanning itself — the vectorized kernels, the exact-range fast path, and
//! the per-query [`ScanCounters`] — lives in [`tsunami_core::exec`]; the
//! store implements [`tsunami_core::ScanSource`] and adds thin conveniences
//! ([`ColumnStore::execute_plan`], [`ColumnStore::full_scan`]).

pub mod column;
pub mod dictionary;
pub mod encode;
pub mod table;
pub mod wal;

pub use column::Column;
pub use dictionary::Dictionary;
pub use encode::EncodePolicy;
pub use table::ColumnStore;
pub use wal::{CrashPoint, Wal, WalRecord};
// Re-exported for backwards compatibility: counters moved into the shared
// executor in `tsunami_core::exec`.
pub use tsunami_core::ScanCounters;
