//! Dictionary encoding of string attributes into `u64` codes.
//!
//! The paper uses 64-bit integer attributes throughout and dictionary-encodes
//! string values before evaluation (§6.1). Codes are assigned in first-seen
//! order by default; [`Dictionary::from_sorted`] assigns codes in
//! lexicographic order so that range predicates over the encoded column
//! correspond to lexicographic ranges over the strings.

use std::collections::HashMap;
use tsunami_core::Value;

/// A bidirectional mapping between strings and dense integer codes.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    codes: HashMap<String, Value>,
    values: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a dictionary whose codes follow the lexicographic order of the
    /// distinct input strings, so encoded range filters are meaningful.
    pub fn from_sorted<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut distinct: Vec<String> = values.into_iter().map(Into::into).collect();
        distinct.sort();
        distinct.dedup();
        let mut dict = Dictionary::new();
        for v in distinct {
            dict.encode(&v);
        }
        dict
    }

    /// Returns the code for `value`, assigning the next free code if unseen.
    pub fn encode(&mut self, value: &str) -> Value {
        if let Some(&code) = self.codes.get(value) {
            return code;
        }
        let code = self.values.len() as Value;
        self.codes.insert(value.to_string(), code);
        self.values.push(value.to_string());
        code
    }

    /// Returns the code for `value` if it has been seen.
    pub fn lookup(&self, value: &str) -> Option<Value> {
        self.codes.get(value).copied()
    }

    /// Returns the string for a code, if valid.
    pub fn decode(&self, code: Value) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values in the dictionary.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Encodes a whole string column.
    pub fn encode_column<S: AsRef<str>>(&mut self, column: &[S]) -> Vec<Value> {
        column.iter().map(|s| self.encode(s.as_ref())).collect()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.values
            .iter()
            .map(|s| s.len() + std::mem::size_of::<String>())
            .sum::<usize>()
            * 2 // stored both in the vec and (as keys) in the map
            + self.values.len() * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_assigns_dense_codes() {
        let mut d = Dictionary::new();
        assert_eq!(d.encode("air"), 0);
        assert_eq!(d.encode("rail"), 1);
        assert_eq!(d.encode("air"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.decode(1), Some("rail"));
        assert_eq!(d.decode(7), None);
        assert_eq!(d.lookup("rail"), Some(1));
        assert_eq!(d.lookup("ship"), None);
    }

    #[test]
    fn from_sorted_preserves_lexicographic_order() {
        let d = Dictionary::from_sorted(["truck", "air", "rail", "air"]);
        assert_eq!(d.len(), 3);
        let air = d.lookup("air").unwrap();
        let rail = d.lookup("rail").unwrap();
        let truck = d.lookup("truck").unwrap();
        assert!(air < rail && rail < truck);
    }

    #[test]
    fn encode_column_round_trips() {
        let mut d = Dictionary::new();
        let col = d.encode_column(&["a", "b", "a", "c"]);
        assert_eq!(col, vec![0, 1, 0, 2]);
        let decoded: Vec<&str> = col.iter().map(|&c| d.decode(c).unwrap()).collect();
        assert_eq!(decoded, vec!["a", "b", "a", "c"]);
    }

    #[test]
    fn size_bytes_grows_with_entries() {
        let mut d = Dictionary::new();
        let empty = d.size_bytes();
        d.encode("something-long-enough");
        assert!(d.size_bytes() > empty);
        assert!(!d.is_empty());
    }
}
