//! Write-ahead log: length-prefixed, checksummed, versioned mutation records.
//!
//! The durability layer logs every mutation before applying it in memory, so
//! a crash at any instant loses at most the suffix of the log that was never
//! fsync'd. The engine replays the log on open and rebuilds the exact
//! in-memory state of the durably committed prefix.
//!
//! # Frame layout
//!
//! ```text
//! +----------------+----------------+---------+--------+------------------+
//! | payload length | FNV-1a of      | version | opcode | body             |
//! |  u32 BE        | payload, u32 BE|  u8 = 1 |  u8    | opcode-specific  |
//! +----------------+----------------+---------+--------+------------------+
//! |<------- 8-byte header -------->|<-------- `length` bytes ----------->|
//! ```
//!
//! All integers are big-endian, mirroring the wire protocol in
//! `tsunami-server`. The length prefix counts the payload (version + opcode +
//! body) and is checked against [`MAX_RECORD_BYTES`] before any allocation,
//! so a corrupt length cannot balloon memory. The checksum covers the whole
//! payload; it is FNV-1a (32-bit), chosen because it is dependency-free,
//! byte-order-stable, and catches the torn-write and bit-rot cases a WAL
//! tail actually sees.
//!
//! # Recovery semantics
//!
//! [`replay`] is strict-prefix: it decodes records from the front and stops
//! at the first frame that is truncated, fails its checksum, or does not
//! decode exactly (unknown version/opcode, trailing bytes in a body). It
//! returns the well-formed records plus the byte length of the valid prefix;
//! the engine truncates the log to that length before appending again, so a
//! torn tail is amputated exactly once and never resurfaces.
//!
//! # Crash injection
//!
//! [`CrashPoint`] is a deterministic fault hook for tests: it makes the log
//! stop mid-record, or "lose" everything after the last fsync, modelling the
//! two ways a real kernel crash shears a log file. Engine-level checkpoint
//! crash points ride on the same enum.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use tsunami_core::{Aggregation, Dataset, Predicate, Query, Result, TsunamiError, Value};

/// WAL format version carried in every record.
pub const WAL_VERSION: u8 = 1;

/// Maximum payload size accepted per record (64 MiB). Checked before the
/// payload is read so a corrupt length prefix cannot trigger a huge
/// allocation; any real record in this workspace is far smaller.
pub const MAX_RECORD_BYTES: usize = 64 << 20;

const HEADER_BYTES: usize = 8;

const OP_CREATE_TABLE: u8 = 0x01;
const OP_INSERT_BATCH: u8 = 0x02;
const OP_DELETE: u8 = 0x03;
const OP_CHECKPOINT: u8 = 0x04;
const OP_REGISTER_VIEW: u8 = 0x05;

/// FNV-1a, 32-bit. Offset basis and prime per the reference parameters.
pub fn checksum(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// A single durable mutation. Everything the engine needs to rebuild a
/// table's logical content is expressible as a sequence of these.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A table was created: its schema, its index specification (encoded by
    /// the engine — the store treats it as opaque bytes), the workload the
    /// index was optimized for, and the initial data.
    CreateTable {
        /// Table name.
        name: String,
        /// Column names, in dimension order.
        columns: Vec<String>,
        /// Engine-encoded index specification.
        spec: Vec<u8>,
        /// Workload queries the index was optimized against.
        workload: Vec<Query>,
        /// Initial rows.
        data: Dataset,
    },
    /// Rows were appended to a table.
    InsertBatch {
        /// Target table.
        table: String,
        /// Appended rows.
        rows: Dataset,
    },
    /// Rows matching a predicate conjunction were tombstoned.
    Delete {
        /// Target table.
        table: String,
        /// Conjunctive range predicates selecting the rows to delete.
        predicates: Vec<Predicate>,
    },
    /// A materialized view was registered over a table: a named aggregate
    /// query whose pre-folded state the engine maintains incrementally.
    /// Only the *spec* is durable — view state is recomputed from the
    /// recovered table, so it can never diverge from the data.
    RegisterView {
        /// Table the view aggregates over.
        table: String,
        /// Unique view name (per database).
        name: String,
        /// The aggregate query the view materializes.
        query: Query,
    },
    /// A checkpoint completed covering the named tables; records before this
    /// one are reflected in the checkpoint file.
    Checkpoint {
        /// Monotonic checkpoint epoch. The marker at the head of a fresh WAL
        /// carries the same generation as the checkpoint file it follows, so
        /// recovery can tell a WAL that belongs to the current checkpoint
        /// from one the checkpoint already absorbed (crash between rename
        /// and truncate).
        generation: u64,
        /// Tables captured by the checkpoint.
        tables: Vec<String>,
    },
}

/// Deterministic fault-injection points for crash testing.
///
/// The engine and the [`Wal`] consult the configured crash point at the
/// matching step and abort there, leaving the on-disk state exactly as a
/// kernel crash at that instant would (given the no-reordering model: bytes
/// written before the last fsync are durable, later bytes may be lost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CrashPoint {
    /// No fault injected.
    #[default]
    None,
    /// Crash after writing roughly half of a record's frame: the log ends in
    /// a torn record.
    MidRecord,
    /// Crash after the record is fully written but before fsync: everything
    /// past the last sync is lost (the file is truncated back to the synced
    /// length, modelling dropped page cache).
    BeforeSync,
    /// Crash while writing the temporary checkpoint file (engine-level): the
    /// tmp file is left partial, the real checkpoint and WAL untouched.
    MidCheckpoint,
    /// Crash after the checkpoint file is atomically renamed into place but
    /// before the WAL is truncated (engine-level): replay sees both.
    AfterCheckpointRename,
}

fn io_err(ctx: &str, e: std::io::Error) -> TsunamiError {
    TsunamiError::Durability(format!("{ctx}: {e}"))
}

/// An append-only, checksummed log file.
///
/// Writes go through [`Wal::append`]; nothing is durable until
/// [`Wal::commit`] fsyncs. The struct tracks the last synced length so the
/// [`CrashPoint::BeforeSync`] fault can model losing unsynced bytes.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    len: u64,
    synced_len: u64,
    crash: CrashPoint,
}

impl Wal {
    /// Creates (or truncates) a log at `path`.
    pub fn create(path: &Path) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| io_err("create wal", e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            len: 0,
            synced_len: 0,
            crash: CrashPoint::None,
        })
    }

    /// Opens an existing log for appending, first truncating it to
    /// `valid_len` — the well-formed prefix reported by [`replay`] — so a
    /// torn tail from a previous crash is amputated before new records land.
    pub fn open_append(path: &Path, valid_len: u64) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| io_err("open wal", e))?;
        file.set_len(valid_len)
            .map_err(|e| io_err("truncate wal tail", e))?;
        file.sync_all().map_err(|e| io_err("sync wal", e))?;
        Ok(Self {
            file,
            path: path.to_path_buf(),
            len: valid_len,
            synced_len: valid_len,
            crash: CrashPoint::None,
        })
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Bytes written so far (committed or not).
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the log holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes made durable by the last [`Wal::commit`].
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Arms a fault-injection point. Test hook; [`CrashPoint::None`] (the
    /// default) is a no-op in every path.
    pub fn set_crash_point(&mut self, crash: CrashPoint) {
        self.crash = crash;
    }

    /// Appends one record to the log. Not durable until [`Wal::commit`].
    ///
    /// With [`CrashPoint::MidRecord`] armed, writes only the first half of
    /// the frame and fails, leaving a torn record at the tail.
    pub fn append(&mut self, record: &WalRecord) -> Result<()> {
        let frame = encode_record(record);
        if self.crash == CrashPoint::MidRecord {
            let half = &frame[..frame.len() / 2];
            self.write_at_end(half)?;
            return Err(TsunamiError::Durability(
                "crash injected mid-record".to_string(),
            ));
        }
        self.write_at_end(&frame)
    }

    /// Makes every appended record durable (fsync).
    ///
    /// With [`CrashPoint::BeforeSync`] armed, instead truncates the file
    /// back to the last synced length — the deterministic model of a crash
    /// that drops everything the page cache had not flushed — and fails.
    pub fn commit(&mut self) -> Result<()> {
        if self.crash == CrashPoint::BeforeSync {
            self.file
                .set_len(self.synced_len)
                .map_err(|e| io_err("truncate wal (injected crash)", e))?;
            self.len = self.synced_len;
            return Err(TsunamiError::Durability(
                "crash injected before fsync".to_string(),
            ));
        }
        self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        self.synced_len = self.len;
        Ok(())
    }

    /// [`Wal::append`] followed by [`Wal::commit`].
    pub fn append_commit(&mut self, record: &WalRecord) -> Result<()> {
        self.append(record)?;
        self.commit()
    }

    /// Truncates the log to `len` bytes and fsyncs. Used after a checkpoint
    /// absorbs a prefix of the log.
    pub fn truncate_to(&mut self, len: u64) -> Result<()> {
        self.file
            .set_len(len)
            .map_err(|e| io_err("truncate wal", e))?;
        self.file.sync_all().map_err(|e| io_err("fsync wal", e))?;
        self.len = len;
        self.synced_len = len;
        Ok(())
    }

    fn write_at_end(&mut self, bytes: &[u8]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(self.len))
            .map_err(|e| io_err("seek wal", e))?;
        self.file
            .write_all(bytes)
            .map_err(|e| io_err("append wal", e))?;
        self.len += bytes.len() as u64;
        Ok(())
    }
}

/// Replays a log file: returns every well-formed record plus the byte
/// length of the valid prefix (see the module docs for the strict-prefix
/// rule). A missing file is an empty log, not an error.
pub fn replay(path: &Path) -> Result<(Vec<WalRecord>, u64)> {
    let mut file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
        Err(e) => return Err(io_err("open wal for replay", e)),
    };
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| io_err("read wal", e))?;
    let (records, valid_len) = decode_frames(&bytes);
    Ok((records, valid_len as u64))
}

/// Encodes one record as a complete frame (header + payload).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    payload.push(WAL_VERSION);
    match record {
        WalRecord::CreateTable {
            name,
            columns,
            spec,
            workload,
            data,
        } => {
            payload.push(OP_CREATE_TABLE);
            put_string(&mut payload, name);
            put_u32(&mut payload, columns.len() as u32);
            for c in columns {
                put_string(&mut payload, c);
            }
            put_u32(&mut payload, spec.len() as u32);
            payload.extend_from_slice(spec);
            put_u32(&mut payload, workload.len() as u32);
            for q in workload {
                put_query(&mut payload, q);
            }
            put_dataset(&mut payload, data);
        }
        WalRecord::InsertBatch { table, rows } => {
            payload.push(OP_INSERT_BATCH);
            put_string(&mut payload, table);
            put_dataset(&mut payload, rows);
        }
        WalRecord::Delete { table, predicates } => {
            payload.push(OP_DELETE);
            put_string(&mut payload, table);
            put_u32(&mut payload, predicates.len() as u32);
            for p in predicates {
                put_predicate(&mut payload, p);
            }
        }
        WalRecord::RegisterView { table, name, query } => {
            payload.push(OP_REGISTER_VIEW);
            put_string(&mut payload, table);
            put_string(&mut payload, name);
            put_query(&mut payload, query);
        }
        WalRecord::Checkpoint { generation, tables } => {
            payload.push(OP_CHECKPOINT);
            put_u64(&mut payload, *generation);
            put_u32(&mut payload, tables.len() as u32);
            for t in tables {
                put_string(&mut payload, t);
            }
        }
    }
    let mut frame = Vec::with_capacity(HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    frame.extend_from_slice(&checksum(&payload).to_be_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes frames from the front of `bytes`, stopping at the first torn or
/// corrupt one. Returns the records plus the byte length of the valid
/// prefix.
pub fn decode_frames(bytes: &[u8]) -> (Vec<WalRecord>, usize) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while let Some(header) = bytes.get(pos..pos + HEADER_BYTES) {
        let len = u32::from_be_bytes(header[..4].try_into().unwrap()) as usize;
        let sum = u32::from_be_bytes(header[4..8].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            break;
        }
        let Some(payload) = bytes.get(pos + HEADER_BYTES..pos + HEADER_BYTES + len) else {
            break;
        };
        if checksum(payload) != sum {
            break;
        }
        let Some(record) = decode_payload(payload) else {
            break;
        };
        records.push(record);
        pos += HEADER_BYTES + len;
    }
    (records, pos)
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    if r.u8()? != WAL_VERSION {
        return None;
    }
    let opcode = r.u8()?;
    let record = match opcode {
        OP_CREATE_TABLE => {
            let name = r.string()?;
            let ncols = r.u32()? as usize;
            let mut columns = Vec::with_capacity(ncols.min(4096));
            for _ in 0..ncols {
                columns.push(r.string()?);
            }
            let spec_len = r.u32()? as usize;
            let spec = r.bytes(spec_len)?.to_vec();
            let nq = r.u32()? as usize;
            let mut workload = Vec::with_capacity(nq.min(4096));
            for _ in 0..nq {
                workload.push(r.query()?);
            }
            let data = r.dataset()?;
            WalRecord::CreateTable {
                name,
                columns,
                spec,
                workload,
                data,
            }
        }
        OP_INSERT_BATCH => {
            let table = r.string()?;
            let rows = r.dataset()?;
            WalRecord::InsertBatch { table, rows }
        }
        OP_DELETE => {
            let table = r.string()?;
            let np = r.u32()? as usize;
            let mut predicates = Vec::with_capacity(np.min(4096));
            for _ in 0..np {
                predicates.push(r.predicate()?);
            }
            WalRecord::Delete { table, predicates }
        }
        OP_REGISTER_VIEW => {
            let table = r.string()?;
            let name = r.string()?;
            let query = r.query()?;
            WalRecord::RegisterView { table, name, query }
        }
        OP_CHECKPOINT => {
            let generation = r.u64()?;
            let nt = r.u32()? as usize;
            let mut tables = Vec::with_capacity(nt.min(4096));
            for _ in 0..nt {
                tables.push(r.string()?);
            }
            WalRecord::Checkpoint { generation, tables }
        }
        _ => return None,
    };
    // Strict: a payload with trailing bytes after a complete body is corrupt.
    if r.pos != payload.len() {
        return None;
    }
    Some(record)
}

// --- body codec -----------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_string(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_predicate(out: &mut Vec<u8>, p: &Predicate) {
    put_u32(out, p.dim as u32);
    put_u64(out, p.lo);
    put_u64(out, p.hi);
}

fn put_query(out: &mut Vec<u8>, q: &Query) {
    put_u32(out, q.predicates().len() as u32);
    for p in q.predicates() {
        put_predicate(out, p);
    }
    let (tag, dim) = match q.aggregation() {
        Aggregation::Count => (0u8, 0usize),
        Aggregation::Sum(d) => (1, d),
        Aggregation::Min(d) => (2, d),
        Aggregation::Max(d) => (3, d),
        Aggregation::Avg(d) => (4, d),
    };
    out.push(tag);
    put_u32(out, dim as u32);
}

fn put_dataset(out: &mut Vec<u8>, data: &Dataset) {
    put_u32(out, data.num_dims() as u32);
    put_u64(out, data.len() as u64);
    for d in 0..data.num_dims() {
        for &v in data.column(d) {
            put_u64(out, v);
        }
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        let b = self.bytes(1)?;
        Some(b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_be_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_be_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let s = self.bytes(len)?;
        String::from_utf8(s.to_vec()).ok()
    }

    fn predicate(&mut self) -> Option<Predicate> {
        let dim = self.u32()? as usize;
        let lo = self.u64()?;
        let hi = self.u64()?;
        Predicate::range(dim, lo, hi).ok()
    }

    fn query(&mut self) -> Option<Query> {
        let np = self.u32()? as usize;
        let mut preds = Vec::with_capacity(np.min(4096));
        for _ in 0..np {
            preds.push(self.predicate()?);
        }
        let tag = self.u8()?;
        let dim = self.u32()? as usize;
        let agg = match tag {
            0 => Aggregation::Count,
            1 => Aggregation::Sum(dim),
            2 => Aggregation::Min(dim),
            3 => Aggregation::Max(dim),
            4 => Aggregation::Avg(dim),
            _ => return None,
        };
        Query::new(preds, agg).ok()
    }

    fn dataset(&mut self) -> Option<Dataset> {
        let dims = self.u32()? as usize;
        let rows = self.u64()? as usize;
        // Reject counts the remaining buffer cannot possibly hold before
        // allocating columns.
        let need = dims.checked_mul(rows)?.checked_mul(8)?;
        if self.buf.len() - self.pos < need {
            return None;
        }
        let mut columns: Vec<Vec<Value>> = Vec::with_capacity(dims);
        for _ in 0..dims {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                col.push(self.u64()?);
            }
            columns.push(col);
        }
        // `Dataset` requires at least one column, so 0 dims is corrupt.
        Dataset::from_columns(columns).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_core::Aggregation;

    /// Deterministic splitmix64 so the round-trip loop is seeded and
    /// reproducible without any external RNG dependency.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    fn random_dataset(rng: &mut Rng, dims: usize, rows: usize) -> Dataset {
        let cols = (0..dims)
            .map(|_| (0..rows).map(|_| rng.below(1_000_000)).collect())
            .collect();
        Dataset::from_columns(cols).unwrap()
    }

    fn random_query(rng: &mut Rng, dims: usize) -> Query {
        let np = rng.below(dims as u64) as usize + 1;
        let preds = (0..np)
            .map(|i| {
                let lo = rng.below(1000);
                Predicate::range(i, lo, lo + rng.below(1000)).unwrap()
            })
            .collect();
        let d = rng.below(dims as u64) as usize;
        let agg = match rng.below(5) {
            0 => Aggregation::Count,
            1 => Aggregation::Sum(d),
            2 => Aggregation::Min(d),
            3 => Aggregation::Max(d),
            _ => Aggregation::Avg(d),
        };
        Query::new(preds, agg).unwrap()
    }

    fn random_record(rng: &mut Rng) -> WalRecord {
        match rng.below(5) {
            0 => {
                let dims = rng.below(4) as usize + 1;
                let nspec = rng.below(40);
                let nq = rng.below(5);
                let rows = rng.below(50) as usize;
                WalRecord::CreateTable {
                    name: format!("t{}", rng.below(100)),
                    columns: (0..dims).map(|d| format!("c{d}")).collect(),
                    spec: (0..nspec).map(|_| rng.next() as u8).collect(),
                    workload: (0..nq).map(|_| random_query(rng, dims)).collect(),
                    data: random_dataset(rng, dims, rows),
                }
            }
            1 => {
                let dims = rng.below(4) as usize + 1;
                let rows = rng.below(30) as usize + 1;
                WalRecord::InsertBatch {
                    table: format!("t{}", rng.below(100)),
                    rows: random_dataset(rng, dims, rows),
                }
            }
            2 => WalRecord::Delete {
                table: format!("t{}", rng.below(100)),
                predicates: (0..rng.below(4) + 1)
                    .map(|i| {
                        let lo = rng.below(1000);
                        Predicate::range(i as usize, lo, lo + rng.below(1000)).unwrap()
                    })
                    .collect(),
            },
            3 => {
                let preds = rng.below(4) as usize + 1;
                WalRecord::RegisterView {
                    table: format!("t{}", rng.below(100)),
                    name: format!("v{}", rng.below(100)),
                    query: random_query(rng, preds),
                }
            }
            _ => WalRecord::Checkpoint {
                generation: rng.next(),
                tables: (0..rng.below(5)).map(|i| format!("t{i}")).collect(),
            },
        }
    }

    #[test]
    fn every_variant_round_trips_seeded() {
        let mut rng = Rng(0xD1CE);
        for _ in 0..200 {
            let rec = random_record(&mut rng);
            let frame = encode_record(&rec);
            let (decoded, valid) = decode_frames(&frame);
            assert_eq!(valid, frame.len());
            assert_eq!(decoded, vec![rec]);
        }
    }

    #[test]
    fn truncation_at_every_cut_point_keeps_exact_prefix() {
        let mut rng = Rng(7);
        let records: Vec<WalRecord> = (0..4).map(|_| random_record(&mut rng)).collect();
        let frames: Vec<Vec<u8>> = records.iter().map(encode_record).collect();
        let mut log = Vec::new();
        let mut boundaries = vec![0usize];
        for f in &frames {
            log.extend_from_slice(f);
            boundaries.push(log.len());
        }
        for cut in 0..=log.len() {
            let (decoded, valid) = decode_frames(&log[..cut]);
            // The valid prefix is the last record boundary at or before the
            // cut; every record before it decodes bit-identically.
            let expect_n = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(valid, boundaries[expect_n], "cut at {cut}");
            assert_eq!(decoded.len(), expect_n, "cut at {cut}");
            assert_eq!(decoded[..], records[..expect_n], "cut at {cut}");
        }
    }

    #[test]
    fn bit_flips_are_rejected_everywhere() {
        let mut rng = Rng(99);
        let rec = random_record(&mut rng);
        let good = encode_record(&rec);
        let follow = encode_record(&WalRecord::Checkpoint {
            generation: 0,
            tables: vec![],
        });
        for byte in 0..good.len() {
            for bit in [0u8, 3, 7] {
                let mut log = good.clone();
                log[byte] ^= 1 << bit;
                log.extend_from_slice(&follow);
                let (decoded, valid) = decode_frames(&log);
                // Flipping any bit of the first frame must not yield the
                // original record; the log is truncated at the corruption
                // (a flipped length prefix may at most resynchronize to
                // garbage that fails the checksum anyway).
                assert_ne!(decoded.first(), Some(&rec), "byte {byte} bit {bit}");
                assert!(
                    valid == 0 || decoded.first() != Some(&rec),
                    "byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = vec![0u8; 16];
        frame[..4].copy_from_slice(&(u32::MAX).to_be_bytes());
        let (decoded, valid) = decode_frames(&frame);
        assert!(decoded.is_empty());
        assert_eq!(valid, 0);
    }

    #[test]
    fn unknown_version_and_opcode_truncate() {
        let rec = WalRecord::Checkpoint {
            generation: 1,
            tables: vec!["t".into()],
        };
        let mut frame = encode_record(&rec);
        frame[HEADER_BYTES] = 2; // version byte
        let sum = checksum(&frame[HEADER_BYTES..]);
        frame[4..8].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(decode_frames(&frame), (vec![], 0));

        let mut frame = encode_record(&rec);
        frame[HEADER_BYTES + 1] = 0x7f; // opcode byte
        let sum = checksum(&frame[HEADER_BYTES..]);
        frame[4..8].copy_from_slice(&sum.to_be_bytes());
        assert_eq!(decode_frames(&frame), (vec![], 0));
    }

    #[test]
    fn trailing_bytes_in_body_are_corrupt() {
        let rec = WalRecord::Checkpoint {
            generation: 0,
            tables: vec![],
        };
        let mut payload = encode_record(&rec)[HEADER_BYTES..].to_vec();
        payload.push(0);
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        frame.extend_from_slice(&checksum(&payload).to_be_bytes());
        frame.extend_from_slice(&payload);
        assert_eq!(decode_frames(&frame), (vec![], 0));
    }

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tsunami_wal_unit_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}_{}.log", std::process::id()))
    }

    #[test]
    fn wal_file_append_commit_replay() {
        let path = temp_wal("roundtrip");
        let mut rng = Rng(42);
        let records: Vec<WalRecord> = (0..6).map(|_| random_record(&mut rng)).collect();
        {
            let mut wal = Wal::create(&path).unwrap();
            for r in &records {
                wal.append_commit(r).unwrap();
            }
            assert_eq!(wal.synced_len(), wal.len());
        }
        let (replayed, valid) = replay(&path).unwrap();
        assert_eq!(replayed, records);
        assert_eq!(valid, std::fs::metadata(&path).unwrap().len());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let path = temp_wal("missing_never_created");
        let _ = std::fs::remove_file(&path);
        assert_eq!(replay(&path).unwrap(), (vec![], 0));
    }

    #[test]
    fn mid_record_crash_leaves_recoverable_prefix() {
        let path = temp_wal("mid_record");
        let rec = WalRecord::Delete {
            table: "t".into(),
            predicates: vec![Predicate::eq(0, 5)],
        };
        let mut wal = Wal::create(&path).unwrap();
        wal.append_commit(&rec).unwrap();
        let committed = wal.len();
        wal.set_crash_point(CrashPoint::MidRecord);
        assert!(matches!(wal.append(&rec), Err(TsunamiError::Durability(_))));
        drop(wal);
        // The file ends in a torn record; replay amputates it.
        assert!(std::fs::metadata(&path).unwrap().len() > committed);
        let (replayed, valid) = replay(&path).unwrap();
        assert_eq!(replayed, vec![rec.clone()]);
        assert_eq!(valid, committed);
        // Reopening truncates the tail and appending works again.
        let mut wal = Wal::open_append(&path, valid).unwrap();
        wal.append_commit(&rec).unwrap();
        let (replayed, _) = replay(&path).unwrap();
        assert_eq!(replayed, vec![rec.clone(), rec]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn before_sync_crash_loses_exactly_the_unsynced_suffix() {
        let path = temp_wal("before_sync");
        let rec = WalRecord::Checkpoint {
            generation: 2,
            tables: vec!["a".into()],
        };
        let mut wal = Wal::create(&path).unwrap();
        wal.append_commit(&rec).unwrap();
        let committed = wal.len();
        wal.set_crash_point(CrashPoint::BeforeSync);
        wal.append(&rec).unwrap();
        assert!(matches!(wal.commit(), Err(TsunamiError::Durability(_))));
        drop(wal);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), committed);
        let (replayed, valid) = replay(&path).unwrap();
        assert_eq!(replayed, vec![rec]);
        assert_eq!(valid, committed);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncate_to_drops_absorbed_prefix() {
        let path = temp_wal("truncate");
        let rec = WalRecord::Checkpoint {
            generation: 0,
            tables: vec![],
        };
        let mut wal = Wal::create(&path).unwrap();
        wal.append_commit(&rec).unwrap();
        wal.truncate_to(0).unwrap();
        assert!(wal.is_empty());
        assert_eq!(replay(&path).unwrap(), (vec![], 0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_matches_reference_vectors() {
        // Reference FNV-1a 32-bit values.
        assert_eq!(checksum(b""), 0x811c_9dc5);
        assert_eq!(checksum(b"a"), 0xe40c_292c);
        assert_eq!(checksum(b"foobar"), 0xbf9c_f968);
    }
}
