//! Benchmark harness regenerating every table and figure of the Tsunami
//! paper's evaluation (§6).
//!
//! The [`experiments`] module contains one function per table/figure; the
//! `repro` binary dispatches to them. Absolute numbers differ from the paper
//! (different hardware, synthetic data, laptop-scale sizes) but the *shape*
//! of each result — which index wins, by roughly what factor, and where the
//! crossovers fall — is what the experiments reproduce.

pub mod experiments;
pub mod harness;
pub mod table;

pub use harness::{HarnessConfig, IndexReport};
pub use table::Table;
