//! Benchmark harness regenerating every table and figure of the Tsunami
//! paper's evaluation (§6).
//!
//! The [`experiments`] module contains one function per table/figure; the
//! `repro` binary dispatches to them. Absolute numbers differ from the paper
//! (different hardware, synthetic data, laptop-scale sizes) but the *shape*
//! of each result — which index wins, by roughly what factor, and where the
//! crossovers fall — is what the experiments reproduce.
//!
//! All query-execution experiments run through the `tsunami-engine`
//! `Database` facade: one table per index family, measured through table
//! handles. `fig7sched` additionally sweeps the engine's concurrent query
//! [`tsunami_engine::Scheduler`] (multi-client throughput, QPS vs workers).

pub mod experiments;
pub mod harness;
pub mod net;
pub mod table;
pub mod wal;

pub use harness::{HarnessConfig, IndexReport};
pub use table::Table;
