//! One function per table/figure of the paper's evaluation (§6).
//!
//! Every function prints (and returns) a plain-text table whose rows mirror
//! the corresponding table or figure series in the paper.

use crate::harness::{
    build_all_indexes, build_learned_indexes, build_variant, build_with_optimizer, measure,
    measure_parallel, report, HarnessConfig,
};
use crate::table::{fmt_f64, Table};

use std::time::Instant;

use tsunami_core::{CostModel, MultiDimIndex};
use tsunami_flood::FloodIndex;
use tsunami_index::augmented_grid::{optimize_layout, OptimizerKind};
use tsunami_index::{IndexVariant, TsunamiIndex};
use tsunami_workloads::{synthetic, tpch, DatasetBundle};

fn standard_bundles(config: &HarnessConfig) -> Vec<DatasetBundle> {
    DatasetBundle::standard(config.rows, config.queries_per_type, config.seed)
}

/// Table 3: dataset and query characteristics.
pub fn table3(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Table 3: Dataset and query characteristics (scaled reproduction)",
        &[
            "dataset",
            "records",
            "query types",
            "dimensions",
            "size (MiB)",
            "avg selectivity %",
        ],
    );
    for b in &bundles {
        t.add_row(vec![
            b.name.to_string(),
            b.data.len().to_string(),
            b.query_types.to_string(),
            b.data.num_dims().to_string(),
            fmt_f64(b.size_gib() * 1024.0),
            fmt_f64(b.average_selectivity() * 100.0),
        ]);
    }
    finish(t)
}

/// Table 4: index statistics after optimization (Tsunami structure vs Flood
/// cell counts).
pub fn table4(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Table 4: Index statistics after optimization",
        &[
            "dataset",
            "GT nodes",
            "GT depth",
            "leaf regions",
            "min pts/region",
            "median pts/region",
            "max pts/region",
            "avg FMs/region",
            "avg CCDFs/region",
            "Tsunami cells",
            "Flood cells",
        ],
    );
    let cost = CostModel::default();
    for b in &bundles {
        let tsunami =
            TsunamiIndex::build_with_cost(&b.data, &b.workload, &cost, &config.tsunami_config())
                .expect("tsunami build");
        let flood = FloodIndex::build(&b.data, &b.workload, &cost, &config.flood_config());
        let s = tsunami.stats();
        t.add_row(vec![
            b.name.to_string(),
            s.num_grid_tree_nodes.to_string(),
            s.grid_tree_depth.to_string(),
            s.num_leaf_regions.to_string(),
            s.min_points_per_region.to_string(),
            s.median_points_per_region.to_string(),
            s.max_points_per_region.to_string(),
            fmt_f64(s.avg_fms_per_region),
            fmt_f64(s.avg_ccdfs_per_region),
            s.total_grid_cells.to_string(),
            flood.num_cells().to_string(),
        ]);
    }
    finish(t)
}

/// Fig 7: average query latency / throughput of every index on every dataset,
/// with the shared executor's scan counters (points and contiguous ranges).
pub fn fig7(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 7: Query performance (average latency in microseconds; lower is better)",
        &[
            "dataset",
            "index",
            "avg query (us)",
            "throughput (q/s)",
            "avg points scanned",
            "avg ranges scanned",
        ],
    );
    for b in &bundles {
        let indexes = build_all_indexes(&b.data, &b.workload, config);
        for idx in &indexes {
            let r = report(idx.as_ref(), &b.workload);
            t.add_row(vec![
                b.name.to_string(),
                r.name,
                fmt_f64(r.avg_query_us),
                fmt_f64(r.throughput_qps),
                fmt_f64(r.avg_points_scanned),
                fmt_f64(r.avg_ranges_scanned),
            ]);
        }
    }
    finish(t)
}

/// Parallel-executor drill-down: serial vs multi-threaded latency of the
/// learned indexes, with the executor counter invariant (parallel counters
/// equal serial counters) checked on every dataset.
pub fn fig7_parallel(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut t = Table::new(
        "Fig 7 (parallel): Serial vs parallel executor (avg query us)",
        &[
            "dataset",
            "index",
            "serial (us)",
            "parallel (us)",
            "threads",
            "avg points scanned",
        ],
    );
    for b in &bundles {
        let indexes = build_learned_indexes(&b.data, &b.workload, config);
        for idx in &indexes {
            let serial = measure(idx.as_ref(), &b.workload);
            let parallel = measure_parallel(idx.as_ref(), &b.workload, threads);
            assert_eq!(
                (serial.avg_points_scanned, serial.avg_ranges_scanned),
                (parallel.avg_points_scanned, parallel.avg_ranges_scanned),
                "parallel executor counters diverged from serial on {}",
                b.name
            );
            t.add_row(vec![
                b.name.to_string(),
                idx.name().to_string(),
                fmt_f64(serial.avg_query_us),
                fmt_f64(parallel.avg_query_us),
                threads.to_string(),
                fmt_f64(serial.avg_points_scanned),
            ]);
        }
    }
    finish(t)
}

/// Fig 8: index sizes.
pub fn fig8(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 8: Index size in KiB (excluding data; lower is better)",
        &["dataset", "index", "size (KiB)"],
    );
    for b in &bundles {
        let indexes = build_all_indexes(&b.data, &b.workload, config);
        for idx in &indexes {
            t.add_row(vec![
                b.name.to_string(),
                idx.name().to_string(),
                fmt_f64(idx.size_bytes() as f64 / 1024.0),
            ]);
        }
    }
    finish(t)
}

/// Fig 9a: adaptability to workload shift — query latency before the shift,
/// after the shift (stale layout), and after re-optimizing for the new
/// workload.
pub fn fig9a(config: &HarnessConfig) -> String {
    let data = tpch::generate(config.rows, config.seed);
    let original = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
    let shifted = tpch::shifted_workload(&data, config.queries_per_type, config.seed ^ 20);
    let cost = CostModel::default();

    let mut t = Table::new(
        "Fig 9a: Adaptability to workload shift (TPC-H; avg query us)",
        &[
            "index",
            "original workload",
            "after shift (stale layout)",
            "after re-optimization",
            "re-opt time (s)",
        ],
    );

    // Tsunami.
    let tsunami = TsunamiIndex::build_with_cost(&data, &original, &cost, &config.tsunami_config())
        .expect("tsunami build");
    let before = measure(&tsunami, &original).avg_query_us;
    let stale = measure(&tsunami, &shifted).avg_query_us;
    let t0 = Instant::now();
    let tsunami2 = TsunamiIndex::build_with_cost(&data, &shifted, &cost, &config.tsunami_config())
        .expect("tsunami rebuild");
    let reopt = t0.elapsed().as_secs_f64();
    let after = measure(&tsunami2, &shifted).avg_query_us;
    t.add_row(vec![
        "Tsunami".into(),
        fmt_f64(before),
        fmt_f64(stale),
        fmt_f64(after),
        fmt_f64(reopt),
    ]);

    // Flood.
    let flood = FloodIndex::build(&data, &original, &cost, &config.flood_config());
    let before = measure(&flood, &original).avg_query_us;
    let stale = measure(&flood, &shifted).avg_query_us;
    let t0 = Instant::now();
    let flood2 = FloodIndex::build(&data, &shifted, &cost, &config.flood_config());
    let reopt = t0.elapsed().as_secs_f64();
    let after = measure(&flood2, &shifted).avg_query_us;
    t.add_row(vec![
        "Flood".into(),
        fmt_f64(before),
        fmt_f64(stale),
        fmt_f64(after),
        fmt_f64(reopt),
    ]);
    finish(t)
}

/// Fig 9b: index creation time, split into data-sorting and optimization.
pub fn fig9b(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 9b: Index creation time (seconds; sort + optimize)",
        &["dataset", "index", "sort (s)", "optimize (s)", "total (s)"],
    );
    for b in &bundles {
        let indexes = build_all_indexes(&b.data, &b.workload, config);
        for idx in &indexes {
            let timing = idx.build_timing();
            t.add_row(vec![
                b.name.to_string(),
                idx.name().to_string(),
                fmt_f64(timing.sort_secs),
                fmt_f64(timing.optimize_secs),
                fmt_f64(timing.total_secs()),
            ]);
        }
    }
    finish(t)
}

/// Fig 10: scalability with dimensionality, on uncorrelated and correlated
/// synthetic data.
pub fn fig10(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 10: Dimensionality scaling (avg query us, learned indexes)",
        &[
            "group",
            "dims",
            "index",
            "avg query (us)",
            "avg points scanned",
        ],
    );
    let rows = config.rows.min(40_000);
    for &dims in &[4usize, 8, 12, 16, 20] {
        for (group, data) in [
            (
                "uncorrelated",
                synthetic::uncorrelated(rows, dims, config.seed),
            ),
            ("correlated", synthetic::correlated(rows, dims, config.seed)),
        ] {
            let workload =
                synthetic::workload(&data, config.queries_per_type, config.seed ^ dims as u64);
            let indexes = build_learned_indexes(&data, &workload, config);
            for idx in &indexes {
                let r = report(idx.as_ref(), &workload);
                t.add_row(vec![
                    group.to_string(),
                    dims.to_string(),
                    r.name,
                    fmt_f64(r.avg_query_us),
                    fmt_f64(r.avg_points_scanned),
                ]);
            }
        }
    }
    finish(t)
}

/// Fig 11a: scalability with dataset size (TPC-H workload).
pub fn fig11a(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 11a: Dataset-size scaling (TPC-H; avg query us)",
        &["rows", "index", "avg query (us)", "avg points scanned"],
    );
    let sizes = [
        config.rows / 4,
        config.rows / 2,
        config.rows,
        config.rows * 2,
    ];
    for &rows in &sizes {
        let data = tpch::generate(rows, config.seed);
        let workload = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
        let indexes = build_learned_indexes(&data, &workload, config);
        for idx in &indexes {
            let r = report(idx.as_ref(), &workload);
            t.add_row(vec![
                rows.to_string(),
                r.name,
                fmt_f64(r.avg_query_us),
                fmt_f64(r.avg_points_scanned),
            ]);
        }
    }
    finish(t)
}

/// Fig 11b: query-selectivity scaling on the 8-d correlated synthetic
/// dataset.
pub fn fig11b(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 11b: Selectivity scaling (8-d correlated synthetic; avg query us)",
        &[
            "selectivity scale",
            "avg selectivity %",
            "index",
            "avg query (us)",
        ],
    );
    let rows = config.rows.min(50_000);
    let data = synthetic::correlated(rows, 8, config.seed);
    let base = synthetic::workload(&data, config.queries_per_type, config.seed ^ 7);
    for &factor in &[0.1f64, 0.5, 1.0, 4.0, 16.0] {
        let workload = synthetic::scale_selectivity(&base, factor);
        let avg_sel = workload.average_selectivity(&data);
        let indexes = build_learned_indexes(&data, &workload, config);
        for idx in &indexes {
            let r = report(idx.as_ref(), &workload);
            t.add_row(vec![
                fmt_f64(factor),
                fmt_f64(avg_sel * 100.0),
                r.name,
                fmt_f64(r.avg_query_us),
            ]);
        }
    }
    finish(t)
}

/// Fig 12a: component drill-down — Flood vs Augmented-Grid-only vs
/// Grid-Tree-only vs full Tsunami.
pub fn fig12a(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 12a: Component drill-down (avg query us)",
        &["dataset", "index", "avg query (us)"],
    );
    let cost = CostModel::default();
    for b in &bundles {
        let flood = FloodIndex::build(&b.data, &b.workload, &cost, &config.flood_config());
        let flood_us = measure(&flood, &b.workload).avg_query_us;
        t.add_row(vec![b.name.to_string(), "Flood".into(), fmt_f64(flood_us)]);
        for variant in [
            IndexVariant::AugmentedGridOnly,
            IndexVariant::GridTreeOnly,
            IndexVariant::Full,
        ] {
            let idx = build_variant(&b.data, &b.workload, config, variant);
            let us = measure(&idx, &b.workload).avg_query_us;
            t.add_row(vec![
                b.name.to_string(),
                idx.name().to_string(),
                fmt_f64(us),
            ]);
        }
    }
    finish(t)
}

/// Fig 12b: optimizer comparison — predicted cost and actual query time of
/// the Augmented Grid produced by AGD, GD, Black-Box, and AGD with naive
/// initialization.
pub fn fig12b(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 12b: Augmented Grid optimizer comparison (whole-space grid)",
        &[
            "dataset",
            "optimizer",
            "predicted cost",
            "actual avg query (us)",
            "layouts evaluated",
        ],
    );
    let cost = CostModel::default();
    for b in &bundles {
        for (label, kind) in [
            ("AGD", OptimizerKind::Adaptive),
            ("GD", OptimizerKind::GradientOnly),
            ("BlackBox", OptimizerKind::BlackBox),
            ("AGD-NI", OptimizerKind::AdaptiveNaiveInit),
        ] {
            let layout =
                optimize_layout(&b.data, &b.workload, &cost, &config.tsunami_config(), kind);
            let idx = build_with_optimizer(&b.data, &b.workload, config, kind);
            let us = measure(&idx, &b.workload).avg_query_us;
            t.add_row(vec![
                b.name.to_string(),
                label.to_string(),
                fmt_f64(layout.predicted_cost),
                fmt_f64(us),
                layout.evaluations.to_string(),
            ]);
        }
    }
    finish(t)
}

/// Runs every experiment in sequence and returns the concatenated output.
pub fn all(config: &HarnessConfig) -> String {
    let mut out = String::new();
    for (name, f) in experiments() {
        let _ = name;
        out.push_str(&f(config));
        out.push('\n');
    }
    out
}

/// The registry of experiment names and functions, in paper order.
#[allow(clippy::type_complexity)]
pub fn experiments() -> Vec<(&'static str, fn(&HarnessConfig) -> String)> {
    vec![
        ("table3", table3 as fn(&HarnessConfig) -> String),
        ("table4", table4),
        ("fig7", fig7),
        ("fig7par", fig7_parallel),
        ("fig8", fig8),
        ("fig9a", fig9a),
        ("fig9b", fig9b),
        ("fig10", fig10),
        ("fig11a", fig11a),
        ("fig11b", fig11b),
        ("fig12a", fig12a),
        ("fig12b", fig12b),
    ]
}

fn finish(t: Table) -> String {
    let rendered = t.render();
    println!("{rendered}");
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            rows: 2_500,
            queries_per_type: 3,
            seed: 5,
        }
    }

    #[test]
    fn table3_lists_four_datasets() {
        let out = table3(&tiny());
        for name in ["TPC-H", "Taxi", "Perfmon", "Stocks"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn experiment_registry_covers_every_table_and_figure() {
        let names: Vec<&str> = experiments().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "table3", "table4", "fig7", "fig7par", "fig8", "fig9a", "fig9b", "fig10", "fig11a",
                "fig11b", "fig12a", "fig12b"
            ]
        );
    }

    #[test]
    fn fig12a_reports_all_variants_for_each_dataset() {
        let mut cfg = tiny();
        cfg.rows = 2_000;
        let out = fig12a(&cfg);
        for label in ["Flood", "AugmentedGrid-only", "GridTree-only", "Tsunami"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }
}
