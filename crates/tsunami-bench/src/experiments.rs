//! One function per table/figure of the paper's evaluation (§6).
//!
//! Every function prints (and returns) a plain-text table whose rows mirror
//! the corresponding table or figure series in the paper. Query-execution
//! experiments go through the `tsunami-engine` [`tsunami_engine::Database`]
//! facade — tables are registered per index family and measured through
//! their handles. Structure-introspection rows (Table 4's Grid Tree
//! statistics, Fig 12b's predicted layout costs) still build the concrete
//! types directly, since those statistics are not part of the uniform
//! `MultiDimIndex` surface.

use crate::harness::{
    database_for, database_for_bundle, database_for_named, measure, measure_parallel,
    measure_spawn, report, variant_specs, HarnessConfig,
};
use crate::table::{fmt_f64, Table};

use std::time::Instant;

use tsunami_core::CostModel;
use tsunami_engine::{IndexSpec, Scheduler};
use tsunami_flood::FloodIndex;
use tsunami_index::augmented_grid::{optimize_layout, OptimizerKind};
use tsunami_index::{IndexVariant, TsunamiIndex};
use tsunami_workloads::{synthetic, tpch, DatasetBundle};

fn standard_bundles(config: &HarnessConfig) -> Vec<DatasetBundle> {
    DatasetBundle::standard(config.rows, config.queries_per_type, config.seed)
}

/// Table 3: dataset and query characteristics.
pub fn table3(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Table 3: Dataset and query characteristics (scaled reproduction)",
        &[
            "dataset",
            "records",
            "query types",
            "dimensions",
            "size (MiB)",
            "avg selectivity %",
        ],
    );
    for b in &bundles {
        t.add_row(vec![
            b.name.to_string(),
            b.data.len().to_string(),
            b.query_types.to_string(),
            b.data.num_dims().to_string(),
            fmt_f64(b.size_gib() * 1024.0),
            fmt_f64(b.average_selectivity() * 100.0),
        ]);
    }
    finish(t)
}

/// Table 4: index statistics after optimization (Tsunami structure vs Flood
/// cell counts).
pub fn table4(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Table 4: Index statistics after optimization",
        &[
            "dataset",
            "GT nodes",
            "GT depth",
            "leaf regions",
            "min pts/region",
            "median pts/region",
            "max pts/region",
            "avg FMs/region",
            "avg CCDFs/region",
            "Tsunami cells",
            "Flood cells",
        ],
    );
    let cost = CostModel::default();
    for b in &bundles {
        let tsunami =
            TsunamiIndex::build_with_cost(&b.data, &b.workload, &cost, &config.tsunami_config())
                .expect("tsunami build");
        let flood = FloodIndex::build(&b.data, &b.workload, &cost, &config.flood_config());
        let s = tsunami.stats();
        t.add_row(vec![
            b.name.to_string(),
            s.num_grid_tree_nodes.to_string(),
            s.grid_tree_depth.to_string(),
            s.num_leaf_regions.to_string(),
            s.min_points_per_region.to_string(),
            s.median_points_per_region.to_string(),
            s.max_points_per_region.to_string(),
            fmt_f64(s.avg_fms_per_region),
            fmt_f64(s.avg_ccdfs_per_region),
            s.total_grid_cells.to_string(),
            flood.num_cells().to_string(),
        ]);
    }
    finish(t)
}

/// Fig 7: average query latency / throughput of every index on every dataset,
/// with the shared executor's scan counters (points and contiguous ranges).
pub fn fig7(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 7: Query performance (average latency in microseconds; lower is better)",
        &[
            "dataset",
            "index",
            "avg query (us)",
            "throughput (q/s)",
            "avg points scanned",
            "avg ranges scanned",
        ],
    );
    for b in &bundles {
        let db = database_for_bundle(b, &config.all_specs());
        for table in db.tables() {
            let r = report(table, &b.workload);
            t.add_row(vec![
                b.name.to_string(),
                r.name,
                fmt_f64(r.avg_query_us),
                fmt_f64(r.throughput_qps),
                fmt_f64(r.avg_points_scanned),
                fmt_f64(r.avg_ranges_scanned),
            ]);
        }
    }
    finish(t)
}

/// Parallel-executor drill-down: serial vs spawn-per-call vs the persistent
/// work-stealing pool on the learned indexes, with the executor counter
/// invariant (parallel counters equal serial counters) checked for both
/// parallel paths on every dataset. The spawn column is the pre-pool
/// baseline (`execute_plan_spawn_tiered`, kept bench-only); the pooled
/// column is what `execute_parallel` actually runs in production. The
/// machine-readable results land in `BENCH_pool.json` (path overridable via
/// the `BENCH_POOL_JSON` env var) so the pool's perf trajectory is tracked
/// across PRs.
pub fn fig7_parallel(config: &HarnessConfig) -> String {
    let path = std::env::var("BENCH_POOL_JSON").unwrap_or_else(|_| "BENCH_pool.json".to_string());
    fig7_parallel_impl(config, Some(std::path::Path::new(&path)))
}

fn fig7_parallel_impl(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    let bundles = standard_bundles(config);
    let pool = tsunami_core::exec::pool::global();
    let threads = pool.worker_count();
    let morsel_rows = pool.morsel_rows();
    let mut t = Table::new(
        "Fig 7 (parallel): Serial vs spawn-per-call vs pooled executor (avg query us)",
        &[
            "dataset",
            "index",
            "serial (us)",
            "spawn (us)",
            "pooled (us)",
            "workers",
            "morsel rows",
            "avg points scanned",
        ],
    );
    // (dataset, index, serial us, spawn us, pooled us)
    let mut entries: Vec<(String, String, f64, f64, f64)> = Vec::new();
    for b in &bundles {
        let db = database_for_bundle(b, &config.learned_specs());
        for table in db.tables() {
            let serial = measure(table.index(), &b.workload);
            let spawn = measure_spawn(table.index(), &b.workload, threads);
            let pooled = measure_parallel(table.index(), &b.workload, threads);
            for (label, parallel) in [("spawn", &spawn), ("pooled", &pooled)] {
                assert_eq!(
                    (serial.avg_points_scanned, serial.avg_ranges_scanned),
                    (parallel.avg_points_scanned, parallel.avg_ranges_scanned),
                    "{label} executor counters diverged from serial on {}",
                    b.name
                );
            }
            t.add_row(vec![
                b.name.to_string(),
                table.name().to_string(),
                fmt_f64(serial.avg_query_us),
                fmt_f64(spawn.avg_query_us),
                fmt_f64(pooled.avg_query_us),
                threads.to_string(),
                morsel_rows.to_string(),
                fmt_f64(serial.avg_points_scanned),
            ]);
            entries.push((
                b.name.to_string(),
                table.name().to_string(),
                serial.avg_query_us,
                spawn.avg_query_us,
                pooled.avg_query_us,
            ));
        }
    }
    if let Some(path) = json_path {
        match write_bench_pool_json(
            path,
            config.rows,
            config.seed,
            threads,
            morsel_rows,
            &entries,
        ) {
            Ok(()) => eprintln!("# fig7par: wrote {}", path.display()),
            Err(e) => eprintln!("# fig7par: could not write {}: {e}", path.display()),
        }
    }
    finish(t)
}

/// Hand-rolled (the workspace is offline — no serde) machine-readable dump
/// of the parallel-executor benchmark: average query latency per
/// (dataset, index) under the serial, spawn-per-call, and pooled executors,
/// plus the pool geometry the run used.
fn write_bench_pool_json(
    path: &std::path::Path,
    rows: usize,
    seed: u64,
    workers: usize,
    morsel_rows: usize,
    entries: &[(String, String, f64, f64, f64)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"fig7par\",\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \
         \"workers\": {workers},\n  \"morsel_rows\": {morsel_rows},\n  \"entries\": [\n"
    ));
    for (i, (dataset, index, serial, spawn, pooled)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"dataset\": \"{dataset}\", \"index\": \"{index}\", \
             \"serial_us\": {serial:.3}, \"spawn_us\": {spawn:.3}, \
             \"pooled_us\": {pooled:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Multi-client throughput: many independent fig7-workload queries executed
/// concurrently by the engine's [`Scheduler`], sweeping the worker count.
/// This measures *inter-query* parallelism over the `Sync` store — the
/// serving-scale complement to `fig7par`'s intra-query parallelism. Since
/// the scheduler became a facade over the process-wide work-stealing pool,
/// "workers" is the cap on concurrent drainer tasks, not a thread count —
/// speedup saturates at `min(workers, pool workers)`. A correctness check
/// compares every scheduler result against serial execution.
pub fn fig7_scheduler(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let pool_workers = tsunami_core::exec::pool::global().worker_count();
    let mut t = Table::new(
        "Fig 7 (scheduler): Multi-client throughput over a Tsunami table (QPS vs workers)",
        &[
            "dataset",
            "workers",
            "batch QPS",
            "speedup vs 1 worker",
            "pool workers",
            "host cores",
        ],
    );
    // A batch large enough to keep every worker busy for a measurable span.
    const MIN_BATCH: usize = 512;
    for b in &bundles {
        let db = database_for_bundle(b, &[IndexSpec::Tsunami(config.tsunami_config())]);
        let table = db.table("Tsunami").expect("registered above");
        let prepared = table.prepare_workload(&b.workload).expect("validated");
        if prepared.is_empty() {
            continue;
        }
        let mut batch = Vec::with_capacity(MIN_BATCH + prepared.len());
        while batch.len() < MIN_BATCH {
            batch.extend(prepared.iter().cloned());
        }
        let mut base_qps = f64::NAN;
        for &workers in &[1usize, 2, 4, 8] {
            let scheduler = Scheduler::new(workers);
            // Warm-up, plus the correctness check: scheduler == serial.
            let warm = scheduler.execute_batch(&prepared).expect("warm-up batch");
            for (result, q) in warm.iter().zip(&prepared) {
                assert_eq!(*result, q.execute(), "scheduler diverged from serial");
            }
            let start = Instant::now();
            let results = scheduler.execute_batch(&batch).expect("measured batch");
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(results.len(), batch.len());
            let qps = batch.len() as f64 / elapsed.max(1e-12);
            if workers == 1 {
                base_qps = qps;
            }
            t.add_row(vec![
                b.name.to_string(),
                workers.to_string(),
                fmt_f64(qps),
                fmt_f64(qps / base_qps),
                pool_workers.to_string(),
                host_cores.to_string(),
            ]);
        }
    }
    finish(t)
}

/// Fig 8: index sizes.
pub fn fig8(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 8: Index size in KiB (excluding data; lower is better)",
        &["dataset", "index", "size (KiB)"],
    );
    for b in &bundles {
        let db = database_for_bundle(b, &config.all_specs());
        for table in db.tables() {
            t.add_row(vec![
                b.name.to_string(),
                table.name().to_string(),
                fmt_f64(table.index().size_bytes() as f64 / 1024.0),
            ]);
        }
    }
    finish(t)
}

/// Fig 9a: adaptability to workload shift — query latency before the shift,
/// after the shift (stale layout), after *incremental* re-optimization
/// (`Database::reoptimize`: Grid Tree and sorted data reused, only shifted
/// regions re-optimized), and after a full from-scratch rebuild
/// (`Database::reindex`). The two time columns are the headline: incremental
/// re-opt should cost a fraction of a rebuild while landing within a few
/// percent of its query latency. Index families without an incremental path
/// (Flood) fall back to a rebuild, so their two time columns match.
pub fn fig9a(config: &HarnessConfig) -> String {
    let data = tpch::generate(config.rows, config.seed);
    let original = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
    let shifted = tpch::shifted_workload(&data, config.queries_per_type, config.seed ^ 20);

    let mut t = Table::new(
        "Fig 9a: Adaptability to workload shift (TPC-H; avg query us)",
        &[
            "index",
            "original workload",
            "after shift (stale layout)",
            "after incremental re-opt",
            "incr re-opt time (s)",
            "after full rebuild",
            "rebuild time (s)",
            "regions re-opt/total",
        ],
    );

    let specs = config.learned_specs();
    let mut db = database_for(&data, &original, &tpch::COLUMNS, &specs);
    for spec in &specs {
        let table = db.table(spec.label()).expect("registered above");
        let before = measure(table.index(), &original).avg_query_us;
        let stale = measure(table.index(), &shifted).avg_query_us;

        // Incremental path first (it needs the stale layout still in the
        // catalog), then the full rebuild over the same stale starting point.
        let t0 = Instant::now();
        let (incremental, report) = db
            .reoptimize_with_report(spec.label(), &shifted, spec)
            .expect("incremental re-optimization for shifted workload");
        let incr_secs = t0.elapsed().as_secs_f64();
        let after_incr = measure(incremental.index(), &shifted).avg_query_us;

        let t0 = Instant::now();
        let fresh = db
            .reindex(spec.label(), &shifted, spec)
            .expect("reindex for shifted workload");
        let rebuild_secs = t0.elapsed().as_secs_f64();
        let after_rebuild = measure(fresh.index(), &shifted).avg_query_us;

        let regions = match &report {
            Some(r) => format!("{}/{}", r.regions_reoptimized, r.regions_total),
            None => "(full)".to_string(),
        };
        t.add_row(vec![
            spec.label().to_string(),
            fmt_f64(before),
            fmt_f64(stale),
            fmt_f64(after_incr),
            fmt_f64(incr_secs),
            fmt_f64(after_rebuild),
            fmt_f64(rebuild_secs),
            regions,
        ]);
    }
    finish(t)
}

/// Fig 9b: index creation time, split into data-sorting and optimization,
/// plus the incremental-ingestion drill-down — ingest-vs-rebuild time and
/// post-ingest query latency across batch sizes, written machine-readably to
/// `BENCH_ingest.json`.
pub fn fig9b(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 9b: Index creation time (seconds; sort + optimize)",
        &["dataset", "index", "sort (s)", "optimize (s)", "total (s)"],
    );
    for b in &bundles {
        let db = database_for_bundle(b, &config.all_specs());
        for table in db.tables() {
            let timing = table.index().build_timing();
            t.add_row(vec![
                b.name.to_string(),
                table.name().to_string(),
                fmt_f64(timing.sort_secs),
                fmt_f64(timing.optimize_secs),
                fmt_f64(timing.total_secs()),
            ]);
        }
    }
    let mut out = finish(t);
    out.push('\n');
    let path =
        std::env::var("BENCH_INGEST_JSON").unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    out.push_str(&fig9b_ingest_impl(
        config,
        Some(std::path::Path::new(&path)),
    ));
    out
}

/// The ingest drill-down: absorb batches of 1/5/10% new TPC-H rows into a
/// built index (`TsunamiIndex::ingest` / `FloodIndex::ingest`) and compare
/// against rebuilding from the full dataset — both the adaptation time and
/// the post-ingest query latency. Every ingested index is cross-checked for
/// bit-identical results against the rebuilt one while measuring.
fn fig9b_ingest_impl(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    use tsunami_core::Dataset;

    let data = tpch::generate(config.rows, config.seed);
    let workload = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
    let cost = CostModel::default();
    let tsunami_config = config.tsunami_config();
    let flood_config = config.flood_config();

    let mut t = Table::new(
        "Fig 9b (ingest): Incremental ingestion vs rebuild (TPC-H)",
        &[
            "index",
            "batch %",
            "batch rows",
            "ingest (s)",
            "rebuild (s)",
            "ingest/rebuild",
            "post-ingest (us)",
            "rebuilt (us)",
        ],
    );
    // (index, batch %, batch rows, ingest s, rebuild s, ingested us, rebuilt us)
    let mut entries: Vec<(&'static str, f64, usize, f64, f64, f64, f64)> = Vec::new();

    let tsunami = TsunamiIndex::build_with_cost(&data, &workload, &cost, &tsunami_config)
        .expect("tsunami build");
    let flood = FloodIndex::build(&data, &workload, &cost, &flood_config);
    for &pct in &[1.0f64, 5.0, 10.0] {
        let m = ((config.rows as f64 * pct / 100.0) as usize).max(1);
        // New rows from the same generator, later in the stream (a disjoint
        // seed would change the distribution; real ingest continues it).
        let grown = tpch::generate(config.rows + m, config.seed);
        let batch = Dataset::from_columns(
            (0..grown.num_dims())
                .map(|d| grown.column(d)[config.rows..].to_vec())
                .collect(),
        )
        .expect("batch columns");

        for family in ["Tsunami", "Flood"] {
            let (ingested, ingest_secs, rebuilt, rebuild_secs): (
                Box<dyn tsunami_core::MultiDimIndex>,
                f64,
                Box<dyn tsunami_core::MultiDimIndex>,
                f64,
            ) = match family {
                "Tsunami" => {
                    let t0 = Instant::now();
                    let (ingested, report) = tsunami
                        .ingest_with_cost(&batch, &cost, &tsunami_config)
                        .expect("tsunami ingest");
                    let ingest_secs = t0.elapsed().as_secs_f64();
                    assert!(
                        !report.rebuilt,
                        "a ≤10% batch must not escalate to a rebuild: {report:?}"
                    );
                    let t0 = Instant::now();
                    let rebuilt =
                        TsunamiIndex::build_with_cost(&grown, &workload, &cost, &tsunami_config)
                            .expect("tsunami rebuild");
                    (
                        Box::new(ingested),
                        ingest_secs,
                        Box::new(rebuilt),
                        t0.elapsed().as_secs_f64(),
                    )
                }
                _ => {
                    let t0 = Instant::now();
                    let ingested = flood.ingest(&batch);
                    let ingest_secs = t0.elapsed().as_secs_f64();
                    let t0 = Instant::now();
                    let rebuilt = FloodIndex::build(&grown, &workload, &cost, &flood_config);
                    (
                        Box::new(ingested),
                        ingest_secs,
                        Box::new(rebuilt),
                        t0.elapsed().as_secs_f64(),
                    )
                }
            };
            // Correctness cross-check doubling as warm-up.
            for q in workload.queries().iter().step_by(5) {
                assert_eq!(
                    ingested.execute(q),
                    rebuilt.execute(q),
                    "{family} ingest diverged from rebuild on {q:?}"
                );
            }
            let ingested_us = measure(ingested.as_ref(), &workload).avg_query_us;
            let rebuilt_us = measure(rebuilt.as_ref(), &workload).avg_query_us;
            t.add_row(vec![
                family.to_string(),
                fmt_f64(pct),
                m.to_string(),
                fmt_f64(ingest_secs),
                fmt_f64(rebuild_secs),
                fmt_f64(ingest_secs / rebuild_secs.max(1e-12)),
                fmt_f64(ingested_us),
                fmt_f64(rebuilt_us),
            ]);
            entries.push((
                family,
                pct,
                m,
                ingest_secs,
                rebuild_secs,
                ingested_us,
                rebuilt_us,
            ));
        }
    }
    if let Some(path) = json_path {
        match write_bench_ingest_json(path, config.rows, config.seed, &entries) {
            Ok(()) => eprintln!("# fig9b: wrote {}", path.display()),
            Err(e) => eprintln!("# fig9b: could not write {}: {e}", path.display()),
        }
    }
    finish(t)
}

/// Hand-rolled machine-readable dump of the ingest drill-down (the workspace
/// is offline — no serde).
#[allow(clippy::type_complexity)]
fn write_bench_ingest_json(
    path: &std::path::Path,
    rows: usize,
    seed: u64,
    entries: &[(&'static str, f64, usize, f64, f64, f64, f64)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"fig9b_ingest\",\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \"entries\": [\n"
    ));
    for (i, (index, pct, batch, ingest, rebuild, ing_us, reb_us)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"index\": \"{index}\", \"batch_pct\": {pct}, \"batch_rows\": {batch}, \
             \"ingest_secs\": {ingest:.6}, \"rebuild_secs\": {rebuild:.6}, \
             \"post_ingest_us\": {ing_us:.4}, \"rebuilt_us\": {reb_us:.4}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Fig 10: scalability with dimensionality, on uncorrelated and correlated
/// synthetic data.
pub fn fig10(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 10: Dimensionality scaling (avg query us, learned indexes)",
        &[
            "group",
            "dims",
            "index",
            "avg query (us)",
            "avg points scanned",
        ],
    );
    let rows = config.rows.min(40_000);
    for &dims in &[4usize, 8, 12, 16, 20] {
        for (group, data) in [
            (
                "uncorrelated",
                synthetic::uncorrelated(rows, dims, config.seed),
            ),
            ("correlated", synthetic::correlated(rows, dims, config.seed)),
        ] {
            let workload =
                synthetic::workload(&data, config.queries_per_type, config.seed ^ dims as u64);
            let db = database_for(&data, &workload, &[], &config.learned_specs());
            for table in db.tables() {
                let r = report(table, &workload);
                t.add_row(vec![
                    group.to_string(),
                    dims.to_string(),
                    r.name,
                    fmt_f64(r.avg_query_us),
                    fmt_f64(r.avg_points_scanned),
                ]);
            }
        }
    }
    finish(t)
}

/// Fig 11a: scalability with dataset size (TPC-H workload).
pub fn fig11a(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 11a: Dataset-size scaling (TPC-H; avg query us)",
        &["rows", "index", "avg query (us)", "avg points scanned"],
    );
    let sizes = [
        config.rows / 4,
        config.rows / 2,
        config.rows,
        config.rows * 2,
    ];
    for &rows in &sizes {
        let data = tpch::generate(rows, config.seed);
        let workload = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
        let db = database_for(&data, &workload, &tpch::COLUMNS, &config.learned_specs());
        for table in db.tables() {
            let r = report(table, &workload);
            t.add_row(vec![
                rows.to_string(),
                r.name,
                fmt_f64(r.avg_query_us),
                fmt_f64(r.avg_points_scanned),
            ]);
        }
    }
    finish(t)
}

/// Fig 11b: query-selectivity scaling on the 8-d correlated synthetic
/// dataset.
pub fn fig11b(config: &HarnessConfig) -> String {
    let mut t = Table::new(
        "Fig 11b: Selectivity scaling (8-d correlated synthetic; avg query us)",
        &[
            "selectivity scale",
            "avg selectivity %",
            "index",
            "avg query (us)",
        ],
    );
    let rows = config.rows.min(50_000);
    let data = synthetic::correlated(rows, 8, config.seed);
    let base = synthetic::workload(&data, config.queries_per_type, config.seed ^ 7);
    for &factor in &[0.1f64, 0.5, 1.0, 4.0, 16.0] {
        let workload = synthetic::scale_selectivity(&base, factor);
        let avg_sel = workload.average_selectivity(&data);
        let db = database_for(&data, &workload, &[], &config.learned_specs());
        for table in db.tables() {
            let r = report(table, &workload);
            t.add_row(vec![
                fmt_f64(factor),
                fmt_f64(avg_sel * 100.0),
                r.name,
                fmt_f64(r.avg_query_us),
            ]);
        }
    }
    finish(t)
}

/// Fig 12a: component drill-down — Flood vs Augmented-Grid-only vs
/// Grid-Tree-only vs full Tsunami, all registered as tables of one database.
pub fn fig12a(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 12a: Component drill-down (avg query us)",
        &["dataset", "index", "avg query (us)"],
    );
    for b in &bundles {
        // Display names come from the built index itself
        // ("AugmentedGrid-only", "GridTree-only", ...).
        let db = database_for_named(&b.data, &b.workload, &b.columns, &variant_specs(config));
        for table in db.tables() {
            let us = measure(table.index(), &b.workload).avg_query_us;
            t.add_row(vec![
                b.name.to_string(),
                table.index().name().to_string(),
                fmt_f64(us),
            ]);
        }
    }
    finish(t)
}

/// Fig 12b: optimizer comparison — predicted cost and actual query time of
/// the Augmented Grid produced by AGD, GD, Black-Box, and AGD with naive
/// initialization.
pub fn fig12b(config: &HarnessConfig) -> String {
    let bundles = standard_bundles(config);
    let mut t = Table::new(
        "Fig 12b: Augmented Grid optimizer comparison (whole-space grid)",
        &[
            "dataset",
            "optimizer",
            "predicted cost",
            "actual avg query (us)",
            "layouts evaluated",
        ],
    );
    let cost = CostModel::default();
    for b in &bundles {
        for (label, kind) in [
            ("AGD", OptimizerKind::Adaptive),
            ("GD", OptimizerKind::GradientOnly),
            ("BlackBox", OptimizerKind::BlackBox),
            ("AGD-NI", OptimizerKind::AdaptiveNaiveInit),
        ] {
            let layout =
                optimize_layout(&b.data, &b.workload, &cost, &config.tsunami_config(), kind);
            let spec = IndexSpec::Tsunami(
                config
                    .tsunami_config()
                    .with_variant(IndexVariant::AugmentedGridOnly)
                    .with_optimizer(kind),
            );
            let db = database_for_bundle(b, std::slice::from_ref(&spec));
            let table = db.table(spec.label()).expect("registered above");
            let us = measure(table.index(), &b.workload).avg_query_us;
            t.add_row(vec![
                b.name.to_string(),
                label.to_string(),
                fmt_f64(layout.predicted_cost),
                fmt_f64(us),
                layout.evaluations.to_string(),
            ]);
        }
    }
    finish(t)
}

/// Fig 12 (kernel drill-down): median ns/row of every executor kernel tier
/// over a full scan, sweeping selection density × predicate count ×
/// storage encoding (the same rows scanned plain and as bit-packed encoded
/// blocks), with the speedup over the scalar selection loop. Every
/// tier × encoding result is cross-checked against the scalar oracle on
/// plain data while measuring. The machine-readable results land in
/// `BENCH_scan.json` (path overridable via the `BENCH_SCAN_JSON` env var)
/// so the scan-kernel perf trajectory is tracked across PRs.
pub fn fig12kern(config: &HarnessConfig) -> String {
    let path = std::env::var("BENCH_SCAN_JSON").unwrap_or_else(|_| "BENCH_scan.json".to_string());
    fig12kern_impl(config, Some(std::path::Path::new(&path)))
}

fn fig12kern_impl(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    use tsunami_core::exec::{execute_plan_tiered, KernelTier, ScanPlan, ScanSource};
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{Aggregation, Dataset, Predicate, Query};
    use tsunami_store::{ColumnStore, EncodePolicy};

    // A 12-bit domain: every column's frame-of-reference deltas bit-pack,
    // so the encoded sweep measures the packed SWAR kernels against the
    // plain kernels on identical data.
    const DOMAIN: u64 = 4096;
    const PRED_DIMS: usize = 4;
    // At least a handful of blocks so the adaptive tier's estimate settles.
    let rows = config.rows.max(8 * 1024);
    let mut rng = SplitMix::new(config.seed ^ 0xf12);
    let data = Dataset::from_columns(
        (0..PRED_DIMS)
            .map(|_| (0..rows).map(|_| rng.next_below(DOMAIN)).collect())
            .collect(),
    )
    .expect("uniform columns");
    // The encoded twin: same rows, packed into per-block encodings (an
    // explicit policy so env knobs can't silently skew the comparison).
    let mut store = ColumnStore::from_dataset(&data);
    store.encode_blocks_with(&EncodePolicy::default());
    let plan = ScanPlan::full(rows);

    let mut t = Table::new(
        "Fig 12 (kernels): executor kernel tiers (median ns/row; speedup vs scalar)",
        &[
            "selectivity %",
            "predicates",
            "agg",
            "encoding",
            "tier",
            "median ns/row",
            "speedup vs scalar",
        ],
    );
    // (selectivity %, predicates, agg label, encoding, tier label, median ns/row)
    let mut entries: Vec<(f64, usize, &'static str, &'static str, &'static str, f64)> = Vec::new();
    let reps = 5;
    // First-predicate ranges hitting the target selection densities exactly
    // (values are uniform below DOMAIN; the 0% range lies outside it).
    let sweeps: [(f64, u64, u64); 5] = [
        (0.0, DOMAIN, DOMAIN),
        (1.0, 0, DOMAIN / 100 - 1),
        (50.0, 0, DOMAIN / 2 - 1),
        (99.0, 0, DOMAIN / 100 * 99 - 1),
        (100.0, 0, DOMAIN),
    ];
    for (sel_pct, lo, hi) in sweeps {
        for npreds in 1..=PRED_DIMS {
            // Predicate 1 sets the density; the rest are full-range (always
            // true) so refinement work scales with the predicate count while
            // the density stays controlled.
            let mut preds = vec![Predicate::range(0, lo, hi).expect("valid sweep range")];
            for dim in 1..npreds {
                preds.push(Predicate::range(dim, 0, DOMAIN).expect("full range"));
            }
            for (agg_label, agg) in [
                ("count", Aggregation::Count),
                ("sum", Aggregation::Sum(PRED_DIMS - 1)),
            ] {
                let q = Query::new(preds.clone(), agg).expect("valid query");
                let scalar_result = execute_plan_tiered(&data, &q, &plan, KernelTier::Scalar);
                let sources: [(&'static str, &dyn ScanSource); 2] =
                    [("plain", &data), ("encoded", &store)];
                for (enc_label, source) in sources {
                    let mut scalar_ns = f64::NAN;
                    for tier in KernelTier::ALL {
                        // Warm-up doubling as the cross-check: every
                        // tier × encoding must match the plain scalar
                        // oracle, counters included.
                        assert_eq!(
                            execute_plan_tiered(source, &q, &plan, tier),
                            scalar_result,
                            "{tier:?} on {enc_label} diverged from the scalar oracle"
                        );
                        let mut samples: Vec<f64> = (0..reps)
                            .map(|_| {
                                let start = Instant::now();
                                std::hint::black_box(execute_plan_tiered(source, &q, &plan, tier));
                                start.elapsed().as_nanos() as f64 / rows as f64
                            })
                            .collect();
                        samples.sort_by(f64::total_cmp);
                        let median = samples[samples.len() / 2];
                        if tier == KernelTier::Scalar {
                            scalar_ns = median;
                        }
                        t.add_row(vec![
                            fmt_f64(sel_pct),
                            npreds.to_string(),
                            agg_label.to_string(),
                            enc_label.to_string(),
                            tier.label().to_string(),
                            fmt_f64(median),
                            fmt_f64(scalar_ns / median),
                        ]);
                        entries.push((sel_pct, npreds, agg_label, enc_label, tier.label(), median));
                    }
                }
            }
        }
    }
    if let Some(path) = json_path {
        match write_bench_scan_json(path, rows, config.seed, &entries) {
            Ok(()) => eprintln!("# fig12kern: wrote {}", path.display()),
            Err(e) => eprintln!("# fig12kern: could not write {}: {e}", path.display()),
        }
    }
    finish(t)
}

/// Hand-rolled (the workspace is offline — no serde) machine-readable dump of
/// the kernel microbenchmark: median ns/row per (selectivity, predicate
/// count, aggregation, kernel tier).
fn write_bench_scan_json(
    path: &std::path::Path,
    rows: usize,
    seed: u64,
    entries: &[(f64, usize, &'static str, &'static str, &'static str, f64)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"fig12kern\",\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \"entries\": [\n"
    ));
    for (i, (sel, npreds, agg, enc, tier, ns)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"selectivity_pct\": {sel}, \"predicates\": {npreds}, \"agg\": \"{agg}\", \
             \"encoding\": \"{enc}\", \"tier\": \"{tier}\", \
             \"median_ns_per_row\": {ns:.4}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// Fig MV: the materialized-aggregate layer's covered-query speedup. One
/// Tsunami index, aggregate queries sweeping predicate coverage from the
/// whole domain (every region *contained* in the query, so the plan is pure
/// pre-folded per-region partials — near-O(1): zero rows visited) down to a
/// narrow band (mostly rim scanning, where the cube cannot help). Every
/// query runs against two otherwise-identical indexes, materialization on
/// and off, and the answers are cross-checked bit-identical while
/// measuring. Machine-readable results land in `BENCH_matview.json` (path
/// overridable via the `BENCH_MATVIEW_JSON` env var) and are gated by
/// `repro -- check-bench`.
pub fn figmv(config: &HarnessConfig) -> String {
    let path =
        std::env::var("BENCH_MATVIEW_JSON").unwrap_or_else(|_| "BENCH_matview.json".to_string());
    figmv_impl(config, Some(std::path::Path::new(&path)))
}

fn figmv_impl(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    use tsunami_core::sample::SplitMix;
    use tsunami_core::{Aggregation, Dataset, MultiDimIndex, Predicate, Query, Workload};

    const DOMAIN: u64 = 1 << 20;
    const DIMS: usize = 3;
    let rows = config.rows.max(8 * 1024);
    let mut rng = SplitMix::new(config.seed ^ 0x317);
    let data = Dataset::from_columns(
        (0..DIMS)
            .map(|_| (0..rows).map(|_| rng.next_below(DOMAIN)).collect())
            .collect(),
    )
    .expect("uniform columns");
    // Build-time workload: bands on every dimension so the Grid Tree
    // actually partitions into multiple regions for the cube to pre-fold.
    let workload = Workload::new(
        (0..12usize)
            .map(|i| {
                let lo = rng.next_below(DOMAIN / 2);
                Query::count(vec![
                    Predicate::range(i % DIMS, lo, lo + DOMAIN / 8).expect("band")
                ])
                .expect("build query")
            })
            .collect(),
    );
    let cost = CostModel::default();
    let tsunami_config = config.tsunami_config();
    let mut mv = TsunamiIndex::build_with_cost(&data, &workload, &cost, &tsunami_config)
        .expect("tsunami build");
    let mut scan = TsunamiIndex::build_with_cost(&data, &workload, &cost, &tsunami_config)
        .expect("tsunami build");
    mv.set_matview(true);
    scan.set_matview(false);

    let mut t = Table::new(
        "Fig MV: materialized aggregates — covered queries vs scan (median us)",
        &[
            "coverage %",
            "agg",
            "matview (us)",
            "scan (us)",
            "speedup",
            "rows visited (mv)",
            "rows visited (scan)",
        ],
    );
    // (coverage %, agg label, mode, median us)
    let mut entries: Vec<(f64, &'static str, &'static str, f64)> = Vec::new();
    let reps = 9;
    let sweeps: [(f64, u64, u64); 4] = [
        (100.0, 0, u64::MAX),
        (50.0, 0, DOMAIN / 2 - 1),
        (10.0, 0, DOMAIN / 10 - 1),
        (1.0, 0, DOMAIN / 100 - 1),
    ];
    for (pct, lo, hi) in sweeps {
        for (agg_label, agg) in [
            ("count", Aggregation::Count),
            ("sum", Aggregation::Sum(1)),
            ("avg", Aggregation::Avg(2)),
        ] {
            let q = Query::new(vec![Predicate::range(0, lo, hi).expect("sweep range")], agg)
                .expect("sweep query");
            // Cross-check doubling as warm-up (and as the cube's lazy fold):
            // materialized and scan answers must be bit-identical.
            let (mv_res, mv_stats) = mv.execute_with_stats(&q);
            let (scan_res, scan_stats) = scan.execute_with_stats(&q);
            assert_eq!(mv_res, scan_res, "matview diverged from scan on {q:?}");
            if pct == 100.0 {
                // The near-O(1) claim: a whole-domain query is answered
                // entirely from partials — no rows visited at all.
                assert_eq!(
                    mv_stats.points_scanned, 0,
                    "a fully covered query must not scan"
                );
            }
            let med = |idx: &TsunamiIndex| {
                let mut samples: Vec<f64> = (0..reps)
                    .map(|_| {
                        let start = Instant::now();
                        std::hint::black_box(idx.execute(&q));
                        start.elapsed().as_nanos() as f64 / 1_000.0
                    })
                    .collect();
                samples.sort_by(f64::total_cmp);
                samples[samples.len() / 2]
            };
            let mv_us = med(&mv);
            let scan_us = med(&scan);
            t.add_row(vec![
                fmt_f64(pct),
                agg_label.to_string(),
                fmt_f64(mv_us),
                fmt_f64(scan_us),
                fmt_f64(scan_us / mv_us.max(1e-9)),
                mv_stats.points_scanned.to_string(),
                scan_stats.points_scanned.to_string(),
            ]);
            entries.push((pct, agg_label, "matview", mv_us));
            entries.push((pct, agg_label, "scan", scan_us));
        }
    }
    if let Some(path) = json_path {
        match write_bench_matview_json(path, rows, config.seed, &entries) {
            Ok(()) => eprintln!("# figmv: wrote {}", path.display()),
            Err(e) => eprintln!("# figmv: could not write {}: {e}", path.display()),
        }
    }
    finish(t)
}

/// Hand-rolled machine-readable dump of the materialized-aggregate sweep
/// (the workspace is offline — no serde).
fn write_bench_matview_json(
    path: &std::path::Path,
    rows: usize,
    seed: u64,
    entries: &[(f64, &'static str, &'static str, f64)],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"figmv\",\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \"entries\": [\n"
    ));
    for (i, (pct, agg, mode, us)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"coverage_pct\": {pct}, \"agg\": \"{agg}\", \"mode\": \"{mode}\", \
             \"median_us\": {us:.4}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

/// The benchmark-regression gate behind `repro -- check-bench`.
///
/// Re-runs the fast smokes (fig12kern and figmv, writing fresh
/// `BENCH_scan.json` / `BENCH_matview.json` numbers) and compares every
/// median against the checked-in baselines under `bench-baselines/`
/// (`BENCH_scan.json` path overridable via `BENCH_BASELINE_JSON`). The
/// slower experiments are not re-run here: when a fresh `BENCH_pool.json` /
/// `BENCH_ingest.json` from an earlier `fig7par` / `fig9b` step is present
/// on disk it is gated against its committed baseline too, otherwise that
/// comparison is skipped with a note in the summary — so the full gate runs
/// in CI (which runs those experiments first) without making a local
/// `check-bench` pay for them.
///
/// Returns a human-readable summary, or an error describing every regressed
/// entry — the caller exits non-zero on `Err`.
pub fn check_bench(config: &HarnessConfig) -> std::result::Result<String, String> {
    let mut summaries = Vec::new();

    // Scan kernels: ns/row medians, max(2.5x, +0.5 ns/row).
    let current_path =
        std::env::var("BENCH_SCAN_JSON").unwrap_or_else(|_| "BENCH_scan.json".to_string());
    fig12kern(config);
    let baseline_path = std::env::var("BENCH_BASELINE_JSON")
        .unwrap_or_else(|_| "bench-baselines/BENCH_scan.json".to_string());
    let baseline = std::fs::read_to_string(&baseline_path)
        .map_err(|e| format!("check-bench: cannot read baseline {baseline_path}: {e}"))?;
    let current = std::fs::read_to_string(&current_path)
        .map_err(|e| format!("check-bench: cannot read current run {current_path}: {e}"))?;
    summaries.push(compare_bench_scan(&baseline, &current)?);

    // Materialized aggregates: query medians in us. Covered queries sit in
    // the single-digit-us range where timer granularity dominates, so the
    // absolute slack is a generous 50 us — the gate exists to catch the
    // cube silently falling back to full scans (a many-hundred-us jump),
    // not scheduler jitter.
    let mv_path =
        std::env::var("BENCH_MATVIEW_JSON").unwrap_or_else(|_| "BENCH_matview.json".to_string());
    figmv(config);
    let mv_baseline = std::fs::read_to_string("bench-baselines/BENCH_matview.json")
        .map_err(|e| format!("check-bench: cannot read bench-baselines/BENCH_matview.json: {e}"))?;
    let mv_current = std::fs::read_to_string(&mv_path)
        .map_err(|e| format!("check-bench: cannot read current run {mv_path}: {e}"))?;
    summaries.push(compare_bench_generic(
        "BENCH_matview",
        &mv_baseline,
        &mv_current,
        &["coverage_pct", "agg", "mode"],
        "median_us",
        50.0,
        "us",
    )?);

    // Pool and ingest: gated only when an earlier step of this run produced
    // fresh numbers (both are too slow to re-run inside the gate). The same
    // 2.5x ratio with a 100 us absolute slack — per-query averages over
    // laptop-scale datasets, noisier than the kernel medians.
    let optional: [(&str, &str, &str, &[&str], &str); 2] = [
        (
            "BENCH_pool",
            "BENCH_POOL_JSON",
            "BENCH_pool.json",
            &["dataset", "index"],
            "pooled_us",
        ),
        (
            "BENCH_ingest",
            "BENCH_INGEST_JSON",
            "BENCH_ingest.json",
            &["index", "batch_pct"],
            "post_ingest_us",
        ),
    ];
    for (label, env, default, keys, value_key) in optional {
        let cur_path = std::env::var(env).unwrap_or_else(|_| default.to_string());
        let Ok(cur) = std::fs::read_to_string(&cur_path) else {
            summaries.push(format!(
                "{label}: skipped — no fresh {cur_path} in this run"
            ));
            continue;
        };
        let base_path = format!("bench-baselines/{default}");
        let base = std::fs::read_to_string(&base_path)
            .map_err(|e| format!("check-bench: cannot read baseline {base_path}: {e}"))?;
        summaries.push(compare_bench_generic(
            label, &base, &cur, keys, value_key, 100.0, "us",
        )?);
    }
    Ok(summaries.join("\n"))
}

/// Parses a one-entry-per-line bench JSON (every writer in this module
/// emits that shape) into `(label, value)` pairs, where the label joins the
/// requested key fields. Lines missing any key are skipped.
fn parse_bench_entries(json: &str, keys: &[&str], value_key: &str) -> Vec<(String, f64)> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().trim_matches('"'))
    }
    json.lines()
        .filter(|l| l.contains(&format!("\"{value_key}\"")))
        .filter_map(|l| {
            let mut label = Vec::with_capacity(keys.len());
            for key in keys {
                label.push(format!("{key}={}", field(l, key)?));
            }
            Some((label.join(" "), field(l, value_key)?.parse().ok()?))
        })
        .collect()
}

/// Compares two one-entry-per-line bench JSON contents entry by entry. An
/// entry fails when its value exceeds `max(2.5 × baseline, baseline +
/// abs_slack)` — the same tolerance shape as [`compare_bench_scan`]: the
/// 2.5x ratio is deliberately loose (medians from a shared CI container are
/// noisy; the gate catches order-of-magnitude regressions, not jitter) and
/// the absolute slack keeps near-zero entries from flapping on timer
/// granularity. Entries present in the baseline but missing from the
/// current run fail too (coverage must not silently shrink).
fn compare_bench_generic(
    name: &str,
    baseline: &str,
    current: &str,
    keys: &[&str],
    value_key: &str,
    abs_slack: f64,
    unit: &str,
) -> std::result::Result<String, String> {
    let base = parse_bench_entries(baseline, keys, value_key);
    if base.is_empty() {
        return Err(format!("check-bench: {name} baseline has no entries"));
    }
    let cur: std::collections::HashMap<String, f64> = parse_bench_entries(current, keys, value_key)
        .into_iter()
        .collect();
    let mut failures = Vec::new();
    let mut worst: Option<(f64, String)> = None;
    let compared = base.len();
    for (label, base_v) in base {
        let Some(&cur_v) = cur.get(&label) else {
            failures.push(format!(
                "{label}: present in baseline, missing from current run"
            ));
            continue;
        };
        let limit = (base_v * 2.5).max(base_v + abs_slack);
        let ratio = cur_v / base_v.max(1e-9);
        if worst.as_ref().is_none_or(|(w, _)| ratio > *w) {
            worst = Some((ratio, label.clone()));
        }
        if cur_v > limit {
            failures.push(format!(
                "{label}: {cur_v:.3} {unit} vs baseline {base_v:.3} \
                 (limit {limit:.3}, ratio {ratio:.2}x)"
            ));
        }
    }
    let (worst_ratio, worst_label) = worst.unwrap_or((0.0, "n/a".to_string()));
    if failures.is_empty() {
        Ok(format!(
            "{name}: OK — {compared} entries within tolerance \
             (max(2.5x, +{abs_slack} {unit})); worst ratio {worst_ratio:.2}x at {worst_label}"
        ))
    } else {
        Err(format!(
            "{name}: FAILED — {} of {compared} entries regressed past \
             max(2.5x baseline, baseline + {abs_slack} {unit}):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

/// One `BENCH_scan.json` entry: (selectivity %, predicates, agg, encoding,
/// tier, median ns/row).
type ScanEntry = (String, String, String, String, String, f64);

/// Parses the entries of a `BENCH_scan.json` produced by [`fig12kern`] (the
/// workspace is offline — no serde — but the writer emits one entry per
/// line, so per-line field extraction is exact). Entries written before the
/// encoding sweep existed carry no `encoding` field; they parse as
/// `"plain"` so old baselines stay comparable.
fn parse_bench_scan_entries(json: &str) -> Vec<ScanEntry> {
    fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
        let pat = format!("\"{key}\": ");
        let start = line.find(&pat)? + pat.len();
        let rest = &line[start..];
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().trim_matches('"'))
    }
    json.lines()
        .filter(|l| l.contains("\"median_ns_per_row\""))
        .filter_map(|l| {
            Some((
                field(l, "selectivity_pct")?.to_string(),
                field(l, "predicates")?.to_string(),
                field(l, "agg")?.to_string(),
                field(l, "encoding").unwrap_or("plain").to_string(),
                field(l, "tier")?.to_string(),
                field(l, "median_ns_per_row")?.parse().ok()?,
            ))
        })
        .collect()
}

/// Compares two `BENCH_scan.json` contents entry by entry. An entry fails
/// when its median exceeds `max(2.5 × baseline, baseline + 0.5 ns/row)`:
/// the 2.5× bound is deliberately loose — the criterion-shim medians
/// (median of 5 in a shared CI container) are noisy, and the gate exists to
/// catch order-of-magnitude kernel regressions, not jitter — and the
/// 0.5 ns/row absolute slack keeps sub-nanosecond entries (dense bitmap
/// scans) from flapping on timer granularity. Entries present in the
/// baseline but missing from the current run fail too (coverage must not
/// silently shrink).
fn compare_bench_scan(baseline: &str, current: &str) -> std::result::Result<String, String> {
    let base = parse_bench_scan_entries(baseline);
    if base.is_empty() {
        return Err("check-bench: baseline has no entries".to_string());
    }
    let cur: std::collections::HashMap<(String, String, String, String, String), f64> =
        parse_bench_scan_entries(current)
            .into_iter()
            .map(|(s, p, a, e, t, ns)| ((s, p, a, e, t), ns))
            .collect();
    let mut failures = Vec::new();
    let mut worst: Option<(f64, String)> = None;
    let compared = base.len();
    for (sel, preds, agg, enc, tier, base_ns) in base {
        let label = format!("sel={sel}% preds={preds} agg={agg} encoding={enc} tier={tier}");
        let Some(&cur_ns) = cur.get(&(sel, preds, agg, enc, tier)) else {
            failures.push(format!(
                "{label}: present in baseline, missing from current run"
            ));
            continue;
        };
        let limit = (base_ns * 2.5).max(base_ns + 0.5);
        let ratio = cur_ns / base_ns.max(1e-9);
        if worst.as_ref().is_none_or(|(w, _)| ratio > *w) {
            worst = Some((ratio, label.clone()));
        }
        if cur_ns > limit {
            failures.push(format!(
                "{label}: {cur_ns:.3} ns/row vs baseline {base_ns:.3} \
                 (limit {limit:.3}, ratio {ratio:.2}x)"
            ));
        }
    }
    let (worst_ratio, worst_label) = worst.unwrap_or((0.0, "n/a".to_string()));
    if failures.is_empty() {
        Ok(format!(
            "check-bench: OK — {compared} entries within tolerance \
             (max(2.5x, +0.5 ns/row)); worst ratio {worst_ratio:.2}x at {worst_label}"
        ))
    } else {
        Err(format!(
            "check-bench: FAILED — {} of {compared} entries regressed past \
             max(2.5x baseline, baseline + 0.5 ns/row):\n  {}",
            failures.len(),
            failures.join("\n  ")
        ))
    }
}

/// Runs every experiment in sequence and returns the concatenated output.
pub fn all(config: &HarnessConfig) -> String {
    let mut out = String::new();
    for (name, f) in experiments() {
        let _ = name;
        out.push_str(&f(config));
        out.push('\n');
    }
    out
}

/// The registry of experiment names and functions, in paper order.
#[allow(clippy::type_complexity)]
pub fn experiments() -> Vec<(&'static str, fn(&HarnessConfig) -> String)> {
    vec![
        ("table3", table3 as fn(&HarnessConfig) -> String),
        ("table4", table4),
        ("fig7", fig7),
        ("fig7par", fig7_parallel),
        ("fig7sched", fig7_scheduler),
        ("fig7net", crate::net::fig7net),
        ("fig8", fig8),
        ("fig9a", fig9a),
        ("fig9b", fig9b),
        ("fig10", fig10),
        ("fig11a", fig11a),
        ("fig11b", fig11b),
        ("fig12a", fig12a),
        ("fig12b", fig12b),
        ("fig12kern", fig12kern),
        ("figmv", figmv),
        ("walbench", crate::wal::walbench),
    ]
}

pub(crate) fn finish(t: Table) -> String {
    let rendered = t.render();
    println!("{rendered}");
    rendered
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HarnessConfig {
        HarnessConfig {
            rows: 2_500,
            queries_per_type: 3,
            seed: 5,
        }
    }

    #[test]
    fn table3_lists_four_datasets() {
        let out = table3(&tiny());
        for name in ["TPC-H", "Taxi", "Perfmon", "Stocks"] {
            assert!(out.contains(name), "missing {name} in:\n{out}");
        }
    }

    #[test]
    fn experiment_registry_covers_every_table_and_figure() {
        let names: Vec<&str> = experiments().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "table3",
                "table4",
                "fig7",
                "fig7par",
                "fig7sched",
                "fig7net",
                "fig8",
                "fig9a",
                "fig9b",
                "fig10",
                "fig11a",
                "fig11b",
                "fig12a",
                "fig12b",
                "fig12kern",
                "figmv",
                "walbench"
            ]
        );
    }

    #[test]
    fn fig12kern_sweeps_every_tier_and_stays_consistent() {
        // Tiny run, no JSON file: the impl itself asserts every tier matches
        // the scalar oracle while measuring.
        let cfg = HarnessConfig {
            rows: 1_000, // floored to 8 Ki rows inside
            queries_per_type: 1,
            seed: 3,
        };
        let out = fig12kern_impl(&cfg, None);
        for tier in ["scalar", "vector", "bitmap", "adaptive"] {
            assert!(out.contains(tier), "missing tier {tier} in:\n{out}");
        }
        for enc in ["plain", "encoded"] {
            assert!(out.contains(enc), "missing encoding {enc} in:\n{out}");
        }
    }

    #[test]
    fn fig9b_ingest_stays_cheaper_than_rebuild_and_consistent() {
        // Tiny run, no JSON: the impl itself cross-checks ingested results
        // against the rebuilt index while measuring.
        let cfg = HarnessConfig {
            rows: 4_000,
            queries_per_type: 3,
            seed: 11,
        };
        let out = fig9b_ingest_impl(&cfg, None);
        for label in ["Tsunami", "Flood", "ingest/rebuild"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn bench_ingest_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_ingest_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_ingest.json");
        write_bench_ingest_json(
            &path,
            5000,
            7,
            &[("Tsunami", 10.0, 500, 0.25, 1.5, 12.5, 11.0)],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"fig9b_ingest\""));
        assert!(s.contains("\"index\": \"Tsunami\""));
        assert!(s.contains("\"batch_pct\": 10"));
        assert!(s.contains("\"ingest_secs\": 0.250000"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn bench_scan_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_scan_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_scan.json");
        write_bench_scan_json(
            &path,
            1234,
            42,
            &[(50.0, 2, "count", "encoded", "bitmap", 1.5)],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"fig12kern\""));
        assert!(s.contains("\"rows\": 1234"));
        assert!(s.contains("\"encoding\": \"encoded\""));
        assert!(s.contains("\"tier\": \"bitmap\""));
        assert!(s.contains("\"median_ns_per_row\": 1.5000"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn check_bench_comparison_flags_only_real_regressions() {
        let mut entries = vec![
            (50.0, 2, "count", "plain", "bitmap", 2.0),
            (0.0, 1, "sum", "encoded", "vector", 0.1),
            (99.0, 4, "count", "plain", "scalar", 8.0),
        ];
        let dir = std::env::temp_dir().join("tsunami_check_bench_test");
        std::fs::create_dir_all(&dir).unwrap();
        let base_path = dir.join("base.json");
        write_bench_scan_json(&base_path, 1000, 1, &entries).unwrap();
        let baseline = std::fs::read_to_string(&base_path).unwrap();

        // Identical run passes.
        let ok = compare_bench_scan(&baseline, &baseline).unwrap();
        assert!(ok.contains("OK"), "{ok}");

        // Noise within tolerance passes: 2x on a big entry, absolute slack
        // on a sub-ns entry.
        entries[0].5 = 4.0;
        entries[1].5 = 0.55;
        write_bench_scan_json(&base_path, 1000, 1, &entries).unwrap();
        let noisy = std::fs::read_to_string(&base_path).unwrap();
        assert!(compare_bench_scan(&baseline, &noisy).is_ok());

        // A >2.5x regression fails and names the entry.
        entries[2].5 = 25.0;
        write_bench_scan_json(&base_path, 1000, 1, &entries).unwrap();
        let regressed = std::fs::read_to_string(&base_path).unwrap();
        let err = compare_bench_scan(&baseline, &regressed).unwrap_err();
        assert!(err.contains("tier=scalar"), "{err}");
        assert!(err.contains("FAILED"));

        // Shrunken coverage fails.
        entries.truncate(1);
        write_bench_scan_json(&base_path, 1000, 1, &entries).unwrap();
        let shrunk = std::fs::read_to_string(&base_path).unwrap();
        let err = compare_bench_scan(&baseline, &shrunk).unwrap_err();
        assert!(err.contains("missing from current run"), "{err}");

        // An empty baseline is an error, not a pass.
        assert!(compare_bench_scan("{}", &baseline).is_err());
        std::fs::remove_file(&base_path).unwrap();
    }

    #[test]
    fn bench_scan_json_round_trips_through_the_parser() {
        let dir = std::env::temp_dir().join("tsunami_scan_parse_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("scan.json");
        write_bench_scan_json(
            &path,
            1000,
            1,
            &[
                (50.0, 2, "count", "encoded", "bitmap", 1.25),
                (0.0, 1, "sum", "plain", "scalar", 3.5),
            ],
        )
        .unwrap();
        let parsed = parse_bench_scan_entries(&std::fs::read_to_string(&path).unwrap());
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].3, "encoded");
        assert_eq!(parsed[0].4, "bitmap");
        assert_eq!(parsed[0].5, 1.25);
        assert_eq!(parsed[1].2, "sum");
        // Pre-encoding baselines have no encoding field: default to plain.
        let legacy = "    {\"selectivity_pct\": 50, \"predicates\": 1, \"agg\": \"count\", \
                      \"tier\": \"vector\", \"median_ns_per_row\": 1.0000}\n";
        let parsed = parse_bench_scan_entries(legacy);
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].3, "plain");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fig12a_reports_all_variants_for_each_dataset() {
        let mut cfg = tiny();
        cfg.rows = 2_000;
        let out = fig12a(&cfg);
        for label in ["Flood", "AugmentedGrid-only", "GridTree-only", "Tsunami"] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn fig7_scheduler_sweeps_worker_counts() {
        let mut cfg = tiny();
        cfg.rows = 2_000;
        let out = fig7_scheduler(&cfg);
        for workers in ["1", "2", "4", "8"] {
            assert!(out.contains(workers), "missing worker row {workers}");
        }
        assert!(out.contains("QPS"));
    }

    #[test]
    fn fig7_parallel_reports_all_three_executors() {
        // Tiny run, no JSON: the impl itself asserts that both the spawn
        // baseline's and the pool's counters match serial while measuring.
        let mut cfg = tiny();
        cfg.rows = 2_000;
        let out = fig7_parallel_impl(&cfg, None);
        for col in ["serial (us)", "spawn (us)", "pooled (us)", "morsel rows"] {
            assert!(out.contains(col), "missing column {col} in:\n{out}");
        }
    }

    #[test]
    fn figmv_covered_queries_skip_scanning_and_stay_consistent() {
        // Tiny run, no JSON: the impl itself cross-checks every matview
        // answer against the scan index and asserts the fully covered
        // queries visit zero rows while measuring.
        let cfg = HarnessConfig {
            rows: 1_000, // floored to 8 Ki rows inside
            queries_per_type: 1,
            seed: 9,
        };
        let out = figmv_impl(&cfg, None);
        for col in ["coverage %", "matview (us)", "scan (us)", "speedup"] {
            assert!(out.contains(col), "missing column {col} in:\n{out}");
        }
        for agg in ["count", "sum", "avg"] {
            assert!(out.contains(agg), "missing agg {agg} in:\n{out}");
        }
    }

    #[test]
    fn bench_matview_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_matview_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_matview.json");
        write_bench_matview_json(
            &path,
            8192,
            9,
            &[
                (100.0, "count", "matview", 1.5),
                (100.0, "count", "scan", 80.0),
            ],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"figmv\""));
        assert!(s.contains("\"coverage_pct\": 100"));
        assert!(s.contains("\"mode\": \"matview\""));
        assert!(s.contains("\"median_us\": 1.5000"));
        let parsed = parse_bench_entries(&s, &["coverage_pct", "agg", "mode"], "median_us");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].0, "coverage_pct=100 agg=count mode=matview");
        assert_eq!(parsed[0].1, 1.5);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn generic_bench_comparison_flags_only_real_regressions() {
        let base = "    {\"a\": \"x\", \"b\": 1, \"median_us\": 10.0}\n\
                    {\"a\": \"y\", \"b\": 2, \"median_us\": 2.0}\n";
        let keys: &[&str] = &["a", "b"];
        // Identical run passes.
        assert!(compare_bench_generic("t", base, base, keys, "median_us", 50.0, "us").is_ok());
        // Within the absolute slack passes even past 2.5x on a tiny entry.
        let noisy = "    {\"a\": \"x\", \"b\": 1, \"median_us\": 24.0}\n\
                     {\"a\": \"y\", \"b\": 2, \"median_us\": 40.0}\n";
        assert!(compare_bench_generic("t", base, noisy, keys, "median_us", 50.0, "us").is_ok());
        // Past both bounds fails and names the entry.
        let bad = "    {\"a\": \"x\", \"b\": 1, \"median_us\": 500.0}\n\
                   {\"a\": \"y\", \"b\": 2, \"median_us\": 2.0}\n";
        let err = compare_bench_generic("t", base, bad, keys, "median_us", 50.0, "us").unwrap_err();
        assert!(err.contains("a=x b=1"), "{err}");
        // Shrunken coverage fails.
        let shrunk = "    {\"a\": \"x\", \"b\": 1, \"median_us\": 10.0}\n";
        let err =
            compare_bench_generic("t", base, shrunk, keys, "median_us", 50.0, "us").unwrap_err();
        assert!(err.contains("missing from current run"), "{err}");
        // An empty baseline is an error, not a pass.
        assert!(compare_bench_generic("t", "{}", base, keys, "median_us", 50.0, "us").is_err());
    }

    #[test]
    fn bench_pool_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_pool_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pool.json");
        write_bench_pool_json(
            &path,
            5000,
            7,
            4,
            131072,
            &[("Taxi".to_string(), "Tsunami".to_string(), 100.0, 80.0, 60.0)],
        )
        .unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"fig7par\""));
        assert!(s.contains("\"workers\": 4"));
        assert!(s.contains("\"morsel_rows\": 131072"));
        assert!(s.contains("\"index\": \"Tsunami\""));
        assert!(s.contains("\"pooled_us\": 60.000"));
        std::fs::remove_file(&path).unwrap();
    }
}
