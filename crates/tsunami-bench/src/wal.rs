//! `walbench`: the durability drill-down — what the WAL costs.
//!
//! Two questions, two tables:
//!
//! 1. **Replay**: how long does [`Database::open`] take as the log grows
//!    (recovery replays every record through the live mutation paths, so
//!    this includes index maintenance), and how much of that a
//!    [`Database::checkpoint`] buys back.
//! 2. **Delete-heavy scans**: query latency as tombstones accumulate and
//!    after the staleness escalation re-grids the survivors — the
//!    mask-don't-move design's read-side bill.
//!
//! The machine-readable results land in `BENCH_wal.json` (path overridable
//! via the `BENCH_WAL_JSON` env var) so the durability layer's perf
//! trajectory is tracked across PRs.

use std::time::Instant;

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Dataset, Predicate, Query, Workload};
use tsunami_engine::{Database, IndexSpec};

use crate::harness::HarnessConfig;
use crate::table::{fmt_f64, Table};

const DOMAIN: u64 = 100_000;
const DIMS: usize = 3;

fn dataset(rows: usize, seed: u64) -> Dataset {
    let mut rng = SplitMix::new(seed ^ 0x3a1d);
    Dataset::from_columns(
        (0..DIMS)
            .map(|_| (0..rows).map(|_| rng.next_below(DOMAIN)).collect())
            .collect(),
    )
    .expect("uniform columns")
}

/// Entry point registered as `walbench`.
pub fn walbench(config: &HarnessConfig) -> String {
    let path = std::env::var("BENCH_WAL_JSON").unwrap_or_else(|_| "BENCH_wal.json".to_string());
    walbench_impl(config, Some(std::path::Path::new(&path)))
}

pub(crate) fn walbench_impl(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    let mut out = replay_sweep(config, json_path);
    out.push('\n');
    out.push_str(&delete_scan_sweep(config, json_path));
    out
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("tsunami_walbench_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn probe_workload(seed: u64) -> Workload {
    let mut rng = SplitMix::new(seed ^ 0x9e37);
    Workload::new(
        (0..24)
            .map(|i| {
                let width = DOMAIN / 8;
                let lo = rng.next_below(DOMAIN - width);
                let agg = match i % 3 {
                    0 => Aggregation::Count,
                    1 => Aggregation::Sum(1),
                    _ => Aggregation::Avg(2),
                };
                Query::new(vec![Predicate::range(0, lo, lo + width).unwrap()], agg)
                    .expect("valid probe")
            })
            .collect(),
    )
}

fn avg_query_us(table: &tsunami_engine::Table, workload: &Workload) -> f64 {
    // One warm pass, then the measured pass.
    for q in workload.queries() {
        std::hint::black_box(table.execute(q).expect("probe executes"));
    }
    let start = Instant::now();
    for q in workload.queries() {
        std::hint::black_box(table.execute(q).expect("probe executes"));
    }
    start.elapsed().as_secs_f64() * 1e6 / workload.queries().len() as f64
}

fn timed_open(dir: &std::path::Path) -> (Database, f64) {
    let start = Instant::now();
    let db = Database::open(dir).expect("recovery succeeds");
    (db, start.elapsed().as_secs_f64() * 1e3)
}

/// Replay sweep entry: (mutation batches, WAL records, WAL KiB, reopen ms,
/// post-checkpoint reopen ms).
type ReplayEntry = (usize, usize, f64, f64, f64);

/// Part 1: grow the WAL with interleaved insert/delete batches, time a cold
/// [`Database::open`] (full replay + index rebuild), checkpoint, and time
/// the reopen again.
fn replay_sweep(config: &HarnessConfig, json_path: Option<&std::path::Path>) -> String {
    let mut t = Table::new(
        "walbench (replay): Database::open cost vs WAL length, before/after checkpoint",
        &[
            "base rows",
            "mutation batches",
            "WAL records",
            "WAL KiB",
            "reopen (ms)",
            "reopen after checkpoint (ms)",
        ],
    );
    let rows = config.rows;
    let data = dataset(rows, config.seed);
    let workload = probe_workload(config.seed);
    let spec = IndexSpec::Tsunami(config.tsunami_config());
    let batch_rows = (rows / 50).max(1);
    let mut entries: Vec<ReplayEntry> = Vec::new();
    for &batches in &[4usize, 16, 64] {
        let dir = temp_dir(&format!("replay_{batches}"));
        {
            let mut db = Database::open(&dir).expect("fresh durable db");
            db.create_table_unnamed("t", data.clone(), &workload, &spec)
                .expect("create");
            for b in 0..batches {
                if b % 4 == 3 {
                    // Thin disjoint bands so every delete removes live rows.
                    let width = (DOMAIN / 256).max(1);
                    let lo = (b as u64 / 4) * width;
                    db.delete("t", &[Predicate::range(0, lo, lo + width - 1).unwrap()])
                        .expect("delete batch");
                } else {
                    let rows: Vec<Vec<u64>> = (0..batch_rows)
                        .map(|j| {
                            let v = (b * batch_rows + j) as u64;
                            vec![v % DOMAIN, (v * 13) % DOMAIN, (v * 7919) % DOMAIN]
                        })
                        .collect();
                    db.insert_batch("t", &rows).expect("insert batch");
                }
            }
        }
        let wal_path = dir.join("wal.log");
        let (records, _) = tsunami_store::wal::replay(&wal_path).expect("readable wal");
        let wal_kib = std::fs::metadata(&wal_path).map_or(0.0, |m| m.len() as f64 / 1024.0);
        let (mut db, reopen_ms) = timed_open(&dir);
        db.checkpoint().expect("checkpoint");
        drop(db);
        let (db, post_ckpt_ms) = timed_open(&dir);
        drop(db);
        t.add_row(vec![
            rows.to_string(),
            batches.to_string(),
            records.len().to_string(),
            fmt_f64(wal_kib),
            fmt_f64(reopen_ms),
            fmt_f64(post_ckpt_ms),
        ]);
        entries.push((batches, records.len(), wal_kib, reopen_ms, post_ckpt_ms));
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Some(path) = json_path {
        match write_bench_wal_json(path, rows, config.seed, &entries) {
            Ok(()) => eprintln!("# walbench: wrote {}", path.display()),
            Err(e) => eprintln!("# walbench: could not write {}: {e}", path.display()),
        }
    }
    crate::experiments::finish(t)
}

/// Part 2: scan latency as tombstones pile up, then after the cumulative
/// deletion fraction crosses the staleness bar and the survivors are
/// re-gridded. Runs in memory — the read-side cost is index-shape, not WAL.
fn delete_scan_sweep(config: &HarnessConfig, _json_path: Option<&std::path::Path>) -> String {
    let mut t = Table::new(
        "walbench (deletes): scan latency under tombstones, then after compaction",
        &["phase", "live rows", "drift fraction", "avg query (us)"],
    );
    let rows = config.rows;
    let data = dataset(rows, config.seed ^ 1);
    let workload = probe_workload(config.seed ^ 1);
    let spec = IndexSpec::Tsunami(config.tsunami_config());
    let mut db = Database::new();
    db.create_table_unnamed("t", data, &workload, &spec)
        .expect("create");
    let mut phase = |db: &Database, label: &str| {
        let table = db.table("t").expect("registered");
        t.add_row(vec![
            label.to_string(),
            table.num_rows().to_string(),
            fmt_f64(table.data_drift_fraction()),
            fmt_f64(avg_query_us(&table, &workload)),
        ]);
    };
    phase(&db, "baseline");
    // ~15% band: tombstones (maybe per-region compaction), no full rebuild.
    db.delete(
        "t",
        &[Predicate::range(0, 0, DOMAIN * 15 / 100 - 1).unwrap()],
    )
    .expect("small delete");
    phase(&db, "after 15% delete");
    // Cumulative ~55%: crosses the rebuild bar, survivors re-gridded.
    db.delete(
        "t",
        &[Predicate::range(0, DOMAIN * 15 / 100, DOMAIN * 55 / 100 - 1).unwrap()],
    )
    .expect("big delete");
    phase(&db, "after 55% cumulative delete");
    crate::experiments::finish(t)
}

/// Hand-rolled (the workspace is offline — no serde) machine-readable dump
/// of the replay sweep.
fn write_bench_wal_json(
    path: &std::path::Path,
    rows: usize,
    seed: u64,
    entries: &[ReplayEntry],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"walbench\",\n  \"rows\": {rows},\n  \"seed\": {seed},\n  \"entries\": [\n"
    ));
    for (i, (batches, records, kib, reopen, post_ckpt)) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"batches\": {batches}, \"wal_records\": {records}, \
             \"wal_kib\": {kib:.2}, \"reopen_ms\": {reopen:.3}, \
             \"post_checkpoint_reopen_ms\": {post_ckpt:.3}}}{comma}\n"
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walbench_smoke_covers_replay_and_delete_phases() {
        let cfg = HarnessConfig {
            rows: 2_000,
            queries_per_type: 2,
            seed: 13,
        };
        let out = walbench_impl(&cfg, None);
        for label in [
            "WAL records",
            "reopen after checkpoint (ms)",
            "baseline",
            "after 15% delete",
            "after 55% cumulative delete",
        ] {
            assert!(out.contains(label), "missing {label} in:\n{out}");
        }
    }

    #[test]
    fn bench_wal_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_wal_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_wal.json");
        write_bench_wal_json(&path, 5000, 7, &[(16, 17, 420.5, 12.25, 3.5)]).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"walbench\""));
        assert!(s.contains("\"batches\": 16"));
        assert!(s.contains("\"wal_records\": 17"));
        assert!(s.contains("\"reopen_ms\": 12.250"));
        assert!(s.contains("\"post_checkpoint_reopen_ms\": 3.500"));
        std::fs::remove_file(&path).unwrap();
    }
}
