//! `fig7net`: an open-loop network load generator over the `tsunami-server`
//! wire protocol — the serving benchmark every later PR gets judged
//! against.
//!
//! A K-shard [`ShardedDatabase`] of TPC-H rows is served on loopback and
//! swept across target QPS levels with a mixed read/insert workload. The
//! generator is **open-loop with a closed-form schedule**: operation `i` of
//! an `N = target_qps × duration` run is due at `t_i = i / target_qps`
//! regardless of how long earlier operations took, and latency is measured
//! from the *scheduled* send time, so queueing delay under overload is
//! charged to the server instead of silently self-throttling the client
//! (the coordinated-omission trap closed-loop generators fall into).
//!
//! Correctness brackets the sweep: before serving, every aggregation is
//! checked bit-identical between the sharded database and an unsharded
//! oracle; after serving, the (deterministically generated) inserted rows
//! are replayed into the oracle and the same bit-identity must hold over
//! the grown table — sharded scatter-gather through live ingest never
//! drifts from single-node semantics.
//!
//! Results land in `BENCH_net.json` (override with `BENCH_NET_JSON`):
//! p50/p95/p99 latency and achieved QPS per target. Knobs:
//! `TSUNAMI_SHARDS`, `TSUNAMI_NET_QPS` (comma-separated sweep),
//! `TSUNAMI_NET_DURATION_MS`, `TSUNAMI_NET_CONNS`.

use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

use tsunami_core::sample::SplitMix;
use tsunami_core::{Aggregation, Point, Predicate, Query, Workload};
use tsunami_engine::{Database, IndexSpec, ShardedDatabase};
use tsunami_server::{Client, Server, ServerConfig};
use tsunami_workloads::tpch;

use crate::harness::HarnessConfig;
use crate::table::Table;

const TABLE: &str = "lineitem";
/// Every `INSERT_EVERY`-th operation is an insert (a 10% write mix).
const INSERT_EVERY: usize = 10;
/// Rows per insert operation.
const INSERT_BATCH: usize = 8;

/// Load-generator geometry, env-derived by default so CI smokes can shrink
/// the sweep without touching code.
#[derive(Debug, Clone)]
pub struct NetOptions {
    /// Shards behind the server (`TSUNAMI_SHARDS`, default 4).
    pub shards: usize,
    /// Concurrent client connections (`TSUNAMI_NET_CONNS`, default 4).
    pub connections: usize,
    /// Sweep duration per QPS target, milliseconds
    /// (`TSUNAMI_NET_DURATION_MS`, default 1000).
    pub duration_ms: u64,
    /// QPS targets (`TSUNAMI_NET_QPS`, default `250,500,1000`).
    pub targets: Vec<u64>,
}

impl NetOptions {
    /// Reads the geometry from the environment.
    pub fn from_env() -> Self {
        let parse = |name: &str, default: u64| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or(default)
                .max(1)
        };
        let targets = std::env::var("TSUNAMI_NET_QPS")
            .ok()
            .map(|v| {
                v.split(',')
                    .filter_map(|t| t.trim().parse::<u64>().ok())
                    .filter(|&t| t > 0)
                    .collect::<Vec<_>>()
            })
            .filter(|t| !t.is_empty())
            .unwrap_or_else(|| vec![250, 500, 1_000]);
        Self {
            shards: parse("TSUNAMI_SHARDS", 4) as usize,
            connections: parse("TSUNAMI_NET_CONNS", 4) as usize,
            duration_ms: parse("TSUNAMI_NET_DURATION_MS", 1_000),
            targets,
        }
    }
}

/// One QPS target's measured outcome.
#[derive(Debug, Clone)]
struct SweepEntry {
    target_qps: u64,
    achieved_qps: f64,
    ops: usize,
    reads: usize,
    insert_rows: usize,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

/// The registered `fig7net` experiment: env-derived geometry, JSON to
/// `BENCH_net.json` (or `BENCH_NET_JSON`).
pub fn fig7net(config: &HarnessConfig) -> String {
    let path = std::env::var("BENCH_NET_JSON").unwrap_or_else(|_| "BENCH_net.json".to_string());
    fig7net_impl(
        config,
        &NetOptions::from_env(),
        Some(std::path::Path::new(&path)),
    )
}

pub(crate) fn fig7net_impl(
    config: &HarnessConfig,
    opts: &NetOptions,
    json_path: Option<&std::path::Path>,
) -> String {
    let data = tpch::generate(config.rows, config.seed);
    let workload = tpch::workload(&data, config.queries_per_type, config.seed ^ 0x6e65_745f);
    let spec = IndexSpec::Tsunami(config.tsunami_config());
    let domains: Vec<u64> = (0..data.num_dims())
        .map(|d| data.column(d).iter().copied().max().unwrap_or(0) + 1)
        .collect();

    // The unsharded oracle the sharded results must stay bit-identical to.
    let mut oracle = Database::new();
    oracle
        .create_table(TABLE, &tpch::COLUMNS, data.clone(), &workload, &spec)
        .expect("build oracle table");

    let mut sharded = ShardedDatabase::new(opts.shards);
    sharded
        .create_table(TABLE, &tpch::COLUMNS, &data, &workload, &spec)
        .expect("build sharded table");

    // Pre-sweep differential: all five aggregations, sharded vs oracle.
    assert_differential(&oracle, &sharded, &workload, "pre-sweep");

    let db = Arc::new(RwLock::new(sharded));
    let mut server = Server::spawn(Arc::clone(&db), ServerConfig::default()).expect("bind server");
    let addr = server.addr();

    let mut t = Table::new(
        "Fig 7 (network): open-loop QPS sweep over the sharded wire-protocol server",
        &[
            "target qps",
            "achieved qps",
            "ops",
            "insert rows",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
        ],
    );
    let mut entries = Vec::new();
    for (sweep, &target) in opts.targets.iter().enumerate() {
        let entry = run_open_loop(addr, target, opts, sweep, config.seed, &workload, &domains);
        t.add_row(vec![
            entry.target_qps.to_string(),
            format!("{:.1}", entry.achieved_qps),
            entry.ops.to_string(),
            entry.insert_rows.to_string(),
            entry.p50_us.to_string(),
            entry.p95_us.to_string(),
            entry.p99_us.to_string(),
        ]);
        entries.push(entry);
    }
    let daemon_passes = server.daemon().passes();
    server.shutdown();
    drop(server);

    // Post-sweep differential *through ingest*: replay the deterministic
    // insert stream into the oracle and re-check bit-identity over the
    // grown table.
    let sharded = Arc::try_unwrap(db)
        .expect("server released the database")
        .into_inner()
        .unwrap();
    let mut replayed = 0usize;
    for (sweep, &target) in opts.targets.iter().enumerate() {
        let n_ops = sweep_ops(target, opts.duration_ms);
        for op in 0..n_ops {
            if is_insert(op) {
                let rows = insert_rows(config.seed, sweep, op, &domains);
                replayed += rows.len();
                oracle.insert_batch(TABLE, &rows).expect("oracle ingest");
            }
        }
    }
    let grown = entries.iter().map(|e| e.insert_rows).sum::<usize>();
    assert_eq!(
        replayed, grown,
        "replayed insert stream diverged from the sweep's"
    );
    assert_differential(&oracle, &sharded, &workload, "post-ingest");
    eprintln!(
        "# fig7net: {} rows ingested over the wire, {} daemon passes, post-ingest differential ok",
        grown, daemon_passes
    );

    if let Some(path) = json_path {
        match write_bench_net_json(path, config, opts, &entries) {
            Ok(()) => eprintln!("# fig7net: wrote {}", path.display()),
            Err(e) => eprintln!("# fig7net: could not write {}: {e}", path.display()),
        }
    }
    crate::experiments::finish(t)
}

/// Total operations for one sweep: the closed-form `qps × duration`.
fn sweep_ops(target_qps: u64, duration_ms: u64) -> usize {
    ((target_qps as u128 * duration_ms as u128) / 1_000).max(1) as usize
}

/// Operation `op`'s class under the fixed read/insert mix.
fn is_insert(op: usize) -> bool {
    op % INSERT_EVERY == INSERT_EVERY - 1
}

/// The deterministic rows operation `op` of sweep `sweep` inserts — a pure
/// function of (seed, sweep, op) so the oracle replay regenerates the exact
/// stream the load generator sent.
fn insert_rows(seed: u64, sweep: usize, op: usize, domains: &[u64]) -> Vec<Point> {
    let mut rng = SplitMix::new(
        seed ^ (sweep as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ (op as u64).wrapping_mul(0xff51_afd7_ed55_8ccd),
    );
    (0..INSERT_BATCH)
        .map(|_| domains.iter().map(|&d| rng.next_below(d.max(1))).collect())
        .collect()
}

/// The read operation `op` issues: predicates from the reference workload,
/// aggregation rotated through all five kinds so live traffic exercises
/// every response variant and every merge rule.
fn read_op(workload: &Workload, op: usize, num_dims: usize) -> (Vec<Predicate>, Aggregation) {
    let q = &workload.queries()[op % workload.len()];
    let dim = op % num_dims;
    let agg = match op % 5 {
        0 => Aggregation::Count,
        1 => Aggregation::Sum(dim),
        2 => Aggregation::Min(dim),
        3 => Aggregation::Max(dim),
        _ => Aggregation::Avg(dim),
    };
    (q.predicates().to_vec(), agg)
}

/// One open-loop sweep at `target` QPS: `connections` client threads share
/// the schedule round-robin, each op due at `i / target` seconds after the
/// common epoch, latency charged from the due time.
fn run_open_loop(
    addr: std::net::SocketAddr,
    target: u64,
    opts: &NetOptions,
    sweep: usize,
    seed: u64,
    workload: &Workload,
    domains: &[u64],
) -> SweepEntry {
    let n_ops = sweep_ops(target, opts.duration_ms);
    let conns = opts.connections.min(n_ops).max(1);
    let num_dims = domains.len();
    let epoch = Instant::now();
    let results: Vec<(Vec<u64>, usize, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let mut latencies = Vec::with_capacity(n_ops / conns + 1);
                    let mut reads = 0usize;
                    let mut insert_rows_sent = 0usize;
                    let mut errors = 0usize;
                    for op in (c..n_ops).step_by(conns) {
                        let due = Duration::from_secs_f64(op as f64 / target as f64);
                        if let Some(wait) = due.checked_sub(epoch.elapsed()) {
                            std::thread::sleep(wait);
                        }
                        let ok = if is_insert(op) {
                            let rows = insert_rows(seed, sweep, op, domains);
                            insert_rows_sent += rows.len();
                            client.insert(TABLE, rows).is_ok()
                        } else {
                            reads += 1;
                            let (preds, agg) = read_op(workload, op, num_dims);
                            client.query(TABLE, preds, agg).is_ok()
                        };
                        if !ok {
                            errors += 1;
                        }
                        latencies.push(epoch.elapsed().saturating_sub(due).as_micros() as u64);
                    }
                    (latencies, reads, insert_rows_sent, errors)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = epoch.elapsed().as_secs_f64();

    let mut latencies = Vec::with_capacity(n_ops);
    let (mut reads, mut insert_rows_sent, mut errors) = (0, 0, 0);
    for (l, r, i, e) in results {
        latencies.extend(l);
        reads += r;
        insert_rows_sent += i;
        errors += e;
    }
    assert_eq!(
        errors, 0,
        "the server answered {errors} operations with errors"
    );
    latencies.sort_unstable();
    SweepEntry {
        target_qps: target,
        achieved_qps: latencies.len() as f64 / wall.max(f64::EPSILON),
        ops: latencies.len(),
        reads,
        insert_rows: insert_rows_sent,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
    }
}

/// Nearest-rank percentile over sorted data.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Asserts all five aggregations bit-identical between the oracle table and
/// the sharded one, over the reference workload's predicate sets.
fn assert_differential(
    oracle: &Database,
    sharded: &ShardedDatabase,
    workload: &Workload,
    phase: &str,
) {
    let solo = oracle.table(TABLE).expect("oracle table");
    let wide = sharded.table(TABLE).expect("sharded table");
    assert_eq!(
        solo.num_rows(),
        wide.num_rows(),
        "{phase}: row counts diverged"
    );
    let num_dims = solo.num_columns();
    for (i, q) in workload.queries().iter().step_by(5).enumerate() {
        let dim = i % num_dims;
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(dim),
            Aggregation::Min(dim),
            Aggregation::Max(dim),
            Aggregation::Avg(dim),
        ] {
            let q = Query::new(q.predicates().to_vec(), agg).unwrap();
            assert_eq!(
                wide.execute(&q).unwrap(),
                solo.execute(&q).unwrap(),
                "{phase}: sharded result diverged on {q:?}"
            );
        }
    }
}

/// Hand-rolled (the workspace is offline — no serde) machine-readable dump
/// of the network sweep: per QPS target, achieved throughput and
/// p50/p95/p99 latency from the scheduled send time.
fn write_bench_net_json(
    path: &std::path::Path,
    config: &HarnessConfig,
    opts: &NetOptions,
    entries: &[SweepEntry],
) -> std::io::Result<()> {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str(&format!(
        "  \"experiment\": \"fig7net\",\n  \"rows\": {},\n  \"seed\": {},\n  \
         \"shards\": {},\n  \"connections\": {},\n  \"duration_ms\": {},\n  \"entries\": [\n",
        config.rows, config.seed, opts.shards, opts.connections, opts.duration_ms
    ));
    for (i, e) in entries.iter().enumerate() {
        let comma = if i + 1 == entries.len() { "" } else { "," };
        s.push_str(&format!(
            "    {{\"target_qps\": {}, \"achieved_qps\": {:.1}, \"ops\": {}, \
             \"reads\": {}, \"insert_rows\": {}, \"p50_us\": {}, \"p95_us\": {}, \
             \"p99_us\": {}}}{comma}\n",
            e.target_qps,
            e.achieved_qps,
            e.ops,
            e.reads,
            e.insert_rows,
            e.p50_us,
            e.p95_us,
            e.p99_us
        ));
    }
    s.push_str("  ]\n}\n");
    std::fs::write(path, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7net_tiny_sweep_completes_with_bit_identical_results() {
        // The impl itself asserts the pre-sweep and post-ingest differentials
        // and zero server errors; a completed run is the assertion.
        let config = HarnessConfig {
            rows: 2_500,
            queries_per_type: 3,
            seed: 11,
        };
        let opts = NetOptions {
            shards: 4,
            connections: 2,
            duration_ms: 200,
            targets: vec![200],
        };
        let out = fig7net_impl(&config, &opts, None);
        assert!(out.contains("200"), "missing target row in:\n{out}");
    }

    #[test]
    fn bench_net_json_is_well_formed() {
        let dir = std::env::temp_dir().join("tsunami_bench_net_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_net.json");
        let config = HarnessConfig::default();
        let opts = NetOptions {
            shards: 4,
            connections: 4,
            duration_ms: 1_000,
            targets: vec![250, 500],
        };
        let entries = vec![
            SweepEntry {
                target_qps: 250,
                achieved_qps: 249.6,
                ops: 250,
                reads: 225,
                insert_rows: 200,
                p50_us: 120,
                p95_us: 340,
                p99_us: 900,
            },
            SweepEntry {
                target_qps: 500,
                achieved_qps: 498.0,
                ops: 500,
                reads: 450,
                insert_rows: 400,
                p50_us: 130,
                p95_us: 400,
                p99_us: 1_200,
            },
        ];
        write_bench_net_json(&path, &config, &opts, &entries).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        assert!(s.contains("\"experiment\": \"fig7net\""));
        assert!(s.contains("\"target_qps\": 500"));
        assert_eq!(s.matches('{').count(), s.matches('}').count());
        assert!(!s.contains(",\n  ]"), "trailing comma in entries array");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn percentiles_and_schedule_are_sane() {
        let sorted: Vec<u64> = (1..=100).collect();
        // Nearest rank over 0..=99 indices: 49.5 rounds up, 98.01 rounds down.
        assert_eq!(percentile(&sorted, 50.0), 51);
        assert_eq!(percentile(&sorted, 99.0), 99);
        assert_eq!(percentile(&[], 99.0), 0);
        assert_eq!(sweep_ops(1_000, 250), 250);
        assert_eq!(sweep_ops(1, 1), 1);
        // The mix is 10% inserts.
        let inserts = (0..100).filter(|&op| is_insert(op)).count();
        assert_eq!(inserts, 10);
        // Insert rows are deterministic.
        let domains = vec![10, 20, 30];
        assert_eq!(
            insert_rows(1, 2, 3, &domains),
            insert_rows(1, 2, 3, &domains)
        );
        assert_ne!(
            insert_rows(1, 2, 3, &domains),
            insert_rows(1, 2, 4, &domains)
        );
    }
}
