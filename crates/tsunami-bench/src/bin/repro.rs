//! `repro` — regenerates the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! repro [EXPERIMENT] [--rows N] [--queries-per-type N] [--seed N]
//! ```
//!
//! `EXPERIMENT` is one of `table3`, `table4`, `fig7`, `fig7par`,
//! `fig7sched`, `fig7net`, `fig8`, `fig9a`, `fig9b`, `fig10`, `fig11a`,
//! `fig11b`, `fig12a`, `fig12b`, `fig12kern`, `figmv`, `walbench`,
//! `check-bench`, or `all` (default). Run in release mode:
//! `cargo run --release -p tsunami-bench --bin repro -- fig7`.
//!
//! `fig12kern` additionally writes machine-readable `BENCH_scan.json`
//! (median ns/row per selectivity × predicate count × kernel tier; path
//! overridable via the `BENCH_SCAN_JSON` env var), `fig9b` writes
//! `BENCH_ingest.json` (ingest-vs-rebuild across batch sizes; override via
//! `BENCH_INGEST_JSON`), and `fig7par` writes `BENCH_pool.json`
//! (serial vs spawn-per-call vs pooled executor latency per dataset × index,
//! with the pool's worker count and morsel size; override via
//! `BENCH_POOL_JSON`), and `fig7net` writes `BENCH_net.json` (open-loop
//! QPS sweep over the sharded wire-protocol server: achieved QPS and
//! p50/p95/p99 latency per target; override via `BENCH_NET_JSON`, tune with
//! `TSUNAMI_SHARDS`, `TSUNAMI_NET_QPS`, `TSUNAMI_NET_DURATION_MS`,
//! `TSUNAMI_NET_CONNS`), and `figmv` writes `BENCH_matview.json`
//! (materialized-aggregate covered-query latency, matview on vs off, per
//! coverage × aggregation; override via `BENCH_MATVIEW_JSON`, disable the
//! layer with `TSUNAMI_MATVIEW=off`), and `walbench` writes `BENCH_wal.json`
//! (`Database::open` replay time vs WAL length before/after a checkpoint,
//! plus scan latency under tombstoned and compacted deletes; override via
//! `BENCH_WAL_JSON`) so performance is tracked across PRs.
//!
//! The pool itself is tunable with `TSUNAMI_POOL_THREADS` (worker count,
//! default `available_parallelism`) and `TSUNAMI_MORSEL_ROWS` (rows per
//! cache-resident morsel, default 131072).
//!
//! `check-bench` is the CI regression gate: it re-runs the `fig12kern` and
//! `figmv` smokes and exits non-zero if any median regressed past
//! `max(2.5x, +slack)` of the checked-in baselines under `bench-baselines/`
//! (`BENCH_scan.json` overridable via `BENCH_BASELINE_JSON`). Fresh
//! `BENCH_pool.json` / `BENCH_ingest.json` files from earlier `fig7par` /
//! `fig9b` steps are gated against their committed baselines when present.

use tsunami_bench::experiments;
use tsunami_bench::HarnessConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut config = HarnessConfig::default();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rows" => {
                config.rows = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.rows);
                i += 2;
            }
            "--queries-per-type" | "--qpt" => {
                config.queries_per_type = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.queries_per_type);
                i += 2;
            }
            "--seed" => {
                config.seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(config.seed);
                i += 2;
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other => {
                experiment = other.to_string();
                i += 1;
            }
        }
    }

    eprintln!(
        "# repro: experiment={experiment} rows={} queries/type={} seed={}",
        config.rows, config.queries_per_type, config.seed
    );

    if experiment == "all" {
        experiments::all(&config);
        return;
    }
    if experiment == "check-bench" {
        match experiments::check_bench(&config) {
            Ok(summary) => println!("{summary}"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
        return;
    }
    match experiments::experiments()
        .into_iter()
        .find(|(name, _)| *name == experiment)
    {
        Some((_, f)) => {
            f(&config);
        }
        None => {
            eprintln!("unknown experiment: {experiment}");
            print_usage();
            std::process::exit(1);
        }
    }
}

fn print_usage() {
    eprintln!("usage: repro [EXPERIMENT] [--rows N] [--queries-per-type N] [--seed N]");
    eprintln!("experiments: all, table3, table4, fig7, fig7par, fig7sched, fig7net, fig8, fig9a, fig9b, fig10, fig11a, fig11b, fig12a, fig12b, fig12kern, figmv, walbench, check-bench");
    eprintln!("fig12kern also writes BENCH_scan.json (override path with BENCH_SCAN_JSON); fig9b writes BENCH_ingest.json (BENCH_INGEST_JSON); fig7par writes BENCH_pool.json (BENCH_POOL_JSON); fig7net writes BENCH_net.json (BENCH_NET_JSON); figmv writes BENCH_matview.json (BENCH_MATVIEW_JSON); walbench writes BENCH_wal.json (BENCH_WAL_JSON)");
    eprintln!("fig7net tuning: TSUNAMI_SHARDS, TSUNAMI_NET_QPS (comma-separated sweep), TSUNAMI_NET_DURATION_MS, TSUNAMI_NET_CONNS");
    eprintln!("pool tuning: TSUNAMI_POOL_THREADS (workers), TSUNAMI_MORSEL_ROWS (rows per morsel); matview: TSUNAMI_MATVIEW=off disables materialized aggregates");
    eprintln!("check-bench re-runs fig12kern + figmv and fails on >2.5x median regressions vs bench-baselines/ (BENCH_scan.json path via BENCH_BASELINE_JSON); fresh BENCH_pool.json/BENCH_ingest.json are gated too when present");
}
