//! Minimal plain-text table rendering for experiment output.

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: String,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            title: title.to_string(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table as an aligned plain-text block.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with three significant-looking decimals.
pub fn fmt_f64(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_counts_rows() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.add_row(vec!["alpha".into(), "1".into()]);
        t.add_row(vec!["b".into(), "12345".into()]);
        let out = t.render();
        assert!(out.contains("== Demo =="));
        assert!(out.contains("alpha"));
        assert_eq!(t.num_rows(), 2);
        // Rows have consistent width formatting.
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.add_row(vec!["only-one".into()]);
    }

    #[test]
    fn fmt_f64_scales() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1234.7), "1235");
        assert_eq!(fmt_f64(12.345), "12.35");
        assert_eq!(fmt_f64(0.01234), "0.0123");
    }
}
