//! Shared machinery for building every index on a dataset/workload bundle
//! and measuring query performance, index size, and build time.

use std::time::Instant;

use tsunami_baselines::{
    tune_page_size, ClusteredSingleDimIndex, HyperOctree, KdTree, ZOrderIndex,
};
use tsunami_core::{CostModel, Dataset, MultiDimIndex, Workload};
use tsunami_flood::{FloodConfig, FloodIndex};
use tsunami_index::{IndexVariant, OptimizerKind, TsunamiConfig, TsunamiIndex};

/// Scale knobs for the experiment harness. The paper runs 184M–300M rows;
/// this reproduction defaults to laptop-scale sizes that preserve the
/// relative behaviour of the indexes.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Rows per generated dataset.
    pub rows: usize,
    /// Queries per query type.
    pub queries_per_type: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            rows: 60_000,
            queries_per_type: 25,
            seed: 42,
        }
    }
}

impl HarnessConfig {
    /// The Tsunami build configuration used by the experiments (moderate
    /// optimizer effort, suitable for repeated builds in one process).
    pub fn tsunami_config(&self) -> TsunamiConfig {
        TsunamiConfig {
            optimizer_sample_size: 800,
            optimizer_max_iters: 6,
            max_cells_per_grid: 1 << 13,
            max_tree_depth: 5,
            ..TsunamiConfig::default()
        }
    }

    /// The Flood build configuration used by the experiments.
    pub fn flood_config(&self) -> FloodConfig {
        FloodConfig {
            max_cells: 1 << 15,
            sample_size: 1_500,
            max_iters: 12,
            seed: self.seed,
        }
    }

    /// Candidate page sizes used when tuning the non-learned baselines.
    pub fn page_size_candidates(&self) -> Vec<usize> {
        vec![256, 1024, 4096]
    }
}

/// Measured behaviour of one index on one workload.
#[derive(Debug, Clone)]
pub struct IndexReport {
    /// Index name.
    pub name: String,
    /// Average query latency in microseconds.
    pub avg_query_us: f64,
    /// Queries per second (1e6 / avg_query_us).
    pub throughput_qps: f64,
    /// Index structure size in bytes.
    pub size_bytes: usize,
    /// Seconds spent reorganizing (sorting) the data at build time.
    pub sort_secs: f64,
    /// Seconds spent optimizing the layout at build time.
    pub optimize_secs: f64,
    /// Average number of points scanned per query.
    pub avg_points_scanned: f64,
    /// Average number of contiguous physical ranges scanned per query.
    pub avg_ranges_scanned: f64,
}

/// What [`measure`] observed: latency plus the executor's scan counters,
/// averaged over the workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Average query latency in microseconds.
    pub avg_query_us: f64,
    /// Average number of points scanned per query.
    pub avg_points_scanned: f64,
    /// Average number of contiguous physical ranges scanned per query.
    pub avg_ranges_scanned: f64,
}

/// Measures average query latency and the shared executor's scan counters.
pub fn measure(index: &dyn MultiDimIndex, workload: &Workload) -> Measurement {
    measure_with(workload, |q| index.execute_with_stats(q))
}

/// Like [`measure`], but running every query through the parallel executor
/// with `threads` worker threads.
pub fn measure_parallel(
    index: &dyn MultiDimIndex,
    workload: &Workload,
    threads: usize,
) -> Measurement {
    measure_with(workload, |q| index.execute_parallel(q, threads))
}

/// Shared measurement loop: warm-up, one counter-collecting pass, then one
/// timed pass, all through the provided execution closure so the serial and
/// parallel measurements stay methodologically identical.
fn measure_with(
    workload: &Workload,
    execute: impl Fn(&tsunami_core::Query) -> (tsunami_core::AggResult, tsunami_core::IndexStats),
) -> Measurement {
    if workload.is_empty() {
        return Measurement::default();
    }
    // Warm-up pass (fills caches) followed by the measured pass.
    for q in workload.queries().iter().take(8) {
        std::hint::black_box(execute(q));
    }
    let mut points = 0usize;
    let mut ranges = 0usize;
    for q in workload.queries() {
        let (_, stats) = execute(q);
        points += stats.points_scanned;
        ranges += stats.ranges_scanned;
    }
    let start = Instant::now();
    for q in workload.queries() {
        std::hint::black_box(execute(q).0);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = workload.len() as f64;
    Measurement {
        avg_query_us: elapsed * 1e6 / n,
        avg_points_scanned: points as f64 / n,
        avg_ranges_scanned: ranges as f64 / n,
    }
}

/// Builds a report for an already-built index.
pub fn report(index: &dyn MultiDimIndex, workload: &Workload) -> IndexReport {
    let m = measure(index, workload);
    let timing = index.build_timing();
    IndexReport {
        name: index.name().to_string(),
        avg_query_us: m.avg_query_us,
        throughput_qps: if m.avg_query_us > 0.0 {
            1e6 / m.avg_query_us
        } else {
            0.0
        },
        size_bytes: index.size_bytes(),
        sort_secs: timing.sort_secs,
        optimize_secs: timing.optimize_secs,
        avg_points_scanned: m.avg_points_scanned,
        avg_ranges_scanned: m.avg_ranges_scanned,
    }
}

/// Builds the full line-up of indexes the paper compares (Fig 7/8): Tsunami,
/// Flood, and the tuned non-learned baselines.
pub fn build_all_indexes(
    data: &Dataset,
    workload: &Workload,
    config: &HarnessConfig,
) -> Vec<Box<dyn MultiDimIndex>> {
    let cost = CostModel::default();
    let mut indexes: Vec<Box<dyn MultiDimIndex>> = Vec::new();

    let tsunami = TsunamiIndex::build_with_cost(data, workload, &cost, &config.tsunami_config())
        .expect("tsunami build");
    indexes.push(Box::new(tsunami));

    let flood = FloodIndex::build(data, workload, &cost, &config.flood_config());
    indexes.push(Box::new(flood));

    indexes.push(Box::new(ClusteredSingleDimIndex::build(data, workload)));

    let candidates = config.page_size_candidates();
    let z = tune_page_size(data, workload, &candidates, |d, w, ps| {
        ZOrderIndex::build(d, w, ps)
    });
    indexes.push(Box::new(ZOrderIndex::build(
        data,
        workload,
        z.best_page_size,
    )));

    let oct = tune_page_size(data, workload, &candidates, |d, w, ps| {
        HyperOctree::build(d, w, ps)
    });
    indexes.push(Box::new(HyperOctree::build(
        data,
        workload,
        oct.best_page_size,
    )));

    let kd = tune_page_size(data, workload, &candidates, |d, w, ps| {
        KdTree::build(d, w, ps)
    });
    indexes.push(Box::new(KdTree::build(data, workload, kd.best_page_size)));

    indexes
}

/// Builds just the learned indexes (used by scalability sweeps where
/// re-tuning every baseline would dominate runtime).
pub fn build_learned_indexes(
    data: &Dataset,
    workload: &Workload,
    config: &HarnessConfig,
) -> Vec<Box<dyn MultiDimIndex>> {
    let cost = CostModel::default();
    let tsunami = TsunamiIndex::build_with_cost(data, workload, &cost, &config.tsunami_config())
        .expect("tsunami build");
    let flood = FloodIndex::build(data, workload, &cost, &config.flood_config());
    vec![Box::new(tsunami), Box::new(flood)]
}

/// Builds a Tsunami variant (full / Grid-Tree-only / Augmented-Grid-only) for
/// the Fig 12a drill-down.
pub fn build_variant(
    data: &Dataset,
    workload: &Workload,
    config: &HarnessConfig,
    variant: IndexVariant,
) -> TsunamiIndex {
    TsunamiIndex::build_with_cost(
        data,
        workload,
        &CostModel::default(),
        &config.tsunami_config().with_variant(variant),
    )
    .expect("variant build")
}

/// Builds an Augmented-Grid-only Tsunami index with a specific optimizer
/// (Fig 12b).
pub fn build_with_optimizer(
    data: &Dataset,
    workload: &Workload,
    config: &HarnessConfig,
    optimizer: OptimizerKind,
) -> TsunamiIndex {
    TsunamiIndex::build_with_cost(
        data,
        workload,
        &CostModel::default(),
        &config
            .tsunami_config()
            .with_variant(IndexVariant::AugmentedGridOnly)
            .with_optimizer(optimizer),
    )
    .expect("optimizer build")
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_workloads::DatasetBundle;

    #[test]
    fn full_lineup_builds_and_answers_consistently() {
        let config = HarnessConfig {
            rows: 4_000,
            queries_per_type: 4,
            seed: 7,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let bundle = &bundles[0];
        let indexes = build_all_indexes(&bundle.data, &bundle.workload, &config);
        assert_eq!(indexes.len(), 6);
        // All indexes agree with the full-scan oracle on a few queries.
        for q in bundle.workload.queries().iter().step_by(7) {
            let expected = q.execute_full_scan(&bundle.data);
            for idx in &indexes {
                assert_eq!(
                    idx.execute(q),
                    expected,
                    "{} disagrees on {q:?}",
                    idx.name()
                );
            }
        }
        // Reports contain sane values.
        for idx in &indexes {
            let r = report(idx.as_ref(), &bundle.workload);
            assert!(r.avg_query_us > 0.0);
            assert!(r.throughput_qps > 0.0);
            assert!(r.avg_points_scanned <= bundle.data.len() as f64);
        }
    }

    #[test]
    fn parallel_executor_agrees_with_serial_across_the_lineup() {
        let config = HarnessConfig {
            rows: 5_000,
            queries_per_type: 3,
            seed: 9,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let bundle = &bundles[1];
        let indexes = build_all_indexes(&bundle.data, &bundle.workload, &config);
        for q in bundle.workload.queries().iter().step_by(5) {
            for idx in &indexes {
                let (serial, serial_stats) = idx.execute_with_stats(q);
                let (parallel, parallel_stats) = idx.execute_parallel(q, 4);
                assert_eq!(serial, parallel, "{} result on {q:?}", idx.name());
                assert_eq!(
                    serial_stats,
                    parallel_stats,
                    "{} counters on {q:?}",
                    idx.name()
                );
            }
        }
    }

    #[test]
    fn learned_only_lineup_is_smaller() {
        let config = HarnessConfig {
            rows: 3_000,
            queries_per_type: 3,
            seed: 8,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let learned = build_learned_indexes(&bundles[2].data, &bundles[2].workload, &config);
        assert_eq!(learned.len(), 2);
        assert_eq!(learned[0].name(), "Tsunami");
        assert_eq!(learned[1].name(), "Flood");
    }
}
