//! Shared machinery for building every index on a dataset/workload bundle
//! and measuring query performance, index size, and build time.
//!
//! Since the `tsunami-engine` front-end landed, the harness goes through the
//! [`Database`] facade: each experiment registers one table per index family
//! (same dataset, different [`IndexSpec`]) and measures through the table
//! handles, exactly like an application would.

use std::time::Instant;

use tsunami_core::{Dataset, MultiDimIndex, Workload};
use tsunami_engine::{Database, IndexSpec, PageSize, Table};
use tsunami_flood::FloodConfig;
use tsunami_index::{IndexVariant, TsunamiConfig};
use tsunami_workloads::DatasetBundle;

/// Scale knobs for the experiment harness. The paper runs 184M–300M rows;
/// this reproduction defaults to laptop-scale sizes that preserve the
/// relative behaviour of the indexes.
#[derive(Debug, Clone, Copy)]
pub struct HarnessConfig {
    /// Rows per generated dataset.
    pub rows: usize,
    /// Queries per query type.
    pub queries_per_type: usize,
    /// Base random seed.
    pub seed: u64,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        Self {
            rows: 60_000,
            queries_per_type: 25,
            seed: 42,
        }
    }
}

impl HarnessConfig {
    /// The Tsunami build configuration used by the experiments (moderate
    /// optimizer effort, suitable for repeated builds in one process).
    pub fn tsunami_config(&self) -> TsunamiConfig {
        TsunamiConfig {
            optimizer_sample_size: 800,
            optimizer_max_iters: 6,
            max_cells_per_grid: 1 << 13,
            max_tree_depth: 5,
            ..TsunamiConfig::default()
        }
    }

    /// The Flood build configuration used by the experiments.
    pub fn flood_config(&self) -> FloodConfig {
        FloodConfig {
            max_cells: 1 << 15,
            sample_size: 1_500,
            max_iters: 12,
            seed: self.seed,
        }
    }

    /// Candidate page sizes used when tuning the non-learned baselines.
    pub fn page_size_candidates(&self) -> Vec<usize> {
        vec![256, 1024, 4096]
    }

    /// The paper's full index line-up (Fig 7/8) as engine specs: Tsunami,
    /// Flood, and the tuned non-learned baselines.
    pub fn all_specs(&self) -> Vec<IndexSpec> {
        let tuned = PageSize::TunedOver(self.page_size_candidates());
        vec![
            IndexSpec::Tsunami(self.tsunami_config()),
            IndexSpec::Flood(self.flood_config()),
            IndexSpec::SingleDim,
            IndexSpec::ZOrder(tuned.clone()),
            IndexSpec::Octree(tuned.clone()),
            IndexSpec::KdTree(tuned),
        ]
    }

    /// Just the learned indexes (used by scalability sweeps where re-tuning
    /// every baseline would dominate runtime).
    pub fn learned_specs(&self) -> Vec<IndexSpec> {
        vec![
            IndexSpec::Tsunami(self.tsunami_config()),
            IndexSpec::Flood(self.flood_config()),
        ]
    }
}

/// Measured behaviour of one index on one workload.
#[derive(Debug, Clone)]
pub struct IndexReport {
    /// Index name.
    pub name: String,
    /// Average query latency in microseconds.
    pub avg_query_us: f64,
    /// Queries per second (1e6 / avg_query_us).
    pub throughput_qps: f64,
    /// Index structure size in bytes.
    pub size_bytes: usize,
    /// Seconds spent reorganizing (sorting) the data at build time.
    pub sort_secs: f64,
    /// Seconds spent optimizing the layout at build time.
    pub optimize_secs: f64,
    /// Average number of points scanned per query.
    pub avg_points_scanned: f64,
    /// Average number of contiguous physical ranges scanned per query.
    pub avg_ranges_scanned: f64,
}

/// What [`measure`] observed: latency plus the executor's scan counters,
/// averaged over the workload.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Measurement {
    /// Average query latency in microseconds.
    pub avg_query_us: f64,
    /// Average number of points scanned per query.
    pub avg_points_scanned: f64,
    /// Average number of contiguous physical ranges scanned per query.
    pub avg_ranges_scanned: f64,
}

/// Measures average query latency and the shared executor's scan counters.
pub fn measure(index: &dyn MultiDimIndex, workload: &Workload) -> Measurement {
    measure_with(workload, |q| index.execute_with_stats(q))
}

/// Like [`measure`], but running every query through the parallel executor
/// with `threads` worker threads.
pub fn measure_parallel(
    index: &dyn MultiDimIndex,
    workload: &Workload,
    threads: usize,
) -> Measurement {
    measure_with(workload, |q| index.execute_parallel(q, threads))
}

/// Like [`measure_parallel`], but through the spawn-per-call baseline
/// executor ([`tsunami_core::exec::execute_plan_spawn_tiered`]) instead of
/// the persistent work-stealing pool. Benchmarks use this to quantify what
/// the pool saves per query; nothing on a query hot path calls it.
pub fn measure_spawn(
    index: &dyn MultiDimIndex,
    workload: &Workload,
    threads: usize,
) -> Measurement {
    use tsunami_core::exec::{execute_plan_spawn_tiered, KernelTier};
    measure_with(workload, |q| {
        let (result, counters) = execute_plan_spawn_tiered(
            index.source(),
            q,
            &index.plan(q),
            threads,
            KernelTier::default(),
        );
        (result, counters.into())
    })
}

/// Shared measurement loop: warm-up, one counter-collecting pass, then one
/// timed pass, all through the provided execution closure so the serial and
/// parallel measurements stay methodologically identical.
fn measure_with(
    workload: &Workload,
    execute: impl Fn(&tsunami_core::Query) -> (tsunami_core::AggResult, tsunami_core::IndexStats),
) -> Measurement {
    if workload.is_empty() {
        return Measurement::default();
    }
    // Warm-up pass (fills caches) followed by the measured pass.
    for q in workload.queries().iter().take(8) {
        std::hint::black_box(execute(q));
    }
    let mut points = 0usize;
    let mut ranges = 0usize;
    for q in workload.queries() {
        let (_, stats) = execute(q);
        points += stats.points_scanned;
        ranges += stats.ranges_scanned;
    }
    let start = Instant::now();
    for q in workload.queries() {
        std::hint::black_box(execute(q).0);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let n = workload.len() as f64;
    Measurement {
        avg_query_us: elapsed * 1e6 / n,
        avg_points_scanned: points as f64 / n,
        avg_ranges_scanned: ranges as f64 / n,
    }
}

/// Builds a report for a registered table's index.
pub fn report(table: &Table, workload: &Workload) -> IndexReport {
    let index = table.index();
    let m = measure(index, workload);
    let timing = index.build_timing();
    IndexReport {
        name: index.name().to_string(),
        avg_query_us: m.avg_query_us,
        throughput_qps: if m.avg_query_us > 0.0 {
            1e6 / m.avg_query_us
        } else {
            0.0
        },
        size_bytes: index.size_bytes(),
        sort_secs: timing.sort_secs,
        optimize_secs: timing.optimize_secs,
        avg_points_scanned: m.avg_points_scanned,
        avg_ranges_scanned: m.avg_ranges_scanned,
    }
}

/// Registers one table per spec over the same dataset (table names are the
/// spec labels) and returns the database. This is how every experiment
/// compares index families: same data, same workload, different layouts.
pub fn database_for(
    data: &Dataset,
    workload: &Workload,
    columns: &[&str],
    specs: &[IndexSpec],
) -> Database {
    let named: Vec<(String, IndexSpec)> = specs
        .iter()
        .map(|s| (s.label().to_string(), s.clone()))
        .collect();
    database_for_named(data, workload, columns, &named)
}

/// Like [`database_for`] with explicit table names, for line-ups where
/// several specs share a label (e.g. the Fig 12a Tsunami variants). All
/// tables share one `Arc` of the dataset.
pub fn database_for_named(
    data: &Dataset,
    workload: &Workload,
    columns: &[&str],
    named_specs: &[(String, IndexSpec)],
) -> Database {
    let data = std::sync::Arc::new(data.clone());
    let mut db = Database::new();
    for (name, spec) in named_specs {
        if columns.is_empty() {
            db.create_table_unnamed(name, std::sync::Arc::clone(&data), workload, spec)
        } else {
            db.create_table(name, columns, std::sync::Arc::clone(&data), workload, spec)
        }
        .unwrap_or_else(|e| panic!("building {name}: {e}"));
    }
    db
}

/// [`database_for`] over a standard dataset bundle, carrying the bundle's
/// column names into the schema.
pub fn database_for_bundle(bundle: &DatasetBundle, specs: &[IndexSpec]) -> Database {
    database_for(&bundle.data, &bundle.workload, &bundle.columns, specs)
}

/// Flood plus the three Tsunami component ablations (Fig 12a), as
/// `(table name, spec)` pairs — the Tsunami variants share the "Tsunami"
/// label, so they need distinct table names.
pub fn variant_specs(config: &HarnessConfig) -> Vec<(String, IndexSpec)> {
    let mut named = vec![("Flood".to_string(), IndexSpec::Flood(config.flood_config()))];
    for variant in [
        IndexVariant::AugmentedGridOnly,
        IndexVariant::GridTreeOnly,
        IndexVariant::Full,
    ] {
        named.push((
            format!("{variant:?}"),
            IndexSpec::Tsunami(config.tsunami_config().with_variant(variant)),
        ));
    }
    named
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsunami_workloads::DatasetBundle;

    #[test]
    fn full_lineup_builds_and_answers_consistently() {
        let config = HarnessConfig {
            rows: 4_000,
            queries_per_type: 4,
            seed: 7,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let bundle = &bundles[0];
        let db = database_for_bundle(bundle, &config.all_specs());
        assert_eq!(db.num_tables(), 6);
        // All indexes agree with the full-scan oracle on a few queries.
        for q in bundle.workload.queries().iter().step_by(7) {
            let expected = q.execute_full_scan(&bundle.data);
            for table in db.tables() {
                assert_eq!(
                    table.execute(q).unwrap(),
                    expected,
                    "{} disagrees on {q:?}",
                    table.name()
                );
            }
        }
        // Reports contain sane values.
        for table in db.tables() {
            let r = report(table, &bundle.workload);
            assert!(r.avg_query_us > 0.0);
            assert!(r.throughput_qps > 0.0);
            assert!(r.avg_points_scanned <= bundle.data.len() as f64);
        }
    }

    #[test]
    fn parallel_executor_agrees_with_serial_across_the_lineup() {
        let config = HarnessConfig {
            rows: 5_000,
            queries_per_type: 3,
            seed: 9,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let bundle = &bundles[1];
        let db = database_for_bundle(bundle, &config.all_specs());
        for q in bundle.workload.queries().iter().step_by(5) {
            for table in db.tables() {
                let idx = table.index();
                let (serial, serial_stats) = idx.execute_with_stats(q);
                let (parallel, parallel_stats) = idx.execute_parallel(q, 4);
                assert_eq!(serial, parallel, "{} result on {q:?}", table.name());
                assert_eq!(
                    serial_stats,
                    parallel_stats,
                    "{} counters on {q:?}",
                    table.name()
                );
            }
        }
    }

    #[test]
    fn learned_only_lineup_is_smaller() {
        let config = HarnessConfig {
            rows: 3_000,
            queries_per_type: 3,
            seed: 8,
        };
        let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
        let db = database_for_bundle(&bundles[2], &config.learned_specs());
        assert_eq!(db.num_tables(), 2);
        let names: Vec<&str> = db.tables().map(|t| t.name()).collect();
        assert_eq!(names, vec!["Tsunami", "Flood"]);
    }
}
