//! Criterion bench for Fig 9b: index creation time (data sorting +
//! optimization) for the learned indexes on a TPC-H-like bundle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsunami_bench::harness::HarnessConfig;
use tsunami_core::CostModel;
use tsunami_flood::FloodIndex;
use tsunami_index::TsunamiIndex;
use tsunami_workloads::tpch;

fn bench_build(c: &mut Criterion) {
    let config = HarnessConfig {
        rows: 15_000,
        queries_per_type: 5,
        seed: 42,
    };
    let data = tpch::generate(config.rows, config.seed);
    let workload = tpch::workload(&data, config.queries_per_type, config.seed ^ 10);
    let cost = CostModel::default();

    let mut group = c.benchmark_group("fig9b_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    group.bench_with_input(BenchmarkId::from_parameter("Tsunami"), &(), |b, ()| {
        b.iter(|| {
            std::hint::black_box(
                TsunamiIndex::build_with_cost(&data, &workload, &cost, &config.tsunami_config())
                    .expect("build"),
            )
        });
    });
    group.bench_with_input(BenchmarkId::from_parameter("Flood"), &(), |b, ()| {
        b.iter(|| {
            std::hint::black_box(FloodIndex::build(
                &data,
                &workload,
                &cost,
                &config.flood_config(),
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
