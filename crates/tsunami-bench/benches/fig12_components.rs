//! Criterion bench for Fig 12: (a) query latency of the component ablations
//! (Flood, Augmented-Grid-only, Grid-Tree-only, full Tsunami) and (b) the
//! runtime of the Augmented Grid layout optimizers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsunami_bench::harness::{database_for_named, variant_specs, HarnessConfig};
use tsunami_core::CostModel;
use tsunami_index::augmented_grid::{optimize_layout, OptimizerKind};
use tsunami_workloads::taxi;

fn bench_components(c: &mut Criterion) {
    let config = HarnessConfig {
        rows: 20_000,
        queries_per_type: 5,
        seed: 42,
    };
    let data = taxi::generate(config.rows, config.seed);
    let workload = taxi::workload(&data, config.queries_per_type, config.seed ^ 11);
    let cost = CostModel::default();

    // Fig 12a: query latency per component configuration, registered as
    // tables of one database.
    let db = database_for_named(&data, &workload, &[], &variant_specs(&config));
    let mut group = c.benchmark_group("fig12a_components");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for table in db.tables() {
        group.bench_with_input(
            BenchmarkId::from_parameter(table.index().name()),
            table,
            |b, table| {
                let mut qi = 0usize;
                b.iter(|| {
                    let q = &workload.queries()[qi % workload.len()];
                    qi += 1;
                    std::hint::black_box(table.index().execute(q))
                });
            },
        );
    }
    group.finish();

    // Fig 12b: optimizer runtime comparison.
    let mut group = c.benchmark_group("fig12b_optimizers");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(3));
    for (label, kind) in [
        ("AGD", OptimizerKind::Adaptive),
        ("GD", OptimizerKind::GradientOnly),
        ("BlackBox", OptimizerKind::BlackBox),
        ("AGD-NI", OptimizerKind::AdaptiveNaiveInit),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &kind, |b, &kind| {
            b.iter(|| {
                std::hint::black_box(optimize_layout(
                    &data,
                    &workload,
                    &cost,
                    &config.tsunami_config(),
                    kind,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_components);
criterion_main!(benches);
