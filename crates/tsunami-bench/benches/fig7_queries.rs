//! Criterion bench for Fig 7: per-query latency of every index on each of
//! the four dataset/workload bundles (scaled down for bench runtime).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tsunami_bench::harness::{database_for_bundle, HarnessConfig};
use tsunami_workloads::DatasetBundle;

fn bench_queries(c: &mut Criterion) {
    let config = HarnessConfig {
        rows: 20_000,
        queries_per_type: 5,
        seed: 42,
    };
    let bundles = DatasetBundle::standard(config.rows, config.queries_per_type, config.seed);
    for bundle in &bundles {
        let db = database_for_bundle(bundle, &config.all_specs());
        let mut group = c.benchmark_group(format!("fig7/{}", bundle.name));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(500));
        group.measurement_time(std::time::Duration::from_secs(2));
        for table in db.tables() {
            group.bench_with_input(
                BenchmarkId::from_parameter(table.name()),
                table,
                |b, table| {
                    let mut qi = 0usize;
                    b.iter(|| {
                        let q = &bundle.workload.queries()[qi % bundle.workload.len()];
                        qi += 1;
                        std::hint::black_box(table.index().execute(q))
                    });
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
