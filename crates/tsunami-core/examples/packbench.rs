//! Microbenchmark for the packed scan kernels: median-free, three passes
//! each, printed as ns/row. Useful when touching `exec/kernels.rs` — the
//! packed COUNT/SUM paths should stay well under 1 ns/row on
//! 12-bit-compressible data (see `fig12kern` for the full sweep).
use std::time::Instant;
use tsunami_core::{EncodeOptions, EncodedBlock};

fn main() {
    let rows: usize = 1 << 20;
    let vals: Vec<u64> = (0..rows as u64)
        .map(|v| v.wrapping_mul(37) % 4096)
        .collect();
    let blocks: Vec<EncodedBlock> = vals
        .chunks(1024)
        .map(|c| EncodedBlock::encode(c, |_| true, &EncodeOptions::default()))
        .collect();
    println!("block kind: {}", blocks[0].kind_label());

    for _ in 0..3 {
        let start = Instant::now();
        let mut total = 0usize;
        for eb in &blocks {
            match eb.classify(0, 2047) {
                tsunami_core::BlockTest::Packed { lo, hi } => {
                    total += tsunami_core::exec::packed_count_for_bench(eb, 0, eb.len(), lo, hi);
                }
                t => panic!("unexpected {t:?}"),
            }
        }
        let el = start.elapsed().as_nanos() as f64 / rows as f64;
        println!("packed_count: {el:.3} ns/row (count {total})");
    }

    let agg_blocks = blocks.clone();
    for _ in 0..3 {
        let start = Instant::now();
        let mut total = (0u64, 0u128);
        for (eb, ab) in blocks.iter().zip(&agg_blocks) {
            match eb.classify(0, 2047) {
                tsunami_core::BlockTest::Packed { lo, hi } => {
                    let (n, s) =
                        tsunami_core::exec::packed_sum_for_bench(eb, ab, 0, eb.len(), lo, hi);
                    total.0 += n;
                    total.1 += s;
                }
                t => panic!("unexpected {t:?}"),
            }
        }
        let el = start.elapsed().as_nanos() as f64 / rows as f64;
        println!(
            "packed_sum:   {el:.3} ns/row (n {} sum {})",
            total.0, total.1
        );
    }
}
