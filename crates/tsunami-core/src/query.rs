//! The query model: conjunctions of range predicates feeding an aggregation.
//!
//! Tsunami accelerates queries of the form (§2):
//!
//! ```sql
//! SELECT SUM(R.X) FROM MyTable WHERE (a <= R.Y <= b) AND (c <= R.Z <= d)
//! ```
//!
//! A [`Query`] is a set of per-dimension inclusive range [`Predicate`]s plus an
//! [`Aggregation`]. Equality filters are ranges with `lo == hi`.

use std::fmt;

use crate::dataset::{Dataset, Point, Value};
use crate::error::{Result, TsunamiError};

/// An inclusive range filter over a single dimension: `lo <= value <= hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Dimension the filter applies to.
    pub dim: usize,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Inclusive upper bound.
    pub hi: Value,
}

impl Predicate {
    /// Creates a range predicate, validating `lo <= hi`.
    pub fn range(dim: usize, lo: Value, hi: Value) -> Result<Self> {
        if lo > hi {
            return Err(TsunamiError::InvalidPredicate { dim, lo, hi });
        }
        Ok(Self { dim, lo, hi })
    }

    /// Creates an equality predicate (`value == v`).
    pub fn eq(dim: usize, v: Value) -> Self {
        Self { dim, lo: v, hi: v }
    }

    /// Whether a value satisfies this predicate.
    ///
    /// Branchless on purpose: the two compares are folded with a
    /// non-short-circuiting `&`, so this compiles to straight-line compare
    /// arithmetic the vectorized kernels can lift into SIMD lanes. This sits
    /// in the innermost loop of every non-exact scan.
    #[inline(always)]
    pub fn matches(&self, v: Value) -> bool {
        (self.lo <= v) & (v <= self.hi)
    }

    /// The width of the filter range (inclusive), saturating at `u64::MAX`.
    pub fn width(&self) -> u64 {
        (self.hi - self.lo).saturating_add(1)
    }
}

/// The aggregation a query performs over matching records.
///
/// All indexes pay the same aggregation cost, so the paper evaluates with
/// `COUNT`; the other aggregations are provided for API completeness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregation {
    /// `COUNT(*)`.
    Count,
    /// `SUM(column)` over the given dimension.
    Sum(usize),
    /// `MIN(column)` over the given dimension.
    Min(usize),
    /// `MAX(column)` over the given dimension.
    Max(usize),
    /// `AVG(column)` over the given dimension.
    Avg(usize),
}

impl Aggregation {
    /// The dimension whose values the aggregation needs, if any.
    pub fn input_dim(&self) -> Option<usize> {
        match self {
            Aggregation::Count => None,
            Aggregation::Sum(d)
            | Aggregation::Min(d)
            | Aggregation::Max(d)
            | Aggregation::Avg(d) => Some(*d),
        }
    }
}

/// The result of executing a query's aggregation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggResult {
    /// Result of a `COUNT`.
    Count(u64),
    /// Result of a `SUM` (wide accumulator to avoid overflow).
    Sum(u128),
    /// Result of a `MIN`; `None` when no record matched.
    Min(Option<Value>),
    /// Result of a `MAX`; `None` when no record matched.
    Max(Option<Value>),
    /// Result of an `AVG`; `None` when no record matched.
    Avg(Option<f64>),
}

impl AggResult {
    /// The `COUNT` value, or `None` for other variants.
    pub fn as_count(&self) -> Option<u64> {
        match self {
            AggResult::Count(c) => Some(*c),
            _ => None,
        }
    }

    /// The `SUM` value, or `None` for other variants.
    pub fn as_sum(&self) -> Option<u128> {
        match self {
            AggResult::Sum(s) => Some(*s),
            _ => None,
        }
    }

    /// The `MIN` value, or `None` for other variants. The inner `Option` is
    /// `None` when no record matched the query.
    pub fn as_min(&self) -> Option<Option<Value>> {
        match self {
            AggResult::Min(m) => Some(*m),
            _ => None,
        }
    }

    /// The `MAX` value, or `None` for other variants. The inner `Option` is
    /// `None` when no record matched the query.
    pub fn as_max(&self) -> Option<Option<Value>> {
        match self {
            AggResult::Max(m) => Some(*m),
            _ => None,
        }
    }

    /// The `AVG` value, or `None` for other variants. The inner `Option` is
    /// `None` when no record matched the query.
    pub fn as_avg(&self) -> Option<Option<f64>> {
        match self {
            AggResult::Avg(a) => Some(*a),
            _ => None,
        }
    }
}

impl fmt::Display for AggResult {
    /// Renders the result as `KIND=value`, with `NULL` for aggregations over
    /// zero matching records (e.g. `COUNT=42`, `MIN=NULL`, `AVG=3.5`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggResult::Count(c) => write!(f, "COUNT={c}"),
            AggResult::Sum(s) => write!(f, "SUM={s}"),
            AggResult::Min(Some(v)) => write!(f, "MIN={v}"),
            AggResult::Min(None) => write!(f, "MIN=NULL"),
            AggResult::Max(Some(v)) => write!(f, "MAX={v}"),
            AggResult::Max(None) => write!(f, "MAX=NULL"),
            AggResult::Avg(Some(a)) => write!(f, "AVG={a}"),
            AggResult::Avg(None) => write!(f, "AVG=NULL"),
        }
    }
}

/// Incremental accumulator used by scan loops to compute an [`AggResult`].
#[derive(Debug, Clone)]
pub struct AggAccumulator {
    agg: Aggregation,
    count: u64,
    sum: u128,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggAccumulator {
    /// Creates a fresh accumulator for the given aggregation.
    pub fn new(agg: Aggregation) -> Self {
        Self {
            agg,
            count: 0,
            sum: 0,
            min: None,
            max: None,
        }
    }

    /// The aggregation this accumulator computes.
    pub fn aggregation(&self) -> Aggregation {
        self.agg
    }

    /// Adds a matching record. `agg_value` is the value of the aggregation's
    /// input dimension for this record (ignored for `COUNT`).
    #[inline]
    pub fn add(&mut self, agg_value: Value) {
        self.count += 1;
        match self.agg {
            Aggregation::Count => {}
            Aggregation::Sum(_) | Aggregation::Avg(_) => self.sum += agg_value as u128,
            Aggregation::Min(_) => {
                self.min = Some(self.min.map_or(agg_value, |m| m.min(agg_value)));
            }
            Aggregation::Max(_) => {
                self.max = Some(self.max.map_or(agg_value, |m| m.max(agg_value)));
            }
        }
    }

    /// Adds `n` matching records whose aggregation inputs sum to `sum`.
    /// Used by exact-range scans that can aggregate without visiting rows.
    #[inline]
    pub fn add_bulk(&mut self, n: u64, sum: u128) {
        self.count += n;
        match self.agg {
            Aggregation::Sum(_) | Aggregation::Avg(_) => self.sum += sum,
            _ => {}
        }
    }

    /// Adds a whole pre-aggregated block of `n` matching records: their sum
    /// (for `SUM`/`AVG`) and their extreme values (for `MIN`/`MAX`). Used by
    /// the vectorized kernels, which reduce each block before touching the
    /// accumulator. A zero-row block is a no-op.
    #[inline]
    pub fn add_block(&mut self, n: u64, sum: u128, min: Option<Value>, max: Option<Value>) {
        if n == 0 {
            return;
        }
        self.count += n;
        match self.agg {
            Aggregation::Count => {}
            Aggregation::Sum(_) | Aggregation::Avg(_) => self.sum += sum,
            Aggregation::Min(_) => {
                self.min = match (self.min, min) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
            Aggregation::Max(_) => {
                self.max = match (self.max, max) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    (a, b) => a.or(b),
                };
            }
        }
    }

    /// Merges another accumulator (for the same aggregation) into this one.
    pub fn merge(&mut self, other: &AggAccumulator) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// Number of records accumulated so far.
    pub fn matched(&self) -> u64 {
        self.count
    }

    /// Finalizes the accumulator into a result.
    pub fn finish(&self) -> AggResult {
        match self.agg {
            Aggregation::Count => AggResult::Count(self.count),
            Aggregation::Sum(_) => AggResult::Sum(self.sum),
            Aggregation::Min(_) => AggResult::Min(self.min),
            Aggregation::Max(_) => AggResult::Max(self.max),
            Aggregation::Avg(_) => AggResult::Avg(if self.count == 0 {
                None
            } else {
                Some(self.sum as f64 / self.count as f64)
            }),
        }
    }
}

/// A conjunctive range query with an aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    predicates: Vec<Predicate>,
    aggregation: Aggregation,
}

impl Query {
    /// Creates a query from predicates and an aggregation.
    ///
    /// Predicates are normalized: at most one predicate per dimension is kept
    /// (multiple predicates on one dimension are intersected) and they are
    /// sorted by dimension.
    pub fn new(predicates: Vec<Predicate>, aggregation: Aggregation) -> Result<Self> {
        let mut by_dim: Vec<Predicate> = Vec::with_capacity(predicates.len());
        for p in predicates {
            if p.lo > p.hi {
                return Err(TsunamiError::InvalidPredicate {
                    dim: p.dim,
                    lo: p.lo,
                    hi: p.hi,
                });
            }
            match by_dim.iter_mut().find(|q| q.dim == p.dim) {
                Some(existing) => {
                    existing.lo = existing.lo.max(p.lo);
                    existing.hi = existing.hi.min(p.hi);
                    if existing.lo > existing.hi {
                        return Err(TsunamiError::InvalidPredicate {
                            dim: p.dim,
                            lo: existing.lo,
                            hi: existing.hi,
                        });
                    }
                }
                None => by_dim.push(p),
            }
        }
        by_dim.sort_by_key(|p| p.dim);
        Ok(Self {
            predicates: by_dim,
            aggregation,
        })
    }

    /// Creates a `COUNT(*)` query from predicates.
    pub fn count(predicates: Vec<Predicate>) -> Result<Self> {
        Self::new(predicates, Aggregation::Count)
    }

    /// The query's predicates, sorted by dimension.
    pub fn predicates(&self) -> &[Predicate] {
        &self.predicates
    }

    /// The query's aggregation.
    pub fn aggregation(&self) -> Aggregation {
        self.aggregation
    }

    /// Validates that every predicate dimension and the aggregation's input
    /// dimension fall inside a `num_dims`-dimensional dataset.
    ///
    /// `Query` itself is dataset-agnostic (it can be built before any table
    /// exists), so this is the boundary check engine paths run before
    /// executing: it turns the out-of-bounds cases that scan paths would
    /// otherwise silently treat as non-matching (see [`Query::matches_point`])
    /// or panic on (aggregation input column lookups) into
    /// [`TsunamiError::DimensionOutOfBounds`].
    pub fn validate_dims(&self, num_dims: usize) -> Result<()> {
        for p in &self.predicates {
            if p.dim >= num_dims {
                return Err(TsunamiError::DimensionOutOfBounds {
                    dim: p.dim,
                    num_dims,
                });
            }
        }
        if let Some(dim) = self.aggregation.input_dim() {
            if dim >= num_dims {
                return Err(TsunamiError::DimensionOutOfBounds { dim, num_dims });
            }
        }
        Ok(())
    }

    /// The predicate on a particular dimension, if the query filters it.
    pub fn predicate_on(&self, dim: usize) -> Option<&Predicate> {
        self.predicates.iter().find(|p| p.dim == dim)
    }

    /// The set of dimensions this query filters, in ascending order.
    pub fn filtered_dims(&self) -> Vec<usize> {
        self.predicates.iter().map(|p| p.dim).collect()
    }

    /// Number of filtered dimensions.
    pub fn num_filtered_dims(&self) -> usize {
        self.predicates.len()
    }

    /// Whether a point satisfies every predicate.
    ///
    /// A predicate on a dimension the point does not have never matches.
    /// Callers that want such queries rejected instead of silently returning
    /// empty results should run [`Query::validate_dims`] first (the engine
    /// facade does this for every query it prepares).
    #[inline]
    pub fn matches_point(&self, point: &[Value]) -> bool {
        self.predicates
            .iter()
            .all(|p| p.dim < point.len() && p.matches(point[p.dim]))
    }

    /// Fraction of dataset rows matching this query, computed exactly by a
    /// full scan. Useful in tests and for reporting workload selectivities.
    pub fn exact_selectivity(&self, data: &Dataset) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let mut matched = 0usize;
        for r in 0..data.len() {
            if self
                .predicates
                .iter()
                .all(|p| p.matches(data.get(r, p.dim)))
            {
                matched += 1;
            }
        }
        matched as f64 / data.len() as f64
    }

    /// Per-dimension selectivity of the query's predicate over a dataset,
    /// i.e. the fraction of rows whose value in `dim` satisfies the filter.
    /// Returns 1.0 for unfiltered dimensions. This is the embedding used for
    /// query-type clustering (§4.3.1).
    pub fn dim_selectivity(&self, data: &Dataset, dim: usize) -> f64 {
        match self.predicate_on(dim) {
            None => 1.0,
            Some(p) => {
                if data.is_empty() {
                    return 1.0;
                }
                let col = data.column(dim);
                let matched = col.iter().filter(|&&v| p.matches(v)).count();
                matched as f64 / col.len() as f64
            }
        }
    }

    /// Reference full-scan execution of the query over a dataset. This is the
    /// correctness oracle all indexes are tested against.
    pub fn execute_full_scan(&self, data: &Dataset) -> AggResult {
        let mut acc = AggAccumulator::new(self.aggregation);
        let agg_dim = self.aggregation.input_dim().unwrap_or(0);
        for r in 0..data.len() {
            if self
                .predicates
                .iter()
                .all(|p| p.matches(data.get(r, p.dim)))
            {
                acc.add(data.get(r, agg_dim));
            }
        }
        acc.finish()
    }

    /// A point contained in the query rectangle's lower corner, with
    /// unfiltered dimensions set to 0. Useful for Z-order range computation.
    pub fn lower_corner(&self, num_dims: usize) -> Point {
        let mut p = vec![Value::MIN; num_dims];
        for pred in &self.predicates {
            if pred.dim < num_dims {
                p[pred.dim] = pred.lo;
            }
        }
        p
    }

    /// A point containing the query rectangle's upper corner, with unfiltered
    /// dimensions set to `u64::MAX`.
    pub fn upper_corner(&self, num_dims: usize) -> Point {
        let mut p = vec![Value::MAX; num_dims];
        for pred in &self.predicates {
            if pred.dim < num_dims {
                p[pred.dim] = pred.hi;
            }
        }
        p
    }
}

/// A set of queries, typically a sampled workload used for optimization or a
/// benchmark run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Workload {
    queries: Vec<Query>,
}

impl Workload {
    /// Creates a workload from a list of queries.
    pub fn new(queries: Vec<Query>) -> Self {
        Self { queries }
    }

    /// The queries in this workload.
    pub fn queries(&self) -> &[Query] {
        &self.queries
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the workload has no queries.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Adds a query.
    pub fn push(&mut self, q: Query) {
        self.queries.push(q);
    }

    /// Appends all queries from another workload.
    pub fn extend(&mut self, other: &Workload) {
        self.queries.extend(other.queries.iter().cloned());
    }

    /// Average exact selectivity of the workload over a dataset.
    pub fn average_selectivity(&self, data: &Dataset) -> f64 {
        if self.queries.is_empty() {
            return 0.0;
        }
        self.queries
            .iter()
            .map(|q| q.exact_selectivity(data))
            .sum::<f64>()
            / self.queries.len() as f64
    }

    /// Splits the workload into the groups of queries that filter exactly the
    /// same set of dimensions. This is the first stage of query-type
    /// clustering (§4.3.1).
    pub fn group_by_filtered_dims(&self) -> Vec<Vec<Query>> {
        let mut groups: Vec<(Vec<usize>, Vec<Query>)> = Vec::new();
        for q in &self.queries {
            let dims = q.filtered_dims();
            match groups.iter_mut().find(|(d, _)| *d == dims) {
                Some((_, qs)) => qs.push(q.clone()),
                None => groups.push((dims, vec![q.clone()])),
            }
        }
        groups.into_iter().map(|(_, qs)| qs).collect()
    }
}

impl FromIterator<Query> for Workload {
    fn from_iter<T: IntoIterator<Item = Query>>(iter: T) -> Self {
        Workload::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        // dim0: 0..10, dim1: 0,10,20,...,90
        Dataset::from_columns(vec![
            (0..10u64).collect(),
            (0..10u64).map(|v| v * 10).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn predicate_matching_and_width() {
        let p = Predicate::range(0, 3, 7).unwrap();
        assert!(p.matches(3) && p.matches(7) && p.matches(5));
        assert!(!p.matches(2) && !p.matches(8));
        assert_eq!(p.width(), 5);
        assert_eq!(Predicate::eq(1, 4).width(), 1);
        assert!(Predicate::range(0, 7, 3).is_err());
    }

    #[test]
    fn query_normalizes_predicates() {
        let q = Query::count(vec![
            Predicate::range(1, 0, 50).unwrap(),
            Predicate::range(0, 2, 8).unwrap(),
            Predicate::range(1, 20, 90).unwrap(),
        ])
        .unwrap();
        assert_eq!(q.filtered_dims(), vec![0, 1]);
        let p1 = q.predicate_on(1).unwrap();
        assert_eq!((p1.lo, p1.hi), (20, 50));
        // Conflicting predicates on a dimension are rejected.
        assert!(Query::count(vec![
            Predicate::range(0, 0, 2).unwrap(),
            Predicate::range(0, 5, 9).unwrap(),
        ])
        .is_err());
    }

    #[test]
    fn full_scan_count_and_selectivity() {
        let ds = data();
        let q = Query::count(vec![Predicate::range(0, 2, 5).unwrap()]).unwrap();
        assert_eq!(q.execute_full_scan(&ds), AggResult::Count(4));
        assert!((q.exact_selectivity(&ds) - 0.4).abs() < 1e-9);
        assert!((q.dim_selectivity(&ds, 0) - 0.4).abs() < 1e-9);
        assert_eq!(q.dim_selectivity(&ds, 1), 1.0);
    }

    #[test]
    fn full_scan_aggregations() {
        let ds = data();
        let preds = vec![Predicate::range(0, 2, 5).unwrap()];
        let sum = Query::new(preds.clone(), Aggregation::Sum(1)).unwrap();
        assert_eq!(
            sum.execute_full_scan(&ds),
            AggResult::Sum(20 + 30 + 40 + 50)
        );
        let min = Query::new(preds.clone(), Aggregation::Min(1)).unwrap();
        assert_eq!(min.execute_full_scan(&ds), AggResult::Min(Some(20)));
        let max = Query::new(preds.clone(), Aggregation::Max(1)).unwrap();
        assert_eq!(max.execute_full_scan(&ds), AggResult::Max(Some(50)));
        let avg = Query::new(preds, Aggregation::Avg(1)).unwrap();
        assert_eq!(avg.execute_full_scan(&ds), AggResult::Avg(Some(35.0)));
    }

    #[test]
    fn empty_match_aggregations() {
        let ds = data();
        let preds = vec![Predicate::range(0, 100, 200).unwrap()];
        let min = Query::new(preds.clone(), Aggregation::Min(1)).unwrap();
        assert_eq!(min.execute_full_scan(&ds), AggResult::Min(None));
        let avg = Query::new(preds, Aggregation::Avg(1)).unwrap();
        assert_eq!(avg.execute_full_scan(&ds), AggResult::Avg(None));
    }

    #[test]
    fn accumulator_merge_matches_sequential() {
        let mut a = AggAccumulator::new(Aggregation::Sum(0));
        let mut b = AggAccumulator::new(Aggregation::Sum(0));
        let mut whole = AggAccumulator::new(Aggregation::Sum(0));
        for v in 0..100u64 {
            whole.add(v);
            if v < 50 {
                a.add(v);
            } else {
                b.add(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.finish(), whole.finish());
        assert_eq!(a.matched(), 100);
    }

    #[test]
    fn accumulator_bulk_add() {
        let mut acc = AggAccumulator::new(Aggregation::Count);
        acc.add_bulk(10, 0);
        acc.add(0);
        assert_eq!(acc.finish(), AggResult::Count(11));

        let mut acc = AggAccumulator::new(Aggregation::Sum(0));
        acc.add_bulk(3, 60);
        assert_eq!(acc.finish(), AggResult::Sum(60));
    }

    #[test]
    fn corners_cover_query_rectangle() {
        let q = Query::count(vec![Predicate::range(1, 5, 9).unwrap()]).unwrap();
        assert_eq!(q.lower_corner(3), vec![0, 5, 0]);
        assert_eq!(q.upper_corner(3), vec![u64::MAX, 9, u64::MAX]);
    }

    #[test]
    fn workload_grouping_by_filtered_dims() {
        let q1 = Query::count(vec![Predicate::eq(0, 1)]).unwrap();
        let q2 = Query::count(vec![Predicate::eq(0, 5)]).unwrap();
        let q3 = Query::count(vec![Predicate::eq(1, 5)]).unwrap();
        let w = Workload::new(vec![q1, q2, q3]);
        let groups = w.group_by_filtered_dims();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), 3);
    }

    #[test]
    fn workload_average_selectivity() {
        let ds = data();
        let w = Workload::new(vec![
            Query::count(vec![Predicate::range(0, 0, 4).unwrap()]).unwrap(),
            Query::count(vec![Predicate::range(0, 0, 9).unwrap()]).unwrap(),
        ]);
        assert!((w.average_selectivity(&ds) - 0.75).abs() < 1e-9);
        assert!(Workload::default().is_empty());
    }

    #[test]
    fn agg_result_non_panicking_accessors() {
        assert_eq!(AggResult::Count(7).as_count(), Some(7));
        assert_eq!(AggResult::Sum(9).as_count(), None);
        assert_eq!(AggResult::Sum(9).as_sum(), Some(9));
        assert_eq!(AggResult::Count(7).as_sum(), None);
        assert_eq!(AggResult::Min(Some(3)).as_min(), Some(Some(3)));
        assert_eq!(AggResult::Min(None).as_min(), Some(None));
        assert_eq!(AggResult::Count(7).as_min(), None);
        assert_eq!(AggResult::Max(Some(5)).as_max(), Some(Some(5)));
        assert_eq!(AggResult::Count(7).as_max(), None);
        assert_eq!(AggResult::Avg(Some(1.5)).as_avg(), Some(Some(1.5)));
        assert_eq!(AggResult::Sum(9).as_avg(), None);
    }

    #[test]
    fn agg_result_display() {
        assert_eq!(AggResult::Count(42).to_string(), "COUNT=42");
        assert_eq!(AggResult::Sum(123).to_string(), "SUM=123");
        assert_eq!(AggResult::Min(Some(17)).to_string(), "MIN=17");
        assert_eq!(AggResult::Min(None).to_string(), "MIN=NULL");
        assert_eq!(AggResult::Max(Some(9)).to_string(), "MAX=9");
        assert_eq!(AggResult::Avg(Some(3.5)).to_string(), "AVG=3.5");
        assert_eq!(AggResult::Avg(None).to_string(), "AVG=NULL");
    }

    #[test]
    fn validate_dims_catches_out_of_bounds_references() {
        let q = Query::count(vec![Predicate::range(0, 2, 5).unwrap()]).unwrap();
        assert!(q.validate_dims(1).is_ok());

        let q = Query::count(vec![Predicate::range(3, 2, 5).unwrap()]).unwrap();
        assert_eq!(
            q.validate_dims(2),
            Err(TsunamiError::DimensionOutOfBounds {
                dim: 3,
                num_dims: 2
            })
        );

        let q = Query::new(vec![], Aggregation::Sum(5)).unwrap();
        assert_eq!(
            q.validate_dims(4),
            Err(TsunamiError::DimensionOutOfBounds {
                dim: 5,
                num_dims: 4
            })
        );
        assert!(q.validate_dims(6).is_ok());
    }
}
