//! The in-memory data model: 64-bit integer attributes arranged in columns.
//!
//! The paper stores all attributes as 64-bit integers: strings are dictionary
//! encoded and decimal values are scaled by a power of ten (§6.1). A
//! [`Dataset`] is the logical, immutable view of a table used when *building*
//! indexes; the physical, scan-optimized representation lives in the
//! `tsunami-store` crate.

use crate::error::{Result, TsunamiError};

/// A single attribute value. Every dimension is a 64-bit unsigned integer.
pub type Value = u64;

/// A single record, i.e. a point in d-dimensional data space.
pub type Point = Vec<Value>;

/// A logical, column-oriented table of `u64` attributes.
///
/// The dataset is column-major: `columns[d][r]` is the value of row `r` in
/// dimension `d`. All columns have identical length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dataset {
    columns: Vec<Vec<Value>>,
    len: usize,
}

impl Dataset {
    /// Creates a dataset from column vectors. All columns must have the same
    /// length and there must be at least one column.
    pub fn from_columns(columns: Vec<Vec<Value>>) -> Result<Self> {
        if columns.is_empty() {
            return Err(TsunamiError::Build(
                "dataset needs at least one column".into(),
            ));
        }
        let len = columns[0].len();
        if columns.iter().any(|c| c.len() != len) {
            return Err(TsunamiError::Build(
                "all dataset columns must have equal length".into(),
            ));
        }
        Ok(Self { columns, len })
    }

    /// Creates a dataset from row-major points. All rows must have the same
    /// arity `num_dims`.
    pub fn from_rows(num_dims: usize, rows: &[Point]) -> Result<Self> {
        if num_dims == 0 {
            return Err(TsunamiError::Build(
                "dataset needs at least one dimension".into(),
            ));
        }
        let mut columns = vec![Vec::with_capacity(rows.len()); num_dims];
        for row in rows {
            if row.len() != num_dims {
                return Err(TsunamiError::DimensionMismatch {
                    expected: num_dims,
                    got: row.len(),
                });
            }
            for (d, v) in row.iter().enumerate() {
                columns[d].push(*v);
            }
        }
        Ok(Self {
            columns,
            len: rows.len(),
        })
    }

    /// Creates an empty dataset with `num_dims` dimensions, useful as a
    /// builder together with [`Dataset::push_row`].
    pub fn empty(num_dims: usize) -> Self {
        Self {
            columns: vec![Vec::new(); num_dims],
            len: 0,
        }
    }

    /// Appends a single row. The row's arity must match the dataset's.
    pub fn push_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.num_dims() {
            return Err(TsunamiError::DimensionMismatch {
                expected: self.num_dims(),
                got: row.len(),
            });
        }
        for (d, v) in row.iter().enumerate() {
            self.columns[d].push(*v);
        }
        self.len += 1;
        Ok(())
    }

    /// Number of dimensions (columns).
    pub fn num_dims(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Value of row `row` in dimension `dim`.
    #[inline]
    pub fn get(&self, row: usize, dim: usize) -> Value {
        self.columns[dim][row]
    }

    /// The full column for dimension `dim`.
    pub fn column(&self, dim: usize) -> &[Value] {
        &self.columns[dim]
    }

    /// Materializes row `row` as a point.
    pub fn row(&self, row: usize) -> Point {
        self.columns.iter().map(|c| c[row]).collect()
    }

    /// Iterates over all rows as materialized points.
    pub fn rows(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.len).map(move |r| self.row(r))
    }

    /// The (min, max) value range of dimension `dim`, or `None` if empty.
    pub fn domain(&self, dim: usize) -> Option<(Value, Value)> {
        let col = &self.columns[dim];
        if col.is_empty() {
            return None;
        }
        let mut lo = Value::MAX;
        let mut hi = Value::MIN;
        for &v in col {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }

    /// The domains of every dimension. Empty datasets yield `(0, 0)` per dim.
    pub fn domains(&self) -> Vec<(Value, Value)> {
        (0..self.num_dims())
            .map(|d| self.domain(d).unwrap_or((0, 0)))
            .collect()
    }

    /// Builds a new dataset that keeps only the rows at `indices`, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Dataset {
        let columns = self
            .columns
            .iter()
            .map(|c| indices.iter().map(|&i| c[i]).collect())
            .collect();
        Dataset {
            columns,
            len: indices.len(),
        }
    }

    /// Builds a new dataset keeping only the given dimensions, in order.
    pub fn select_dims(&self, dims: &[usize]) -> Dataset {
        let columns = dims.iter().map(|&d| self.columns[d].clone()).collect();
        Dataset {
            columns,
            len: self.len,
        }
    }

    /// Consumes the dataset and returns the raw column vectors.
    pub fn into_columns(self) -> Vec<Vec<Value>> {
        self.columns
    }

    /// Approximate heap size of the dataset in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<Value>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_rows(3, &[vec![1, 10, 100], vec![2, 20, 200], vec![3, 30, 300]]).unwrap()
    }

    #[test]
    fn from_rows_round_trips() {
        let ds = sample();
        assert_eq!(ds.num_dims(), 3);
        assert_eq!(ds.len(), 3);
        assert_eq!(ds.get(1, 2), 200);
        assert_eq!(ds.row(2), vec![3, 30, 300]);
        assert_eq!(ds.column(1), &[10, 20, 30]);
    }

    #[test]
    fn from_columns_validates_lengths() {
        assert!(Dataset::from_columns(vec![vec![1, 2], vec![3]]).is_err());
        assert!(Dataset::from_columns(vec![]).is_err());
        let ds = Dataset::from_columns(vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn from_rows_validates_arity() {
        let err = Dataset::from_rows(2, &[vec![1, 2], vec![3]]).unwrap_err();
        assert_eq!(
            err,
            TsunamiError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
        assert!(Dataset::from_rows(0, &[]).is_err());
    }

    #[test]
    fn push_row_grows_dataset() {
        let mut ds = Dataset::empty(2);
        assert!(ds.is_empty());
        ds.push_row(&[5, 6]).unwrap();
        ds.push_row(&[7, 8]).unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(1), vec![7, 8]);
        assert!(ds.push_row(&[1]).is_err());
    }

    #[test]
    fn domain_reports_min_max() {
        let ds = sample();
        assert_eq!(ds.domain(0), Some((1, 3)));
        assert_eq!(ds.domain(2), Some((100, 300)));
        assert_eq!(ds.domains(), vec![(1, 3), (10, 30), (100, 300)]);
        assert_eq!(Dataset::empty(1).domain(0), None);
    }

    #[test]
    fn select_rows_and_dims() {
        let ds = sample();
        let sub = ds.select_rows(&[2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.row(0), vec![3, 30, 300]);
        assert_eq!(sub.row(1), vec![1, 10, 100]);

        let dims = ds.select_dims(&[2, 0]);
        assert_eq!(dims.num_dims(), 2);
        assert_eq!(dims.row(1), vec![200, 2]);
    }

    #[test]
    fn rows_iterator_visits_all_rows() {
        let ds = sample();
        let rows: Vec<Point> = ds.rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0], vec![1, 10, 100]);
    }

    #[test]
    fn size_bytes_is_positive_for_nonempty() {
        assert!(sample().size_bytes() >= 3 * 3 * 8);
    }
}
