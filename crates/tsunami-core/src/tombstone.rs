//! Word-packed deletion bitmaps (tombstones).
//!
//! Deletes never rewrite the clustered store eagerly: a deleted row keeps
//! its physical slot and gets one bit here. The scan kernels AND the
//! *liveness* view of this bitmap into every selection (the bitmap tier
//! natively, scalar/vector per row, dense exact ranges blockwise), so a
//! tombstoned row can never reach an aggregate. Physical removal is
//! compaction's job — a region past the tombstone bar is re-gridded over its
//! live rows only, which is when bits actually disappear.
//!
//! The layout matches the kernel bitmap convention: bit `i % 64` of word
//! `i / 64`, one bit per physical row, set = deleted.

use std::ops::Range;

const WORD_BITS: usize = 64;

/// A deletion bitmap over a table's physical rows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TombstoneSet {
    words: Vec<u64>,
    len: usize,
    deleted: usize,
}

impl TombstoneSet {
    /// An all-live set covering `len` rows.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(WORD_BITS)],
            len,
            deleted: 0,
        }
    }

    /// Number of physical rows covered (live + deleted).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set covers zero rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of tombstoned rows.
    pub fn deleted(&self) -> usize {
        self.deleted
    }

    /// Number of live rows.
    pub fn live(&self) -> usize {
        self.len - self.deleted
    }

    /// Whether any row is tombstoned. The executors skip all liveness work
    /// when this is false, so tables without deletes pay nothing.
    pub fn any(&self) -> bool {
        self.deleted > 0
    }

    /// Whether physical row `row` is tombstoned.
    #[inline(always)]
    pub fn is_deleted(&self, row: usize) -> bool {
        debug_assert!(row < self.len);
        self.words[row / WORD_BITS] >> (row % WORD_BITS) & 1 == 1
    }

    /// Tombstones `row`. Returns `true` if the row was live (newly marked).
    pub fn mark(&mut self, row: usize) -> bool {
        assert!(row < self.len, "tombstone row {row} out of {}", self.len);
        let bit = 1u64 << (row % WORD_BITS);
        let word = &mut self.words[row / WORD_BITS];
        let newly = *word & bit == 0;
        *word |= bit;
        self.deleted += newly as usize;
        newly
    }

    /// Appends `n` live rows.
    pub fn extend_live(&mut self, n: usize) {
        self.len += n;
        self.words.resize(self.len.div_ceil(WORD_BITS), 0);
    }

    /// 64 *liveness* bits starting at physical row `base` (bit `i` set = row
    /// `base + i` is live). Rows past the end read as live; the scan kernels
    /// never consume bits beyond the block they masked.
    #[inline(always)]
    pub fn live_word(&self, base: usize) -> u64 {
        let w = base / WORD_BITS;
        let sh = base % WORD_BITS;
        let lo = self.words.get(w).copied().unwrap_or(0);
        let dead = if sh == 0 {
            lo
        } else {
            let hi = self.words.get(w + 1).copied().unwrap_or(0);
            (lo >> sh) | (hi << (WORD_BITS - sh))
        };
        !dead
    }

    /// Number of tombstoned rows inside a physical range.
    pub fn count_deleted_in(&self, range: Range<usize>) -> usize {
        let mut n = 0usize;
        let mut base = range.start;
        while base < range.end {
            let take = (range.end - base).min(WORD_BITS);
            let mut dead = !self.live_word(base);
            if take < WORD_BITS {
                dead &= (1u64 << take) - 1;
            }
            n += dead.count_ones() as usize;
            base += take;
        }
        n
    }

    /// The set after a store-wide permutation: bit for new row `i` is the old
    /// bit of `perm[i]` (same contract as `ColumnStore::permute`).
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.len);
        let mut out = Self::new(self.len);
        for (new, &old) in perm.iter().enumerate() {
            if self.is_deleted(old) {
                out.words[new / WORD_BITS] |= 1u64 << (new % WORD_BITS);
                out.deleted += 1;
            }
        }
        out
    }

    /// Reorders the bits of `base..base + perm.len()` in place: new local bit
    /// `i` is the old local bit `perm[i]` (same contract as
    /// `ColumnStore::permute_range`).
    pub fn permute_range(&mut self, base: usize, perm: &[usize]) {
        let old: Vec<bool> = (0..perm.len()).map(|i| self.is_deleted(base + i)).collect();
        for (i, &src) in perm.iter().enumerate() {
            let row = base + i;
            let bit = 1u64 << (row % WORD_BITS);
            if old[src] {
                self.words[row / WORD_BITS] |= bit;
            } else {
                self.words[row / WORD_BITS] &= !bit;
            }
        }
    }

    /// Physically removes the tombstoned rows of `range` from the set: kept
    /// rows (all rows outside `range`, live rows inside) shift down, the set
    /// shrinks. Returns the number of rows removed. Mirrors
    /// `ColumnStore::drop_deleted_in`, which removes the same slots from the
    /// value columns.
    pub fn remove_deleted_in(&mut self, range: Range<usize>) -> usize {
        let removed = self.count_deleted_in(range.clone());
        if removed == 0 {
            return 0;
        }
        let mut out = Self::new(self.len - removed);
        let mut next = 0usize;
        for row in 0..self.len {
            let dead = self.is_deleted(row);
            if range.contains(&row) && dead {
                continue;
            }
            if dead {
                out.words[next / WORD_BITS] |= 1u64 << (next % WORD_BITS);
                out.deleted += 1;
            }
            next += 1;
        }
        debug_assert_eq!(next, out.len);
        *self = out;
        removed
    }

    /// Physical rows that are live, in order — the logical view rebuilds and
    /// checkpoints use.
    pub fn live_rows(&self) -> Vec<usize> {
        (0..self.len).filter(|&r| !self.is_deleted(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_counts() {
        let mut t = TombstoneSet::new(100);
        assert!(!t.any());
        assert!(t.mark(3));
        assert!(!t.mark(3));
        assert!(t.mark(64));
        assert_eq!((t.len(), t.deleted(), t.live()), (100, 2, 98));
        assert!(t.is_deleted(3) && t.is_deleted(64) && !t.is_deleted(4));
        assert_eq!(t.count_deleted_in(0..100), 2);
        assert_eq!(t.count_deleted_in(4..64), 0);
        assert_eq!(t.count_deleted_in(60..65), 1);
    }

    #[test]
    fn live_word_crosses_word_boundaries() {
        let mut t = TombstoneSet::new(200);
        for row in [0, 63, 64, 70, 130] {
            t.mark(row);
        }
        for base in [0usize, 1, 32, 63, 64, 100, 136, 190] {
            let w = t.live_word(base);
            for i in 0..WORD_BITS {
                let row = base + i;
                let expect_live = row >= t.len() || !t.is_deleted(row);
                assert_eq!(w >> i & 1 == 1, expect_live, "base={base} bit={i}");
            }
        }
    }

    #[test]
    fn permutations_carry_bits() {
        let mut t = TombstoneSet::new(6);
        t.mark(1);
        t.mark(4);
        // Reverse the whole set: deleted slots move to 4 and 1 (symmetric).
        let rev = t.permuted(&[5, 4, 3, 2, 1, 0]);
        assert_eq!(rev.live_rows(), vec![0, 2, 3, 5]);

        // Rotate the middle range 1..5 left by one.
        let mut t2 = t.clone();
        t2.permute_range(1, &[1, 2, 3, 0]);
        // Old local bits [1,0,0,1] -> new local order [0,0,1,1].
        assert_eq!(t2.live_rows(), vec![0, 1, 2, 5]);
        assert_eq!(t2.deleted(), 2);
    }

    #[test]
    fn remove_deleted_in_compacts_and_reindexes() {
        let mut t = TombstoneSet::new(10);
        t.mark(2);
        t.mark(5);
        t.mark(8);
        // Compact only 0..6: rows 2 and 5 vanish, row 8 shifts to 6.
        assert_eq!(t.remove_deleted_in(0..6), 2);
        assert_eq!((t.len(), t.deleted()), (8, 1));
        assert!(t.is_deleted(6));
        assert_eq!(t.remove_deleted_in(0..t.len()), 1);
        assert_eq!((t.len(), t.deleted()), (7, 0));
        assert_eq!(t.remove_deleted_in(0..7), 0);
    }

    #[test]
    fn extend_live_grows_cleanly() {
        let mut t = TombstoneSet::new(3);
        t.mark(1);
        t.extend_live(70);
        assert_eq!((t.len(), t.deleted()), (73, 1));
        assert!(!t.is_deleted(72));
        assert_eq!(t.live_rows().len(), 72);
    }
}
