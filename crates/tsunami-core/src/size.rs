//! Helpers for accounting the memory footprint of index structures.
//!
//! Fig 8 of the paper compares *index* sizes (not data sizes), so every index
//! reports the bytes of its auxiliary structures: lookup tables, CDF models,
//! tree nodes, page metadata, and so on.

/// Heap bytes held by a `Vec<T>` (capacity, not length, to reflect the actual
/// allocation).
pub fn vec_bytes<T>(v: &[T]) -> usize {
    std::mem::size_of_val(v)
}

/// Heap bytes held by a `Vec<Vec<T>>`, including the outer spine.
pub fn nested_vec_bytes<T>(v: &[Vec<T>]) -> usize {
    v.iter()
        .map(|inner| inner.len() * std::mem::size_of::<T>())
        .sum::<usize>()
        + std::mem::size_of_val(v)
}

/// Formats a byte count as a human-readable string (KiB / MiB).
pub fn format_bytes(bytes: usize) -> String {
    const KIB: f64 = 1024.0;
    const MIB: f64 = 1024.0 * 1024.0;
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= GIB {
        format!("{:.2} GiB", b / GIB)
    } else if b >= MIB {
        format!("{:.2} MiB", b / MIB)
    } else if b >= KIB {
        format!("{:.2} KiB", b / KIB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_bytes_counts_elements() {
        let v = vec![0u64; 10];
        assert_eq!(vec_bytes(&v), 80);
        let v: Vec<u32> = vec![];
        assert_eq!(vec_bytes(&v), 0);
    }

    #[test]
    fn nested_vec_bytes_includes_spine() {
        let v = vec![vec![0u8; 100], vec![0u8; 50]];
        let expected = 150 + 2 * std::mem::size_of::<Vec<u8>>();
        assert_eq!(nested_vec_bytes(&v), expected);
    }

    #[test]
    fn format_bytes_scales_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.00 KiB");
        assert!(format_bytes(3 * 1024 * 1024).contains("MiB"));
        assert!(format_bytes(2 * 1024 * 1024 * 1024).contains("GiB"));
    }
}
