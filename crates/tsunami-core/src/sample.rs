//! Deterministic sampling utilities used by index optimizers.
//!
//! The Augmented Grid's cost model estimates the number of scanned points
//! from a *sample* of the dataset (§5.3.1), and the Grid Tree is optimized
//! over a *sample* query workload. Index builds must be reproducible, so all
//! sampling here is driven by an explicit seed using a small, self-contained
//! xorshift generator (avoiding a `rand` dependency in the core crate).

use crate::dataset::Dataset;

/// A tiny deterministic pseudo-random number generator (xorshift64*).
///
/// Not cryptographically secure; used only for reproducible sampling and
/// optimizer perturbations.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Returns up to `k` distinct row indices from `0..n`, deterministically for a
/// given seed. If `k >= n` every index is returned (in order).
pub fn sample_indices(n: usize, k: usize, seed: u64) -> Vec<usize> {
    if k >= n {
        return (0..n).collect();
    }
    // Reservoir sampling keeps memory at O(k) and is deterministic.
    let mut rng = SplitMix::new(seed);
    let mut reservoir: Vec<usize> = (0..k).collect();
    for i in k..n {
        let j = rng.next_below((i + 1) as u64) as usize;
        if j < k {
            reservoir[j] = i;
        }
    }
    reservoir.sort_unstable();
    reservoir
}

/// Returns a dataset containing a deterministic sample of up to `k` rows.
pub fn sample_dataset(data: &Dataset, k: usize, seed: u64) -> Dataset {
    let idx = sample_indices(data.len(), k, seed);
    data.select_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_varies() {
        let mut a = SplitMix::new(42);
        let mut b = SplitMix::new(42);
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // Values are not all identical.
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix::new(7);
        for _ in 0..1000 {
            assert!(rng.next_below(13) < 13);
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix::new(3);
        for _ in 0..1000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn sample_indices_are_distinct_sorted_and_bounded() {
        let idx = sample_indices(1000, 100, 5);
        assert_eq!(idx.len(), 100);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < 1000));
    }

    #[test]
    fn sample_indices_returns_all_when_k_exceeds_n() {
        let idx = sample_indices(10, 50, 1);
        assert_eq!(idx, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_seed_dependent() {
        let a = sample_indices(10_000, 50, 1);
        let b = sample_indices(10_000, 50, 2);
        let a_again = sample_indices(10_000, 50, 1);
        assert_eq!(a, a_again);
        assert_ne!(a, b);
    }

    #[test]
    fn sample_dataset_selects_rows() {
        let ds = Dataset::from_columns(vec![(0..100u64).collect()]).unwrap();
        let s = sample_dataset(&ds, 10, 9);
        assert_eq!(s.len(), 10);
        assert_eq!(s.num_dims(), 1);
    }
}
