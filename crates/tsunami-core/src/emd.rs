//! Earth Mover's Distance between one-dimensional discrete distributions.
//!
//! The Grid Tree defines query skew as the EMD between the empirical query
//! PDF over a range and the uniform distribution over that range (§4.2.1).
//! For one-dimensional distributions over ordered bins with equal total mass,
//! the EMD has a closed form: the sum of absolute differences of the prefix
//! sums (work needed to move mass across each bin boundary).

/// Computes the Earth Mover's Distance between two discrete distributions
/// defined over the same ordered bins.
///
/// Both inputs must have the same length. If the total masses differ, the
/// distributions are compared after normalizing to the mean of the two totals
/// (the caller normally passes equal-mass distributions, e.g. a query
/// histogram and a uniform histogram of identical total mass).
///
/// Returns 0.0 for empty inputs.
pub fn emd(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "EMD requires equal-length distributions");
    if a.is_empty() {
        return 0.0;
    }
    let ta: f64 = a.iter().sum();
    let tb: f64 = b.iter().sum();
    // Scale factors so both sides carry the same total mass.
    let target = (ta + tb) / 2.0;
    let sa = if ta > 0.0 { target / ta } else { 0.0 };
    let sb = if tb > 0.0 { target / tb } else { 0.0 };

    let mut carried = 0.0f64;
    let mut work = 0.0f64;
    for i in 0..a.len() {
        carried += a[i] * sa - b[i] * sb;
        work += carried.abs();
    }
    work
}

/// EMD between a distribution and the uniform distribution of equal total
/// mass over the same bins. This is exactly the `Skew_i(Q, x, y)` quantity of
/// §4.2.1 when `dist` is the query histogram over bins `[x, y)`.
pub fn emd_from_uniform(dist: &[f64]) -> f64 {
    if dist.is_empty() {
        return 0.0;
    }
    let total: f64 = dist.iter().sum();
    let uniform = vec![total / dist.len() as f64; dist.len()];
    emd(dist, &uniform)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_distance() {
        let d = vec![1.0, 2.0, 3.0, 4.0];
        assert!(emd(&d, &d).abs() < 1e-12);
    }

    #[test]
    fn single_bin_shift_costs_distance_times_mass() {
        // Moving one unit of mass by one bin costs 1.
        let a = vec![1.0, 0.0];
        let b = vec![0.0, 1.0];
        assert!((emd(&a, &b) - 1.0).abs() < 1e-12);
        // Moving it two bins costs 2.
        let a = vec![1.0, 0.0, 0.0];
        let b = vec![0.0, 0.0, 1.0];
        assert!((emd(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn emd_is_symmetric() {
        let a = vec![0.5, 1.5, 3.0, 0.0];
        let b = vec![2.0, 1.0, 1.0, 1.0];
        assert!((emd(&a, &b) - emd(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn uniform_distribution_has_zero_skew() {
        let d = vec![2.0; 8];
        assert!(emd_from_uniform(&d) < 1e-12);
    }

    #[test]
    fn concentrated_mass_is_more_skewed_than_spread_mass() {
        // All queries hit the last bin.
        let concentrated = vec![0.0, 0.0, 0.0, 12.0];
        // Queries spread over the last two bins.
        let spread = vec![0.0, 0.0, 6.0, 6.0];
        assert!(emd_from_uniform(&concentrated) > emd_from_uniform(&spread));
        assert!(emd_from_uniform(&spread) > 0.0);
    }

    #[test]
    fn single_bin_has_no_skew() {
        // A single bin cannot distinguish uniform from anything (§4.3.2).
        assert!(emd_from_uniform(&[5.0]).abs() < 1e-12);
    }

    #[test]
    fn different_totals_are_normalized() {
        // Same shape, different scale: distance should be ~0.
        let a = vec![1.0, 2.0, 1.0];
        let b = vec![2.0, 4.0, 2.0];
        assert!(emd(&a, &b) < 1e-9);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(emd(&[], &[]), 0.0);
        assert_eq!(emd_from_uniform(&[]), 0.0);
    }
}
