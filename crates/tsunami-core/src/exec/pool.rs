//! A persistent work-stealing thread pool: the workspace's single execution
//! substrate for both intra-query morsels and whole inter-query tasks.
//!
//! # Why hand-rolled
//!
//! The container has no rayon (offline workspace), and the executor needs a
//! *persistent* pool anyway: spawning fresh `std::thread`s per
//! `execute_parallel` call pays ~tens of microseconds of spawn latency per
//! query — more than a whole small scan — and a per-`Scheduler` dedicated
//! worker set cannot lend idle threads to a big concurrent scan. One shared
//! pool runs one huge scan, or many small queries, or any mix, without idle
//! workers or spawn overhead.
//!
//! # Architecture
//!
//! * **Per-worker Chase-Lev deques** — each worker owns a lock-free deque
//!   (Chase & Lev, *Dynamic circular work-stealing deque*; memory orderings
//!   per Lê et al., *Correct and efficient work-stealing for weak memory
//!   models*, PPoPP 2013). The owner pushes and pops at the bottom
//!   (LIFO — newest task is cache-hottest); thieves steal from the top
//!   (FIFO — oldest task is the largest remaining work unit).
//! * **A global injector** — a mutex-guarded FIFO for tasks submitted from
//!   non-worker threads (query callers, the engine scheduler). Submission
//!   rates are per-query, not per-morsel, so a plain mutex is not a
//!   bottleneck; morsel-grained traffic stays on the lock-free deques.
//! * **Parking** — idle workers sleep on a condvar after re-checking the
//!   queues *while registered as sleepers*, so a concurrent submission either
//!   sees the sleeper and notifies, or the re-check sees the task. A 10 ms
//!   wait timeout bounds any missed-wakeup window defensively.
//! * **Scoped joins** — [`WorkStealingPool::join_helpers`] runs a borrowed
//!   closure on up to N workers plus the calling thread and returns only when
//!   every instance finished, which is what makes lifetime erasure of the
//!   borrow sound. A *worker* waiting on a join helps by draining its own
//!   deque (where its just-pushed helper tasks sit) instead of blocking, so
//!   scheduler tasks that fan out into morsels cannot deadlock the pool.
//!
//! The process-wide pool is created lazily by [`global`] and lives for the
//! process lifetime. Its size comes from `TSUNAMI_POOL_THREADS` (default:
//! `std::thread::available_parallelism`), the morsel granularity from
//! `TSUNAMI_MORSEL_ROWS` (default [`DEFAULT_MORSEL_ROWS`]); both are read
//! once at first use. Tests build private pools with
//! [`WorkStealingPool::with_config`].

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{fence, AtomicBool, AtomicIsize, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

use super::BLOCK_ROWS;

/// Default number of rows per morsel (~1 MiB per touched `u64` column):
/// large enough to amortize claim overhead, small enough to stay
/// cache-resident and to balance across workers. Scans are memory-bandwidth
/// bound, so finer splitting buys balance, not bandwidth.
pub const DEFAULT_MORSEL_ROWS: usize = 128 * 1024;

/// A heap-allocated pool task. Stored in the deques as a thin raw pointer so
/// slots are a single `AtomicPtr`.
struct TaskCell {
    run: Box<dyn FnOnce() + Send + 'static>,
}

type RawTask = *mut TaskCell;

/// Raw task wrapper that is `Send` so it can sit in the injector mutex.
struct InjectedTask(RawTask);
// SAFETY: the wrapped pointer owns a `Box<TaskCell>` whose closure is `Send`;
// the wrapper is only ever moved between threads, never aliased.
unsafe impl Send for InjectedTask {}

/// Growable circular buffer backing one Chase-Lev deque. Capacity is always a
/// power of two so indexing is a mask.
struct Buffer {
    cap: usize,
    slots: Box<[AtomicPtr<TaskCell>]>,
}

impl Buffer {
    fn alloc(cap: usize) -> *mut Buffer {
        debug_assert!(cap.is_power_of_two());
        Box::into_raw(Box::new(Buffer {
            cap,
            slots: (0..cap)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }))
    }

    fn get(&self, index: isize) -> RawTask {
        self.slots[index as usize & (self.cap - 1)].load(Ordering::Relaxed)
    }

    fn put(&self, index: isize, task: RawTask) {
        self.slots[index as usize & (self.cap - 1)].store(task, Ordering::Relaxed);
    }
}

/// Result of one steal attempt.
enum Steal {
    /// Stole this task.
    Success(RawTask),
    /// Lost a race; the deque may still have tasks — try again.
    Retry,
    /// Deque observed empty.
    Empty,
}

/// One worker's Chase-Lev deque. The owning worker pushes/pops at the
/// bottom; any thread may steal from the top. Retired (outgrown) buffers are
/// kept until the deque drops because concurrent thieves may still read
/// them; the top-CAS guarantees a stale read is never *used*.
struct Deque {
    top: AtomicIsize,
    bottom: AtomicIsize,
    buffer: AtomicPtr<Buffer>,
    retired: Mutex<Vec<*mut Buffer>>,
}

// SAFETY: all cross-thread access goes through atomics (and the retired-list
// mutex); the raw buffer pointers are reclaimed only in `drop`, when no other
// thread can hold a reference to the deque.
unsafe impl Send for Deque {}
unsafe impl Sync for Deque {}

impl Deque {
    const MIN_CAP: usize = 64;

    fn new() -> Self {
        Self {
            top: AtomicIsize::new(0),
            bottom: AtomicIsize::new(0),
            buffer: AtomicPtr::new(Buffer::alloc(Self::MIN_CAP)),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Cheap emptiness hint for parking decisions — never used for
    /// correctness of pop/steal themselves.
    fn is_empty_hint(&self) -> bool {
        self.bottom.load(Ordering::Relaxed) <= self.top.load(Ordering::Relaxed)
    }

    /// Owner-only: push a task at the bottom.
    ///
    /// # Safety
    /// Must only be called from the worker thread that owns this deque.
    unsafe fn push(&self, task: RawTask) {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        let mut buf = self.buffer.load(Ordering::Relaxed);
        if b - t >= (*buf).cap as isize {
            buf = self.grow(t, b);
        }
        (*buf).put(b, task);
        // Release: a thief that Acquire-loads the new bottom sees the slot.
        self.bottom.store(b + 1, Ordering::Release);
    }

    /// Owner-only: pop the most recently pushed task.
    ///
    /// # Safety
    /// Must only be called from the worker thread that owns this deque.
    unsafe fn pop(&self) -> Option<RawTask> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        let buf = self.buffer.load(Ordering::Relaxed);
        self.bottom.store(b, Ordering::Relaxed);
        // SeqCst fence: order the bottom decrement against the top load, so
        // this pop and a concurrent steal cannot both miss each other.
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t <= b {
            let task = (*buf).get(b);
            if t == b {
                // Last element: race thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(b + 1, Ordering::Relaxed);
                won.then_some(task)
            } else {
                Some(task)
            }
        } else {
            self.bottom.store(b + 1, Ordering::Relaxed);
            None
        }
    }

    /// Any thread: try to steal the oldest task.
    fn steal(&self) -> Steal {
        let t = self.top.load(Ordering::Acquire);
        // SeqCst fence: the top load must not be reordered after the bottom
        // load, or a concurrent pop could hide the last element from us
        // while we hide our claim from it.
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        let buf = self.buffer.load(Ordering::Acquire);
        // SAFETY: `buf` is either the current buffer or a retired one that
        // stays allocated until the deque drops; if it was retired, the CAS
        // below fails (top moved during the grow window's races) or the
        // entry at `t` is identical in the new buffer (grow copies t..b).
        let task = unsafe { (*buf).get(t) };
        if self
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            Steal::Success(task)
        } else {
            Steal::Retry
        }
    }

    /// Owner-only (from `push`): double the buffer, copying live entries.
    /// The old buffer is retired, not freed — thieves may still be reading
    /// it.
    unsafe fn grow(&self, t: isize, b: isize) -> *mut Buffer {
        let old = self.buffer.load(Ordering::Relaxed);
        let new = Buffer::alloc((*old).cap * 2);
        for i in t..b {
            (*new).put(i, (*old).get(i));
        }
        self.buffer.store(new, Ordering::Release);
        self.retired.lock().unwrap().push(old);
        new
    }
}

impl Drop for Deque {
    fn drop(&mut self) {
        // Free any tasks never executed (a clean shutdown leaves none).
        loop {
            match self.steal() {
                Steal::Success(task) => unsafe { drop(Box::from_raw(task)) },
                Steal::Retry => continue,
                Steal::Empty => break,
            }
        }
        unsafe {
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
            for buf in self.retired.lock().unwrap().drain(..) {
                drop(Box::from_raw(buf));
            }
        }
    }
}

/// Sleep bookkeeping: how many workers are parked on the condvar.
struct SleepState {
    sleepers: usize,
}

/// State shared between the pool handle and its worker threads.
struct PoolShared {
    deques: Vec<Deque>,
    injector: Mutex<VecDeque<InjectedTask>>,
    /// Lock-free injector emptiness hint.
    injector_len: AtomicUsize,
    sleep: Mutex<SleepState>,
    wake: Condvar,
    shutdown: AtomicBool,
    morsel_rows: usize,
}

impl PoolShared {
    fn pop_injector(&self) -> Option<RawTask> {
        if self.injector_len.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let mut queue = self.injector.lock().unwrap();
        let task = queue.pop_front();
        if task.is_some() {
            self.injector_len.fetch_sub(1, Ordering::Relaxed);
        }
        task.map(|InjectedTask(raw)| raw)
    }

    fn push_injector(&self, task: RawTask) {
        let mut queue = self.injector.lock().unwrap();
        queue.push_back(InjectedTask(task));
        self.injector_len.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether any queue plausibly holds work (parking hint only).
    fn has_work_hint(&self) -> bool {
        self.injector_len.load(Ordering::Relaxed) > 0
            || self.deques.iter().any(|d| !d.is_empty_hint())
    }

    /// Wakes sleeping workers after a submission: one for a single task,
    /// everyone for a batch.
    fn notify(&self, tasks: usize) {
        let sleep = self.sleep.lock().unwrap();
        if sleep.sleepers > 0 {
            if tasks <= 1 {
                self.wake.notify_one();
            } else {
                self.wake.notify_all();
            }
        }
    }

    /// Find a task: own deque first (cache-hot LIFO), then the injector,
    /// then steal from the other workers.
    fn find_task(&self, index: usize) -> Option<RawTask> {
        // SAFETY: `find_task` is only called by the worker owning deque
        // `index` (see `worker_loop`).
        if let Some(task) = unsafe { self.deques[index].pop() } {
            return Some(task);
        }
        if let Some(task) = self.pop_injector() {
            return Some(task);
        }
        let n = self.deques.len();
        for sweep in 0..2 {
            let _ = sweep;
            for offset in 1..n {
                let victim = (index + offset) % n;
                loop {
                    match self.deques[victim].steal() {
                        Steal::Success(task) => return Some(task),
                        Steal::Retry => std::hint::spin_loop(),
                        Steal::Empty => break,
                    }
                }
            }
        }
        None
    }
}

/// Runs one task, consuming it. Panics are caught so a poisoned task can
/// never kill a pool worker; scoped joins re-surface them to the caller.
fn run_task(raw: RawTask) {
    // SAFETY: `raw` came from `Box::into_raw` in `submit_task` and ownership
    // transfers to exactly one runner (deque/injector hand-off is linear).
    let cell = unsafe { Box::from_raw(raw) };
    let _ = panic::catch_unwind(AssertUnwindSafe(cell.run));
}

thread_local! {
    /// `(pool identity, worker index)` of the pool worker running this
    /// thread, if any. Pool identity is the address of its `PoolShared`.
    static CURRENT_WORKER: std::cell::Cell<Option<(usize, usize)>> =
        const { std::cell::Cell::new(None) };
}

fn worker_loop(shared: &Arc<PoolShared>, index: usize) {
    CURRENT_WORKER.with(|w| w.set(Some((Arc::as_ptr(shared) as usize, index))));
    loop {
        if let Some(task) = shared.find_task(index) {
            run_task(task);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park. Registering as a sleeper *before* the re-check closes the
        // lost-wakeup race: a submitter either sees sleepers > 0 and
        // notifies, or we see its task in the re-check. The timeout is a
        // defensive bound, not the wakeup mechanism.
        let mut sleep = shared.sleep.lock().unwrap();
        sleep.sleepers += 1;
        if !shared.shutdown.load(Ordering::Acquire) && !shared.has_work_hint() {
            let (guard, _) = shared
                .wake
                .wait_timeout(sleep, Duration::from_millis(10))
                .unwrap();
            sleep = guard;
        }
        sleep.sleepers -= 1;
    }
}

/// Completion latch for one scoped join: counts outstanding helper
/// invocations and records the first helper panic.
struct Latch {
    state: Mutex<(usize, Option<String>)>,
    done: Condvar,
}

impl Latch {
    fn new(outstanding: usize) -> Self {
        Self {
            state: Mutex::new((outstanding, None)),
            done: Condvar::new(),
        }
    }

    fn arrive(&self, panic_msg: Option<String>) {
        let mut state = self.state.lock().unwrap();
        state.0 -= 1;
        if let Some(msg) = panic_msg {
            state.1.get_or_insert(msg);
        }
        if state.0 == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        self.state.lock().unwrap().0 == 0
    }

    fn wait(&self) {
        let mut state = self.state.lock().unwrap();
        while state.0 > 0 {
            state = self.done.wait(state).unwrap();
        }
    }

    fn wait_timeout(&self, timeout: Duration) {
        let state = self.state.lock().unwrap();
        if state.0 > 0 {
            let _ = self.done.wait_timeout(state, timeout).unwrap();
        }
    }

    fn take_panic(&self) -> Option<String> {
        self.state.lock().unwrap().1.take()
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".to_string())
}

/// Configuration for a [`WorkStealingPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    /// Number of worker threads (clamped to at least one).
    pub threads: usize,
    /// Rows per morsel for the pooled plan executors (clamped to at least
    /// one block, [`BLOCK_ROWS`]).
    pub morsel_rows: usize,
}

impl PoolConfig {
    /// Reads `TSUNAMI_POOL_THREADS` and `TSUNAMI_MORSEL_ROWS` from the
    /// environment, falling back to `std::thread::available_parallelism` and
    /// [`DEFAULT_MORSEL_ROWS`]. Unparseable or zero values fall back too.
    pub fn from_env() -> Self {
        let parse = |name: &str| {
            std::env::var(name)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
        };
        Self {
            threads: parse("TSUNAMI_POOL_THREADS").unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
            morsel_rows: parse("TSUNAMI_MORSEL_ROWS").unwrap_or(DEFAULT_MORSEL_ROWS),
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::from_env()
    }
}

/// A persistent work-stealing thread pool (see the module docs).
///
/// Dropping the pool (or calling [`WorkStealingPool::shutdown`]) joins every
/// worker; tasks still queued at shutdown are executed on the shutting-down
/// thread so scoped joins can never be stranded. Shutdown is idempotent.
pub struct WorkStealingPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkStealingPool {
    /// A pool with `threads` workers and the default morsel size.
    pub fn new(threads: usize) -> Self {
        Self::with_config(PoolConfig {
            threads,
            morsel_rows: DEFAULT_MORSEL_ROWS,
        })
    }

    /// A pool with an explicit configuration.
    pub fn with_config(config: PoolConfig) -> Self {
        let threads = config.threads.max(1);
        let shared = Arc::new(PoolShared {
            deques: (0..threads).map(|_| Deque::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: Mutex::new(SleepState { sleepers: 0 }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            morsel_rows: config.morsel_rows.max(BLOCK_ROWS),
        });
        let workers = (0..threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tsunami-pool-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads the pool was built with.
    pub fn worker_count(&self) -> usize {
        self.shared.deques.len()
    }

    /// Rows per morsel for the pooled plan executors.
    pub fn morsel_rows(&self) -> usize {
        self.shared.morsel_rows
    }

    /// The worker index of the calling thread, if it is one of *this* pool's
    /// workers.
    fn current_worker_index(&self) -> Option<usize> {
        CURRENT_WORKER.with(|w| match w.get() {
            Some((pool, index)) if pool == Arc::as_ptr(&self.shared) as usize => Some(index),
            _ => None,
        })
    }

    /// Submits an independent `'static` task (the inter-query path: the
    /// engine scheduler submits whole queries this way). From a worker
    /// thread the task lands on that worker's own deque; from any other
    /// thread it goes through the global injector.
    pub fn spawn(&self, task: impl FnOnce() + Send + 'static) {
        self.submit_task(Box::new(task));
        self.shared.notify(1);
    }

    fn submit_task(&self, task: Box<dyn FnOnce() + Send + 'static>) {
        let raw = Box::into_raw(Box::new(TaskCell { run: task }));
        match self.current_worker_index() {
            // SAFETY: `current_worker_index` proved we are the owner.
            Some(index) => unsafe { self.shared.deques[index].push(raw) },
            None => self.shared.push_injector(raw),
        }
    }

    /// Runs `work` on up to `helpers` pool workers *and* the calling thread,
    /// returning once every invocation has finished (the intra-query path:
    /// each invocation is one morsel-claiming loop).
    ///
    /// The borrow is erased to `'static` internally; that is sound because
    /// this function never returns — not even by unwinding — before all
    /// helper invocations completed, so `work` outlives every use. A helper
    /// panic is re-raised here on the calling thread; a caller panic
    /// propagates after the helpers finish.
    ///
    /// A calling thread that is itself a pool worker waits by draining its
    /// own deque (where its helper tasks were just pushed), so tasks that
    /// fan out into scoped joins cannot deadlock the pool.
    pub fn join_helpers<'scope>(&self, helpers: usize, work: &(dyn Fn() + Sync + 'scope)) {
        if helpers == 0 {
            work();
            return;
        }
        let latch = Arc::new(Latch::new(helpers));
        // SAFETY: lifetime erasure only; see the doc comment for why `work`
        // outlives every helper invocation.
        let work_static: &'static (dyn Fn() + Sync) = unsafe {
            std::mem::transmute::<&(dyn Fn() + Sync + 'scope), &'static (dyn Fn() + Sync)>(work)
        };
        for _ in 0..helpers {
            let latch = Arc::clone(&latch);
            self.submit_task(Box::new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(work_static));
                latch.arrive(result.err().map(panic_message));
            }));
        }
        self.shared.notify(helpers);
        let caller = panic::catch_unwind(AssertUnwindSafe(work));
        // Helpers still borrow `work` (and whatever it captures): wait for
        // them before unwinding even if the caller's own invocation panicked.
        self.wait_latch(&latch);
        if let Err(payload) = caller {
            panic::resume_unwind(payload);
        }
        if let Some(msg) = latch.take_panic() {
            panic!("pool helper panicked: {msg}");
        }
    }

    fn wait_latch(&self, latch: &Latch) {
        match self.current_worker_index() {
            Some(index) => {
                while !latch.is_done() {
                    // SAFETY: we are the worker owning deque `index`.
                    match unsafe { self.shared.deques[index].pop() } {
                        Some(task) => run_task(task),
                        // Own deque empty: our helpers were stolen and are
                        // running elsewhere. Briefly block instead of
                        // spinning; arrival notifies the latch condvar.
                        None => latch.wait_timeout(Duration::from_micros(200)),
                    }
                }
            }
            None => latch.wait(),
        }
    }

    /// Stops and joins every worker. Queued-but-unexecuted tasks are run on
    /// this thread so no scoped join is ever stranded. Idempotent — safe to
    /// call before `drop`, twice, or never.
    pub fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.shared.shutdown.store(true, Ordering::Release);
        {
            // Taking the sleep lock orders the flag store against sleeper
            // registration, so every parked worker observes it.
            let _guard = self.shared.sleep.lock().unwrap();
            self.shared.wake.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Late submissions (or tasks a worker pushed while exiting): run
        // them here rather than dropping latched work on the floor.
        while let Some(task) = self.shared.pop_injector() {
            run_task(task);
        }
        for deque in &self.shared.deques {
            loop {
                match deque.steal() {
                    Steal::Success(task) => run_task(task),
                    Steal::Retry => continue,
                    Steal::Empty => break,
                }
            }
        }
    }
}

impl Drop for WorkStealingPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for WorkStealingPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkStealingPool")
            .field("workers", &self.worker_count())
            .field("morsel_rows", &self.morsel_rows())
            .finish()
    }
}

/// The lazily-created process-wide pool every query hot path routes
/// through. Sized by `TSUNAMI_POOL_THREADS` / `TSUNAMI_MORSEL_ROWS` (read
/// once, at first use); lives for the process lifetime.
pub fn global() -> &'static Arc<WorkStealingPool> {
    static GLOBAL: OnceLock<Arc<WorkStealingPool>> = OnceLock::new();
    GLOBAL.get_or_init(|| Arc::new(WorkStealingPool::with_config(PoolConfig::from_env())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawned_tasks_all_run() {
        let pool = WorkStealingPool::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        let latch = Arc::new(Latch::new(100));
        for i in 0..100u64 {
            let counter = Arc::clone(&counter);
            let latch = Arc::clone(&latch);
            pool.spawn(move || {
                counter.fetch_add(i + 1, Ordering::Relaxed);
                latch.arrive(None);
            });
        }
        latch.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 5050);
    }

    #[test]
    fn join_helpers_runs_on_caller_and_helpers() {
        let pool = WorkStealingPool::new(2);
        let invocations = AtomicU64::new(0);
        let mut local = 0u64; // borrowed non-'static state
        let claimed = AtomicUsize::new(0);
        pool.join_helpers(2, &|| {
            invocations.fetch_add(1, Ordering::Relaxed);
            while claimed.fetch_add(1, Ordering::Relaxed) < 1000 {}
        });
        // All invocations finished before join_helpers returned.
        assert_eq!(invocations.load(Ordering::Relaxed), 3);
        assert!(claimed.load(Ordering::Relaxed) >= 1001);
        local += 1;
        assert_eq!(local, 1);
    }

    #[test]
    fn join_helpers_resurfaces_helper_panics() {
        let pool = WorkStealingPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let hits = AtomicU64::new(0);
            pool.join_helpers(2, &|| {
                if hits.fetch_add(1, Ordering::Relaxed) > 0 {
                    panic!("helper boom");
                }
            });
        }));
        assert!(result.is_err());
        // The pool survives the panic and keeps executing work.
        let ran = Arc::new(AtomicBool::new(false));
        let latch = Arc::new(Latch::new(1));
        let flag = Arc::clone(&ran);
        let l = Arc::clone(&latch);
        pool.spawn(move || {
            flag.store(true, Ordering::Relaxed);
            l.arrive(None);
        });
        latch.wait();
        assert!(ran.load(Ordering::Relaxed));
    }

    #[test]
    fn nested_joins_from_worker_tasks_do_not_deadlock() {
        // A task that itself fans out: the scheduler-runs-parallel-query
        // shape. Must complete even when the pool has a single worker.
        for threads in [1, 2, 4] {
            let pool = Arc::new(WorkStealingPool::new(threads));
            let latch = Arc::new(Latch::new(4));
            let total = Arc::new(AtomicU64::new(0));
            for _ in 0..4 {
                let pool2 = Arc::clone(&pool);
                let latch = Arc::clone(&latch);
                let total = Arc::clone(&total);
                pool.spawn(move || {
                    let inner = AtomicU64::new(0);
                    pool2.join_helpers(2, &|| {
                        inner.fetch_add(7, Ordering::Relaxed);
                    });
                    total.fetch_add(inner.load(Ordering::Relaxed), Ordering::Relaxed);
                    latch.arrive(None);
                });
            }
            latch.wait();
            // 4 tasks × 3 invocations × 7.
            assert_eq!(total.load(Ordering::Relaxed), 84, "threads={threads}");
        }
    }

    #[test]
    fn shutdown_is_idempotent_and_runs_queued_tasks() {
        let mut pool = WorkStealingPool::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.spawn(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        pool.shutdown(); // double shutdown is a no-op
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        drop(pool); // drop after explicit shutdown is safe too
    }

    #[test]
    fn config_clamps_zero_threads_and_tiny_morsels() {
        let pool = WorkStealingPool::with_config(PoolConfig {
            threads: 0,
            morsel_rows: 1,
        });
        assert_eq!(pool.worker_count(), 1);
        assert_eq!(pool.morsel_rows(), BLOCK_ROWS);
    }
}
