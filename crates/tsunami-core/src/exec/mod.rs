//! The shared scan-execution engine: every index answers queries by emitting
//! a [`ScanPlan`] that one tiered, vectorized executor runs.
//!
//! # The ScanPlan / executor contract
//!
//! Tsunami's core performance claim (§6.1 of the paper) is that *every* query
//! — against the learned indexes and the traditional baselines alike — boils
//! down to scanning an ordered list of contiguous physical row ranges, where
//! some ranges are known *exact* (every row in them is guaranteed to match
//! the query filter, so per-value predicate checks are skipped). Before this
//! module existed, each index hand-rolled its own accumulator loop over those
//! ranges; now an index only implements
//! [`MultiDimIndex::plan`](crate::MultiDimIndex::plan), producing:
//!
//! * `ranges` — the contiguous physical ranges to visit, in scan order, each
//!   tagged with its exactness flag. [`ScanPlan::push`] transparently merges
//!   physically adjacent ranges of equal exactness, so indexes never pay for
//!   an extra range jump they did not need.
//! * `residual` — optionally, the subset of the query's predicates that still
//!   has to be checked inside non-exact ranges. An index that guarantees some
//!   predicate by construction — a clustered single-dimension index whose
//!   binary search already bounds the sort dimension, or a grid/tree index
//!   whose visited cell bounds all lie inside the predicate's range — lists
//!   only the remaining predicates and the executor skips re-checking the
//!   guaranteed ones. When absent, all of the query's predicates are checked.
//!
//! Plans are clamped to the source **once**, at executor entry
//! ([`ScanPlan::clamped`]); the scan kernels then assume in-bounds ranges and
//! never re-clamp per range or per piece.
//!
//! # Kernel tiers
//!
//! The executor evaluates non-exact ranges with columnar, blockwise kernels:
//! predicates are applied one column at a time over fixed-size row blocks
//! ([`BLOCK_ROWS`]), and only the selected rows are fed to the aggregation —
//! touching just the filtered columns plus (at most) the aggregation input
//! column, exactly what the paper's cost model prices. *How* a block's
//! selection is represented and materialized is a [`KernelTier`]:
//!
//! * [`KernelTier::Scalar`] — the reference row-at-a-time branchy loop
//!   (`if matches { keep }`). Kept as the in-tree oracle the other tiers are
//!   differentially tested against, and as the baseline the `fig12kern`
//!   microbenchmark measures speedups over.
//! * [`KernelTier::Vector`] — branchless selection-vector kernels: match
//!   masks are computed with arithmetic compares, rows are materialized with
//!   unconditional stores and a mask-advanced cursor. No data-dependent
//!   branches, so selectivity near 50% costs no misprediction penalty.
//! * [`KernelTier::Bitmap`] — a word-packed selection bitmap (1 bit/row):
//!   8-lane unrolled compare groups build `u64` mask words, further
//!   predicates `AND` into them, and aggregation is mask-native (popcount for
//!   `COUNT`, masked folds with a fully-set-word fast path for
//!   `SUM`/`MIN`/`MAX`). Cheapest when selections are dense.
//! * [`KernelTier::Adaptive`] — the default: per block, picks the cheapest
//!   representation from the selectivity observed so far in this execution.
//!   Very sparse selections (&lt;1/16 matched) drop back to the scalar loop,
//!   whose almost-never-taken branch predicts perfectly and skips all
//!   materialization work; dense ones (≥1/2 matched, ≥3/4 with multiple
//!   predicates since bitmap refinement re-touches whole blocks) engage the
//!   bitmap; the mid band — where the scalar branch mispredicts hardest —
//!   takes the branchless selection vector.
//!
//! Every tier computes the same selection for the same block, so results
//! **and** [`ScanCounters`] are tier-invariant: `ranges`/`points` depend only
//! on the plan, and `matched` is the selection's cardinality, which no
//! representation changes. The differential suites assert bit-identical
//! results across all tiers, serial and parallel.
//!
//! Exact ranges skip selection entirely regardless of tier: `COUNT` never
//! touches data, `SUM`/`AVG` reduce the input column directly, and
//! `MIN`/`MAX` fall back to a tight fold over the input column (they need
//! per-value inspection even when the range is exact).
//!
//! Execution is counter-transparent: the executor returns the
//! [`ScanCounters`] (ranges/points/matched) accumulated *by that call*,
//! threaded through the kernels rather than stored in shared mutable state,
//! so concurrent queries against one source can never corrupt each other's
//! statistics.
//!
//! # Parallel execution: morsels on one persistent pool
//!
//! [`execute_plan_parallel`] runs the same plan across the process-wide
//! work-stealing pool ([`pool`]; std-only — the container has no rayon). The
//! plan's ranges are decomposed into fixed-size cache-resident **morsels**
//! (~[`pool::DEFAULT_MORSEL_ROWS`] rows, tunable via `TSUNAMI_MORSEL_ROWS`)
//! which the participating workers claim from a shared cursor; each worker
//! keeps a private [`AggAccumulator`] and [`ScanCounters`], merged once at
//! the end. Results and counters are bit-identical to the serial executor —
//! aggregation merging is commutative and associative, and morsels carved
//! from one plan range count as a single scanned range — regardless of which
//! worker runs which morsel in which order. Per-worker [`BlockScratch`]
//! lives in thread-local storage (reused across queries on pool workers),
//! and each worker keeps its own adaptive-density estimate; the estimate
//! only steers representation choice, never results.
//!
//! The spawn-per-call executor this replaced survives as
//! [`execute_plan_spawn_tiered`], exclusively as the benchmark baseline that
//! `fig7par` measures the pool's spawn-amortization win against. No query
//! hot path calls it.
//!
//! Data access is abstracted behind [`ScanSource`] (rows of `u64` columns),
//! implemented by both the logical [`Dataset`] and the
//! physical `ColumnStore` in `tsunami-store`. Sources must be `Sync`: scans
//! never mutate them.
//!
//! # Encoded columns
//!
//! A source may hand out columns as [`ColumnData::Encoded`]: a prefix of
//! per-block encoded payloads (frame-of-reference bit-packing or dictionary
//! codes, see [`crate::encode`]) aligned to the absolute [`BLOCK_ROWS`]
//! grid, plus a plain unencoded tail that ingest appends to. The scan loop
//! chunks on that grid, so each chunk sees exactly one representation:
//!
//! * the **scalar** tier reads rows one at a time through the per-row
//!   accessor and uses **no** block metadata — it stays the oracle that
//!   catches unsound pruning;
//! * the branchless tiers take one shared **packed** path: per predicate
//!   the block's metadata first classifies the test (skip-before-decode on
//!   live min/max, drop-the-predicate when every live row passes), and
//!   surviving range tests run as SWAR compares directly on the packed
//!   words — 8/4/2 rows per ALU op — with dedicated no-bitmap fast paths
//!   for single-predicate `COUNT` and layout-matched `SUM`/`AVG`.
//!
//! Tombstone liveness is ANDed into every selection exactly as on plain
//! columns (block live bounds are computed at encode time and remain sound
//! because deletes only accrue; physical mutation re-encodes), so results
//! and counters stay bit-identical across tiers, serial and parallel, for
//! any mix of encoded, plain, and tombstoned blocks.

pub mod kernels;
pub mod pool;

use std::borrow::Cow;
use std::cell::RefCell;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::dataset::{Dataset, Value};
use crate::encode::{BlockData, BlockTest, EncodedBlock, PackClass};
use crate::query::{AggAccumulator, AggResult, Aggregation, Predicate, Query};
use crate::tombstone::TombstoneSet;

pub use kernels::BlockScratch;

/// Benchmark-only window into [`kernels::packed_count`] (see
/// `examples/packbench.rs`); not part of the public API contract.
#[doc(hidden)]
pub fn packed_count_for_bench(
    eb: &crate::encode::EncodedBlock,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
) -> usize {
    let (packed, class) = packed_payload(eb);
    kernels::packed_count(packed, class, offset, n, lo, hi)
}

/// Benchmark-only window into [`kernels::packed_sum_same_layout`]; not part
/// of the public API contract.
#[doc(hidden)]
pub fn packed_sum_for_bench(
    eb: &crate::encode::EncodedBlock,
    agg: &crate::encode::EncodedBlock,
    offset: usize,
    n: usize,
    lo: u64,
    hi: Option<u64>,
) -> (u64, u128) {
    let (packed, class) = packed_payload(eb);
    let (agg_packed, agg_class) = packed_payload(agg);
    assert_eq!(class, agg_class);
    kernels::packed_sum_same_layout(packed, agg_packed, class, offset, n, lo, hi)
}
pub use pool::{PoolConfig, WorkStealingPool, DEFAULT_MORSEL_ROWS};

/// Number of rows per vectorized block. Chosen so one block of one column
/// (8 KiB) plus the selection vector stays comfortably inside L1.
pub const BLOCK_ROWS: usize = 1024;

/// End of the absolute-grid block containing `start`, clamped to `limit`.
/// The executor chunks scans on this grid so one chunk never straddles two
/// encoded blocks (encoded block `b` always covers rows
/// `b * BLOCK_ROWS .. (b + 1) * BLOCK_ROWS`).
#[inline(always)]
fn grid_block_end(start: usize, limit: usize) -> usize {
    ((start / BLOCK_ROWS + 1) * BLOCK_ROWS).min(limit)
}

/// Which block-kernel implementation the executor uses for non-exact ranges.
/// See the module docs for the full contract; all tiers are bit-identical in
/// results and counters, they differ only in speed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum KernelTier {
    /// Reference branchy row-at-a-time loop (the in-tree oracle).
    Scalar,
    /// Branchless selection-vector kernels.
    Vector,
    /// Branchless word-packed selection-bitmap kernels.
    Bitmap,
    /// Per-block Scalar/Vector/Bitmap choice driven by observed selectivity.
    #[default]
    Adaptive,
}

impl KernelTier {
    /// Every tier, scalar oracle first (benchmark / differential-sweep
    /// order).
    pub const ALL: [KernelTier; 4] = [
        KernelTier::Scalar,
        KernelTier::Vector,
        KernelTier::Bitmap,
        KernelTier::Adaptive,
    ];

    /// Short lowercase label used in benchmark tables and `BENCH_scan.json`.
    pub fn label(&self) -> &'static str {
        match self {
            KernelTier::Scalar => "scalar",
            KernelTier::Vector => "vector",
            KernelTier::Bitmap => "bitmap",
            KernelTier::Adaptive => "adaptive",
        }
    }
}

/// One column's physical representation as seen by the executor.
///
/// Plain sources hand out contiguous slices; stores with per-block
/// encodings hand out their grid-aligned encoded prefix plus the plain
/// ingest tail. The executor's block loop is aligned to the absolute
/// [`BLOCK_ROWS`] grid, so one processed chunk never straddles two encoded
/// blocks (or an encoded block and the tail).
#[derive(Debug, Clone, Copy)]
pub enum ColumnData<'a> {
    /// Every row as one contiguous plain slice.
    Plain(&'a [Value]),
    /// Encoded blocks covering rows `0 .. blocks.len() * BLOCK_ROWS`
    /// (block `b` holds rows `b * BLOCK_ROWS ..`), then `tail` holds the
    /// remaining (unencoded) rows.
    Encoded {
        blocks: &'a [EncodedBlock],
        tail: &'a [Value],
    },
}

impl<'a> ColumnData<'a> {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Plain(s) => s.len(),
            ColumnData::Encoded { blocks, tail } => blocks.len() * BLOCK_ROWS + tail.len(),
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether every row is plain (no encoded blocks).
    pub fn is_plain(&self) -> bool {
        matches!(self, ColumnData::Plain(_))
            || matches!(self, ColumnData::Encoded { blocks, .. } if blocks.is_empty())
    }

    /// The encoded block covering `row`, if any.
    #[inline(always)]
    fn block_at(&self, row: usize) -> Option<&'a EncodedBlock> {
        match self {
            ColumnData::Plain(_) => None,
            ColumnData::Encoded { blocks, .. } => blocks.get(row / BLOCK_ROWS),
        }
    }

    /// One row's value, whatever the physical representation (the scalar
    /// oracle's accessor — data only, never block metadata).
    #[inline(always)]
    fn value_at(&self, row: usize) -> Value {
        match self {
            ColumnData::Plain(s) => s[row],
            ColumnData::Encoded { blocks, tail } => match blocks.get(row / BLOCK_ROWS) {
                Some(eb) => eb.value_at(row % BLOCK_ROWS),
                None => tail[row - blocks.len() * BLOCK_ROWS],
            },
        }
    }

    /// Plain view of rows `start..end`; rows must not be encoded.
    #[inline(always)]
    fn slice(&self, start: usize, end: usize) -> &'a [Value] {
        match self {
            ColumnData::Plain(s) => &s[start..end],
            ColumnData::Encoded { blocks, tail } => {
                let covered = blocks.len() * BLOCK_ROWS;
                debug_assert!(start >= covered, "sliced rows must be plain");
                &tail[start - covered..end - covered]
            }
        }
    }
}

/// Read-only columnar data that scan plans execute against.
///
/// `Sync` is a supertrait on purpose: executing a plan never mutates the
/// source, and the parallel executor shares one source across threads.
pub trait ScanSource: Sync {
    /// Number of rows.
    fn num_rows(&self) -> usize;
    /// Number of columns (dimensions).
    fn num_dims(&self) -> usize;
    /// One column's physical representation. Plain sources wrap their value
    /// slice in [`ColumnData::Plain`]; encoding stores expose their encoded
    /// prefix and plain tail, and the executor evaluates predicates directly
    /// on the packed data.
    fn column_data(&self, dim: usize) -> ColumnData<'_>;
    /// The source's deletion bitmap, if it supports tombstone deletes.
    /// Sources that return one with [`TombstoneSet::any`] get liveness
    /// ANDed into every selection — in all kernel tiers and on the dense
    /// exact-range path — so tombstoned rows never reach an aggregate.
    /// [`ScanCounters::matched`] counts live matches only; `ranges` and
    /// `points` still describe the plan's physical visit.
    fn tombstones(&self) -> Option<&TombstoneSet> {
        None
    }
}

impl ScanSource for Dataset {
    fn num_rows(&self) -> usize {
        self.len()
    }
    fn num_dims(&self) -> usize {
        self.num_dims()
    }
    fn column_data(&self, dim: usize) -> ColumnData<'_> {
        ColumnData::Plain(self.column(dim))
    }
}

/// One contiguous physical row range of a scan plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanRange {
    /// The physical rows to visit.
    pub range: Range<usize>,
    /// Whether every row in `range` is guaranteed to match the query filter,
    /// enabling the §6.1 exact-range optimization.
    pub exact: bool,
}

/// A pre-folded aggregate contribution attached to a plan instead of a
/// physical range: `rows` live rows whose SUM/MIN/MAX over the aggregation's
/// input dimension are already known (e.g. from a per-region aggregate cube).
/// The executor folds a partial into the accumulator with one
/// [`AggAccumulator::add_block`] call and never touches the underlying rows.
/// Only sound when every contributing row is guaranteed to match the query —
/// the same contract as an exact range, minus the scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanPartial {
    /// Number of live rows pre-folded into this partial.
    pub rows: u64,
    /// Exact sum of the aggregation's input dimension over those rows.
    pub sum: u128,
    /// Minimum of the input dimension over those rows (None iff `rows == 0`).
    pub min: Option<Value>,
    /// Maximum of the input dimension over those rows (None iff `rows == 0`).
    pub max: Option<Value>,
}

/// The ordered list of contiguous physical ranges an index wants scanned for
/// one query, plus optional residual predicates and pre-folded aggregate
/// partials. See the module docs for the full contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanPlan {
    ranges: Vec<ScanRange>,
    residual: Option<Vec<Predicate>>,
    partials: Vec<PlanPartial>,
}

impl ScanPlan {
    /// An empty plan (matches nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The trivial full-scan plan over `len` rows.
    pub fn full(len: usize) -> Self {
        let mut plan = Self::new();
        plan.push(0..len, false);
        plan
    }

    /// Builds a plan from `(range, exact)` pairs, merging adjacent ranges.
    pub fn from_ranges<I: IntoIterator<Item = (Range<usize>, bool)>>(ranges: I) -> Self {
        let mut plan = Self::new();
        for (r, exact) in ranges {
            plan.push(r, exact);
        }
        plan
    }

    /// Appends a range. Empty ranges are dropped; a range physically adjacent
    /// to the previous one with the same exactness is merged into it, so the
    /// executor sees maximal contiguous runs.
    pub fn push(&mut self, range: Range<usize>, exact: bool) {
        if range.start >= range.end {
            return;
        }
        if let Some(last) = self.ranges.last_mut() {
            if last.range.end == range.start && last.exact == exact {
                last.range.end = range.end;
                return;
            }
        }
        self.ranges.push(ScanRange { range, exact });
    }

    /// Declares the predicates still to be checked inside non-exact ranges;
    /// the executor then skips the query predicates not listed. Only sound
    /// when the index guarantees the omitted predicates hold on every planned
    /// range.
    pub fn with_residual(mut self, residual: Vec<Predicate>) -> Self {
        self.residual = Some(residual);
        self
    }

    /// Attaches residual predicates derived from per-dimension guarantee
    /// flags: the query predicates whose dimension is *not* guaranteed (or
    /// lies beyond the flag slice — conservatively kept) become the
    /// residual. A no-op when nothing can be dropped, so planners can call
    /// this unconditionally. This is the one shared implementation of the
    /// guarantee → residual rule; see [`ScanPlan::with_residual`] for the
    /// soundness contract.
    pub fn with_guaranteed_dims(self, query: &Query, guaranteed: &[bool]) -> ScanPlan {
        let residual: Vec<Predicate> = query
            .predicates()
            .iter()
            .filter(|p| !guaranteed.get(p.dim).copied().unwrap_or(false))
            .copied()
            .collect();
        if residual.len() < query.predicates().len() {
            self.with_residual(residual)
        } else {
            self
        }
    }

    /// Attaches a pre-folded aggregate partial. Zero-row partials are
    /// dropped — they contribute nothing and would break the
    /// `min/max == None iff rows == 0` invariant downstream.
    pub fn push_partial(&mut self, partial: PlanPartial) {
        if partial.rows > 0 {
            self.partials.push(partial);
        }
    }

    /// The pre-folded aggregate partials attached to this plan.
    pub fn partials(&self) -> &[PlanPartial] {
        &self.partials
    }

    /// The planned ranges in scan order.
    pub fn ranges(&self) -> &[ScanRange] {
        &self.ranges
    }

    /// The residual predicates for non-exact ranges: the explicitly declared
    /// set, or all of the query's predicates.
    pub fn residual<'a>(&'a self, query: &'a Query) -> &'a [Predicate] {
        match &self.residual {
            Some(r) => r,
            None => query.predicates(),
        }
    }

    /// Number of planned ranges.
    pub fn num_ranges(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the plan scans nothing.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of rows the plan visits.
    pub fn total_points(&self) -> usize {
        self.ranges.iter().map(|r| r.range.len()).sum()
    }

    /// The plan with every range clamped to a source of `num_rows` rows
    /// (empty ranges dropped). Borrows when already in bounds — the common
    /// case, since planners derive ranges from the source itself — so the
    /// executors pay one `O(ranges)` check instead of re-clamping every range
    /// (twice, in the parallel executor) per execution.
    pub fn clamped(&self, num_rows: usize) -> Cow<'_, ScanPlan> {
        if self.ranges.iter().all(|r| r.range.end <= num_rows) {
            return Cow::Borrowed(self);
        }
        let mut clamped = ScanPlan {
            ranges: Vec::with_capacity(self.ranges.len()),
            residual: self.residual.clone(),
            partials: self.partials.clone(),
        };
        for r in &self.ranges {
            clamped.push(
                r.range.start.min(num_rows)..r.range.end.min(num_rows),
                r.exact,
            );
        }
        Cow::Owned(clamped)
    }
}

/// Counters accumulated while executing one plan.
///
/// These mirror the features of the paper's cost model (§5.3.1): the number
/// of contiguous physical ranges visited and the number of points scanned.
/// They are returned by value from the executor — never stored in the source
/// — so concurrent executions cannot double-account each other's work. All
/// kernel tiers report identical counters (see the module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanCounters {
    /// Number of contiguous ranges scanned.
    pub ranges: usize,
    /// Number of points visited (whether or not they matched).
    pub points: usize,
    /// Number of points that matched every predicate. Includes rows answered
    /// from pre-folded partials: they matched, they just were not visited.
    pub matched: usize,
    /// Number of [`PlanPartial`]s folded in without scanning.
    pub partial_regions: usize,
    /// Number of matched rows answered from partials instead of a scan —
    /// always `<= matched`, and excluded from `points`.
    pub rows_prefolded: usize,
}

impl ScanCounters {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &ScanCounters) {
        self.ranges += other.ranges;
        self.points += other.points;
        self.matched += other.matched;
        self.partial_regions += other.partial_regions;
        self.rows_prefolded += other.rows_prefolded;
    }
}

/// Folds a plan's pre-folded partials into the accumulator and counters.
/// Every executor calls this exactly once per execution (the parallel
/// executors only on their non-delegating paths), after the range scans, so
/// results and counters stay bit-identical across executors: the fold is one
/// commutative `add_block` per partial.
fn apply_partials(plan: &ScanPlan, acc: &mut AggAccumulator, counters: &mut ScanCounters) {
    for p in plan.partials() {
        acc.add_block(p.rows, p.sum, p.min, p.max);
        counters.partial_regions += 1;
        counters.rows_prefolded += p.rows as usize;
        counters.matched += p.rows as usize;
    }
}

/// Executes a plan serially with the default [`KernelTier::Adaptive`]
/// kernels.
///
/// Returns the aggregation result together with the counters for exactly
/// this execution.
pub fn execute_plan(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
) -> (AggResult, ScanCounters) {
    execute_plan_tiered(source, query, plan, KernelTier::default())
}

/// Executes a plan serially with an explicit kernel tier. All tiers return
/// bit-identical results and counters; benchmarks and differential tests use
/// this to pin a tier.
pub fn execute_plan_tiered(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
    tier: KernelTier,
) -> (AggResult, ScanCounters) {
    let plan = plan.clamped(source.num_rows());
    let resolved = ResolvedQuery::new(source, plan.residual(query), query.aggregation());
    let mut acc = AggAccumulator::new(query.aggregation());
    let mut counters = ScanCounters::default();
    let mut density = Density::default();
    let mut scratch = BlockScratch::new();
    for sr in plan.ranges() {
        resolved.scan_range(
            sr.range.clone(),
            sr.exact,
            true,
            tier,
            &mut density,
            &mut acc,
            &mut counters,
            &mut scratch,
        );
    }
    apply_partials(&plan, &mut acc, &mut counters);
    (acc.finish(), counters)
}

thread_local! {
    /// Per-worker reusable [`BlockScratch`]: pool workers run many morsels
    /// over their lifetime, so the selection vector and bitmap words are
    /// allocated once per thread instead of per claimed morsel. The serial
    /// executor deliberately does NOT use this: funneling its range loop
    /// through the `with` closure costs measurable vectorization on
    /// near-empty scans (see `BENCH_scan.json` sel=0% entries), and one
    /// scratch allocation per query is below timer noise there.
    static THREAD_SCRATCH: RefCell<BlockScratch> = RefCell::new(BlockScratch::new());
}

/// Runs `f` with this thread's reusable scratch. Scan kernels never nest,
/// but if a caller ever re-enters (e.g. an aggregation callback running a
/// scan), fall back to a fresh scratch rather than panicking on the borrow.
fn with_thread_scratch<R>(f: impl FnOnce(&mut BlockScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut BlockScratch::new()),
    })
}

/// Executes a plan across up to `threads` workers of the process-wide
/// work-stealing pool with the default [`KernelTier::Adaptive`] kernels.
pub fn execute_plan_parallel(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
    threads: usize,
) -> (AggResult, ScanCounters) {
    execute_plan_parallel_tiered(source, query, plan, threads, KernelTier::default())
}

/// Executes a plan across up to `threads` workers of the process-wide
/// work-stealing pool with an explicit kernel tier.
///
/// Routes through [`execute_plan_pooled_tiered`] on [`pool::global`] with
/// the pool's configured morsel size; see the module docs for the morsel
/// decomposition and the bit-identity guarantee.
pub fn execute_plan_parallel_tiered(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
    threads: usize,
    tier: KernelTier,
) -> (AggResult, ScanCounters) {
    let pool = pool::global();
    execute_plan_pooled_tiered(source, query, plan, pool, threads, pool.morsel_rows(), tier)
}

/// Splits a plan's ranges into morsel work units of
/// `(range, exact, counts_as_new_range)`. Only the first morsel carved from
/// a plan range increments the range counter, keeping [`ScanCounters`]
/// identical to the serial executor.
fn split_morsels(plan: &ScanPlan, morsel_rows: usize) -> Vec<(Range<usize>, bool, bool)> {
    let mut units = Vec::new();
    for sr in plan.ranges() {
        let mut start = sr.range.start;
        let mut first = true;
        while start < sr.range.end {
            let end = (start + morsel_rows).min(sr.range.end);
            units.push((start..end, sr.exact, first));
            first = false;
            start = end;
        }
    }
    units
}

/// Executes a plan on an explicit [`WorkStealingPool`] with an explicit
/// morsel size — the fully parameterized form [`execute_plan_parallel_tiered`]
/// routes through, exposed for the pool stress tests and the morsel-size
/// sweep in `fig7par`.
///
/// The plan is decomposed into cache-resident morsels (clamped to at least
/// one [`BLOCK_ROWS`] block; shrunk below `morsel_rows` only when the plan
/// is too small to give every participant a morsel). Up to `threads - 1`
/// pool workers join the calling thread; every participant claims morsels
/// from a shared cursor and folds them into a private [`AggAccumulator`] and
/// [`ScanCounters`] with thread-local [`BlockScratch`], merged once at the
/// end. Merging is commutative and associative, so results and counters are
/// bit-identical to [`execute_plan_tiered`] for any worker count, morsel
/// size, and completion order.
pub fn execute_plan_pooled_tiered(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
    pool: &WorkStealingPool,
    threads: usize,
    morsel_rows: usize,
    tier: KernelTier,
) -> (AggResult, ScanCounters) {
    let threads = threads.max(1);
    let plan = plan.clamped(source.num_rows());
    let plan = plan.as_ref();
    let total = plan.total_points();
    // Parallelism only pays off once there is real work to split.
    if threads == 1 || total < 4 * BLOCK_ROWS {
        return execute_plan_tiered(source, query, plan, tier);
    }
    // Cache-resident fixed-size morsels; for plans smaller than
    // threads × morsel_rows, shrink so every participant gets work.
    let configured = morsel_rows.max(BLOCK_ROWS);
    let morsel = configured.min((total / threads).max(BLOCK_ROWS));
    let units = split_morsels(plan, morsel);
    let helpers = threads
        .min(units.len())
        .saturating_sub(1)
        .min(pool.worker_count());
    if helpers == 0 {
        return execute_plan_tiered(source, query, plan, tier);
    }

    let agg = query.aggregation();
    let resolved = ResolvedQuery::new(source, plan.residual(query), agg);
    let cursor = AtomicUsize::new(0);
    let merged: Mutex<(AggAccumulator, ScanCounters)> =
        Mutex::new((AggAccumulator::new(agg), ScanCounters::default()));
    pool.join_helpers(helpers, &|| {
        let mut acc = AggAccumulator::new(agg);
        let mut counters = ScanCounters::default();
        let mut density = Density::default();
        with_thread_scratch(|scratch| loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            let Some((range, exact, count_range)) = units.get(i).cloned() else {
                break;
            };
            resolved.scan_range(
                range,
                exact,
                count_range,
                tier,
                &mut density,
                &mut acc,
                &mut counters,
                scratch,
            );
        });
        let mut m = merged.lock().unwrap();
        m.0.merge(&acc);
        m.1.merge(&counters);
    });
    let (mut acc, mut counters) = merged.into_inner().unwrap();
    apply_partials(plan, &mut acc, &mut counters);
    (acc.finish(), counters)
}

/// The pre-pool executor: spawns fresh scoped threads for every call.
///
/// Kept **only** as the benchmark baseline `fig7par` compares the
/// persistent pool against (spawn latency vs. amortized submission); no
/// query hot path calls this. Results and counters are bit-identical to
/// [`execute_plan_tiered`] for the same reasons as the pooled executor.
pub fn execute_plan_spawn_tiered(
    source: &dyn ScanSource,
    query: &Query,
    plan: &ScanPlan,
    threads: usize,
    tier: KernelTier,
) -> (AggResult, ScanCounters) {
    let threads = threads.max(1);
    let plan = plan.clamped(source.num_rows());
    let plan = plan.as_ref();
    let total = plan.total_points();
    if threads == 1 || total < 4 * BLOCK_ROWS {
        return execute_plan_tiered(source, query, plan, tier);
    }

    let piece = (total / (threads * 4)).max(BLOCK_ROWS);
    let units = split_morsels(plan, piece);
    let agg = query.aggregation();
    let resolved = ResolvedQuery::new(source, plan.residual(query), agg);
    let next_unit = AtomicUsize::new(0);
    let mut acc = AggAccumulator::new(agg);
    let mut counters = ScanCounters::default();

    std::thread::scope(|scope| {
        // Never spawn more workers than there are units to claim.
        let workers: Vec<_> = (0..threads.min(units.len()))
            .map(|_| {
                let units = &units;
                let next_unit = &next_unit;
                let resolved = &resolved;
                scope.spawn(move || {
                    let mut acc = AggAccumulator::new(agg);
                    let mut counters = ScanCounters::default();
                    let mut scratch = BlockScratch::new();
                    let mut density = Density::default();
                    loop {
                        let i = next_unit.fetch_add(1, Ordering::Relaxed);
                        let Some((range, exact, count_range)) = units.get(i).cloned() else {
                            break;
                        };
                        resolved.scan_range(
                            range,
                            exact,
                            count_range,
                            tier,
                            &mut density,
                            &mut acc,
                            &mut counters,
                            &mut scratch,
                        );
                    }
                    (acc, counters)
                })
            })
            .collect();
        for worker in workers {
            let (worker_acc, worker_counters) = worker.join().expect("scan worker panicked");
            acc.merge(&worker_acc);
            counters.merge(&worker_counters);
        }
    });
    apply_partials(plan, &mut acc, &mut counters);
    (acc.finish(), counters)
}

/// The block representation the adaptive tier settles on for one block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockRepr {
    Scalar,
    Vector,
    Bitmap,
}

/// Running selectivity estimate for the adaptive tier: cumulative filtered
/// points and matches observed so far in one execution (per worker thread in
/// the parallel executor). Only steers the per-block representation choice —
/// results and counters never depend on it.
#[derive(Debug, Clone, Copy, Default)]
struct Density {
    points: usize,
    matched: usize,
}

impl Density {
    /// Picks the cheapest representation for the next block from the
    /// selectivity observed so far:
    ///
    /// * under 1/16 matched — the scalar loop: its almost-never-taken branch
    ///   predicts perfectly and skips all selection-materialization work, so
    ///   sparse scans never pay branchless overhead;
    /// * at least 1/2 matched (3/4 with multiple predicates, whose bitmap
    ///   refinement re-touches whole blocks) — the bitmap: mask words +
    ///   popcount/masked folds amortize best on dense selections;
    /// * in between — the branchless selection vector: mid selectivities are
    ///   exactly where the scalar loop's branch mispredicts.
    ///
    /// The first block (no observations yet) is the **scalar probe**: on
    /// sparse scans the scalar loop is already optimal *and* never touches
    /// the selection buffers (a vector probe unconditionally stores a full
    /// block of indexes — on a near-empty scan that cold-buffer traffic was
    /// the whole cost, which is how adaptive lost to scalar on sparse SUMs
    /// in `BENCH_scan.json`), while on dense scans one scalar block is
    /// amortized away by every later block choosing from real observations.
    fn choose(&self, num_preds: usize) -> BlockRepr {
        if self.points == 0 {
            return BlockRepr::Scalar;
        }
        if self.matched * 16 < self.points {
            BlockRepr::Scalar
        } else if (num_preds == 1 && self.matched * 2 >= self.points)
            || (num_preds > 1 && self.matched * 4 >= self.points * 3)
        {
            BlockRepr::Bitmap
        } else {
            BlockRepr::Vector
        }
    }

    fn observe(&mut self, points: usize, matched: usize) {
        self.points += points;
        self.matched += matched;
    }
}

/// A query resolved against one source: predicate and aggregation columns
/// looked up once, so scanning many ranges (or many split pieces, in the
/// parallel executor) pays no per-range column resolution or allocation.
struct ResolvedQuery<'a> {
    /// `(column, predicate)` pairs for the residual predicates.
    preds: Vec<(ColumnData<'a>, Predicate)>,
    agg: Aggregation,
    agg_col: Option<ColumnData<'a>>,
    num_rows: usize,
    /// The source's deletion bitmap, captured only when it actually holds
    /// tombstones, so delete-free tables keep the zero-cost fast paths.
    live: Option<&'a TombstoneSet>,
    /// Whether every resolved column is one plain contiguous slice — the
    /// common case, which keeps the original tight slice kernels with zero
    /// per-block representation dispatch.
    all_plain: bool,
}

impl<'a> ResolvedQuery<'a> {
    fn new(source: &'a dyn ScanSource, residual: &[Predicate], agg: Aggregation) -> Self {
        let preds: Vec<(ColumnData<'a>, Predicate)> = residual
            .iter()
            .map(|&p| (source.column_data(p.dim), p))
            .collect();
        let agg_col = agg.input_dim().map(|d| source.column_data(d));
        let all_plain = preds.iter().all(|(c, _)| c.is_plain())
            && agg_col.as_ref().is_none_or(|c| c.is_plain());
        Self {
            preds,
            agg,
            agg_col,
            num_rows: source.num_rows(),
            live: source.tombstones().filter(|t| t.any()),
            all_plain,
        }
    }

    /// Whether any resolved column stores the rows at `row`'s block encoded.
    #[inline(always)]
    fn chunk_encoded(&self, row: usize) -> bool {
        self.preds.iter().any(|(c, _)| c.block_at(row).is_some())
            || self
                .agg_col
                .as_ref()
                .is_some_and(|c| c.block_at(row).is_some())
    }

    /// Whether physical row `row` survives the deletion bitmap.
    #[inline(always)]
    fn alive(&self, row: usize) -> bool {
        match self.live {
            Some(t) => !t.is_deleted(row),
            None => true,
        }
    }

    /// Scans one contiguous in-bounds range into an accumulator, blockwise
    /// with the requested kernel tier.
    ///
    /// `count_range` controls whether this call increments the range counter
    /// (the parallel executor passes `false` for continuation pieces of a
    /// split range). The caller provides the reusable [`BlockScratch`] and
    /// the adaptive-density state.
    #[allow(clippy::too_many_arguments)]
    fn scan_range(
        &self,
        range: Range<usize>,
        exact: bool,
        count_range: bool,
        tier: KernelTier,
        density: &mut Density,
        acc: &mut AggAccumulator,
        counters: &mut ScanCounters,
        scratch: &mut BlockScratch,
    ) {
        debug_assert!(range.end <= self.num_rows, "plans are clamped at entry");
        if range.is_empty() {
            return;
        }
        if count_range {
            counters.ranges += 1;
        }
        counters.points += range.len();

        // An exact range — or a query with no predicates left to check —
        // matches every row: aggregate the whole range without building a
        // selection. Tombstones still apply: with deletes present the range
        // is folded through liveness words instead of the raw-slice path.
        if exact || self.preds.is_empty() {
            match self.live {
                None => {
                    counters.matched += range.len();
                    self.aggregate_dense_range(range, acc);
                }
                Some(t) => {
                    counters.matched += self.aggregate_dense_live(t, range, acc, scratch);
                }
            }
            return;
        }

        // Blocks are aligned to the absolute BLOCK_ROWS grid (not to the
        // range start), so a chunk always falls inside one encoded block.
        // Selection semantics are per-row, so alignment never changes
        // results or counters — only which rows share a block.
        let mut start = range.start;
        while start < range.end {
            let end = grid_block_end(start, range.end);
            let encoded = !self.all_plain && self.chunk_encoded(start);
            let matched = match tier {
                KernelTier::Scalar if encoded => {
                    self.scan_chunk_scalar_encoded(start, end, acc, scratch)
                }
                KernelTier::Scalar => self.scan_block_scalar(start, end, acc, scratch),
                // The branchless tiers share one packed path on encoded
                // chunks: with SWAR compares there is no vector/bitmap
                // representation split to choose between.
                _ if encoded => self.scan_chunk_packed(start, end, acc, scratch),
                KernelTier::Vector => self.scan_block_vector(start, end, acc, scratch),
                KernelTier::Bitmap => self.scan_block_bitmap(start, end, acc, scratch),
                KernelTier::Adaptive => match density.choose(self.preds.len()) {
                    BlockRepr::Scalar => self.scan_block_scalar(start, end, acc, scratch),
                    BlockRepr::Vector => self.scan_block_vector(start, end, acc, scratch),
                    BlockRepr::Bitmap => self.scan_block_bitmap(start, end, acc, scratch),
                },
            };
            density.observe(end - start, matched);
            counters.matched += matched;
            start = end;
        }
    }

    /// The aggregation input restricted to grid chunk `start..end` (which
    /// never straddles an encoded block): a plain slice when the rows are
    /// plain — including an encoded block with a `Plain` payload, so the
    /// tight slice kernels keep running — or a fetch view into the packed
    /// payload.
    #[inline(always)]
    fn agg_view(&self, start: usize, end: usize) -> AggView<'a> {
        let Some(col) = self.agg_col else {
            return AggView::None;
        };
        match col.block_at(start) {
            None => AggView::Slice(col.slice(start, end)),
            Some(eb) => {
                let offset = start % BLOCK_ROWS;
                match eb.data() {
                    BlockData::Plain(vals) => AggView::Slice(&vals[offset..offset + (end - start)]),
                    _ => AggView::Block { eb, offset },
                }
            }
        }
    }

    /// Aggregates every row of a dense (exact, tombstone-free) range.
    fn aggregate_dense_range(&self, range: Range<usize>, acc: &mut AggAccumulator) {
        let Some(col) = self.agg_col else {
            return aggregate_dense_view(self.agg, &AggView::None, range.len(), acc);
        };
        if col.is_plain() {
            let view = AggView::Slice(col.slice(range.start, range.end));
            return aggregate_dense_view(self.agg, &view, range.len(), acc);
        }
        let mut start = range.start;
        while start < range.end {
            let end = grid_block_end(start, range.end);
            aggregate_dense_view(self.agg, &self.agg_view(start, end), end - start, acc);
            start = end;
        }
    }

    /// Aggregates a dense (exact) range under tombstones: liveness words are
    /// materialized blockwise and fed to the mask-native aggregation
    /// kernels. Returns the number of live rows aggregated.
    fn aggregate_dense_live(
        &self,
        t: &TombstoneSet,
        range: Range<usize>,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let mut matched = 0usize;
        let mut start = range.start;
        while start < range.end {
            let end = grid_block_end(start, range.end);
            let len = end - start;
            let nw = len.div_ceil(kernels::WORD_BITS);
            let words = &mut scratch.words[..nw];
            for (w, word) in words.iter_mut().enumerate() {
                *word = t.live_word(start + w * kernels::WORD_BITS);
            }
            // Rows past the block tail read as live; trim them off.
            let tail = len % kernels::WORD_BITS;
            if tail != 0 {
                words[nw - 1] &= (1u64 << tail) - 1;
            }
            matched += aggregate_mask(self.agg, &self.agg_view(start, end), words, acc);
            start = end;
        }
        matched
    }

    /// Reference branchy selection loop (the oracle tier) over plain rows.
    fn scan_block_scalar(
        &self,
        start: usize,
        end: usize,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let sel = &mut scratch.sel;
        let (col0, p0) = &self.preds[0];
        let mut n = 0usize;
        for (i, &v) in col0.slice(start, end).iter().enumerate() {
            if p0.matches(v) && self.alive(start + i) {
                sel[n] = i as u32;
                n += 1;
            }
        }
        for (col, p) in &self.preds[1..] {
            if n == 0 {
                break;
            }
            let block = col.slice(start, end);
            let mut out = 0usize;
            for k in 0..n {
                let i = sel[k];
                if p.matches(block[i as usize]) {
                    sel[out] = i;
                    out += 1;
                }
            }
            n = out;
        }
        let view = self.agg_view(start, end);
        aggregate_selected(self.agg, &view, &scratch.sel[..n], acc);
        n
    }

    /// The oracle tier on a chunk with encoded columns: the same branchy
    /// row-at-a-time loop, reading rows through [`ColumnData::value_at`].
    /// Deliberately uses **no** block metadata — no skip, no all-match — so
    /// the differential suites catch any unsound pruning in the packed path.
    fn scan_chunk_scalar_encoded(
        &self,
        start: usize,
        end: usize,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let sel = &mut scratch.sel;
        let (col0, p0) = &self.preds[0];
        let mut n = 0usize;
        for i in 0..end - start {
            let row = start + i;
            if p0.matches(col0.value_at(row)) && self.alive(row) {
                sel[n] = i as u32;
                n += 1;
            }
        }
        for (col, p) in &self.preds[1..] {
            if n == 0 {
                break;
            }
            let mut out = 0usize;
            for k in 0..n {
                let i = sel[k];
                if p.matches(col.value_at(start + i as usize)) {
                    sel[out] = i;
                    out += 1;
                }
            }
            n = out;
        }
        let view = self.agg_view(start, end);
        aggregate_selected(self.agg, &view, &scratch.sel[..n], acc);
        n
    }

    /// Branchless selection-vector kernels over plain rows.
    fn scan_block_vector(
        &self,
        start: usize,
        end: usize,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let sel = &mut scratch.sel;
        let (col0, p0) = &self.preds[0];
        let mut n = kernels::select_first(col0.slice(start, end), *p0, sel);
        for (col, p) in &self.preds[1..] {
            if n == 0 {
                break;
            }
            n = kernels::select_refine(col.slice(start, end), *p, sel, n);
        }
        // Liveness refine: same branchless compaction as select_refine, with
        // the tombstone bit standing in for the predicate.
        if let Some(t) = self.live {
            let mut out = 0usize;
            for k in 0..n {
                let i = sel[k];
                sel[out] = i;
                out += !t.is_deleted(start + i as usize) as usize;
            }
            n = out;
        }
        let view = self.agg_view(start, end);
        aggregate_selected(self.agg, &view, &scratch.sel[..n], acc);
        n
    }

    /// Branchless word-packed selection-bitmap kernels over plain rows, with
    /// mask-native aggregation.
    fn scan_block_bitmap(
        &self,
        start: usize,
        end: usize,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let len = end - start;
        let nw = len.div_ceil(kernels::WORD_BITS);
        let words = &mut scratch.words[..nw];
        let (col0, p0) = &self.preds[0];
        let mut any = kernels::mask_first(col0.slice(start, end), *p0, words);
        // The bitmap tier speaks masks natively: liveness is one AND per
        // word, applied early so refinement can short-circuit on it too.
        if let Some(t) = self.live {
            if any != 0 {
                any = 0;
                for (w, word) in words.iter_mut().enumerate() {
                    *word &= t.live_word(start + w * kernels::WORD_BITS);
                    any |= *word;
                }
            }
        }
        for (col, p) in &self.preds[1..] {
            if any == 0 {
                break;
            }
            any = kernels::mask_refine(col.slice(start, end), *p, words);
        }
        if any == 0 {
            return 0;
        }
        let view = self.agg_view(start, end);
        aggregate_mask(self.agg, &view, &scratch.words[..nw], acc)
    }

    /// The packed path every branchless tier takes on a chunk with encoded
    /// columns. Per predicate, the block's metadata classifies the test
    /// ([`EncodedBlock::classify`]): a `Skip` ends the chunk before touching
    /// any payload (skip-before-decode); an `AllLive` drops the predicate
    /// (every live row passes, and dead rows are masked by liveness below);
    /// otherwise the predicate is evaluated as a SWAR code-range compare
    /// directly on the packed words ([`kernels::packed_mask`]) or, for plain
    /// payloads and plain columns, with the ordinary mask kernels. Liveness
    /// is ANDed in last, exactly as the plain bitmap tier does.
    fn scan_chunk_packed(
        &self,
        start: usize,
        end: usize,
        acc: &mut AggAccumulator,
        scratch: &mut BlockScratch,
    ) -> usize {
        let len = end - start;
        let nw = len.div_ceil(kernels::WORD_BITS);
        let offset = start % BLOCK_ROWS;

        // Single packed predicate on a delete-free source: COUNT needs no
        // bitmap at all, and SUM/AVG whose aggregation block shares the
        // predicate's field layout reduces straight off the packed words.
        if self.preds.len() == 1 && self.live.is_none() {
            let (col, p) = &self.preds[0];
            if let Some(eb) = col.block_at(start) {
                match eb.classify(p.lo, p.hi) {
                    BlockTest::Skip => return 0,
                    BlockTest::AllLive => {
                        self.aggregate_dense_range(start..end, acc);
                        return len;
                    }
                    BlockTest::Packed { lo, hi } => {
                        let (packed, class) = packed_payload(eb);
                        match (self.agg, self.agg_view(start, end)) {
                            (_, AggView::None) | (Aggregation::Count, _) => {
                                let n = kernels::packed_count(packed, class, offset, len, lo, hi);
                                acc.add_bulk(n as u64, 0);
                                return n;
                            }
                            (
                                Aggregation::Sum(_) | Aggregation::Avg(_),
                                AggView::Block { eb: agg_eb, .. },
                            ) => {
                                if let BlockData::For {
                                    class: agg_class,
                                    packed: agg_packed,
                                } = agg_eb.data()
                                {
                                    if *agg_class == class {
                                        let (n, code_sum) = kernels::packed_sum_same_layout(
                                            packed, agg_packed, class, offset, len, lo, hi,
                                        );
                                        let reference = agg_eb.bounds().0 as u128;
                                        acc.add_bulk(n, code_sum + n as u128 * reference);
                                        return n as usize;
                                    }
                                }
                            }
                            _ => {}
                        }
                        // No aggregation fast path: materialize the bitmap.
                        let any = kernels::packed_mask(
                            packed,
                            class,
                            offset,
                            len,
                            lo,
                            hi,
                            kernels::MaskMode::Set,
                            &mut scratch.words[..nw],
                        );
                        if any == 0 {
                            return 0;
                        }
                        let view = self.agg_view(start, end);
                        return aggregate_mask(self.agg, &view, &scratch.words[..nw], acc);
                    }
                    BlockTest::Plain => {} // fall through to the general path
                }
            }
        }

        // General path: fold every predicate into one selection bitmap.
        let mut first = true;
        let mut any = 0u64;
        for (col, p) in &self.preds {
            let mode = if first {
                kernels::MaskMode::Set
            } else {
                kernels::MaskMode::And
            };
            match col.block_at(start) {
                Some(eb) => match eb.classify(p.lo, p.hi) {
                    BlockTest::Skip => return 0,
                    BlockTest::AllLive => continue,
                    BlockTest::Packed { lo, hi } => {
                        let (packed, class) = packed_payload(eb);
                        any = kernels::packed_mask(
                            packed,
                            class,
                            offset,
                            len,
                            lo,
                            hi,
                            mode,
                            &mut scratch.words[..nw],
                        );
                        first = false;
                    }
                    BlockTest::Plain => {
                        let BlockData::Plain(vals) = eb.data() else {
                            unreachable!("Plain classification implies plain payload");
                        };
                        let block = &vals[offset..offset + len];
                        let words = &mut scratch.words[..nw];
                        any = match mode {
                            kernels::MaskMode::Set => kernels::mask_first(block, *p, words),
                            kernels::MaskMode::And => kernels::mask_refine(block, *p, words),
                        };
                        first = false;
                    }
                },
                None => {
                    let block = col.slice(start, end);
                    let words = &mut scratch.words[..nw];
                    any = match mode {
                        kernels::MaskMode::Set => kernels::mask_first(block, *p, words),
                        kernels::MaskMode::And => kernels::mask_refine(block, *p, words),
                    };
                    first = false;
                }
            }
            if !first && any == 0 {
                return 0;
            }
        }

        // Every predicate was AllLive: the chunk is dense up to liveness.
        if first {
            return match self.live {
                None => {
                    self.aggregate_dense_range(start..end, acc);
                    len
                }
                Some(t) => self.aggregate_dense_live(t, start..end, acc, scratch),
            };
        }

        if let Some(t) = self.live {
            any = 0;
            let words = &mut scratch.words[..nw];
            for (w, word) in words.iter_mut().enumerate() {
                *word &= t.live_word(start + w * kernels::WORD_BITS);
                any |= *word;
            }
        }
        if any == 0 {
            return 0;
        }
        let view = self.agg_view(start, end);
        aggregate_mask(self.agg, &view, &scratch.words[..nw], acc)
    }
}

/// The packed words and class of a FOR or Dict payload.
#[inline(always)]
fn packed_payload(eb: &EncodedBlock) -> (&[u64], PackClass) {
    match eb.data() {
        BlockData::For { class, packed } => (packed, *class),
        BlockData::Dict { class, packed, .. } => (packed, *class),
        BlockData::Plain(_) => unreachable!("packed payload requested for plain block"),
    }
}

/// Scans one contiguous range into an accumulator with the default kernels.
///
/// One-shot form of the kernel shared by both executors, used by
/// `ColumnStore::scan_range` for direct single-range scans. Unlike the plan
/// executors (which clamp once at entry), this clamps the given range itself.
/// Callers scanning many ranges of one query should go through
/// [`execute_plan`], which resolves the query's columns once.
#[allow(clippy::too_many_arguments)]
pub fn scan_range_into(
    source: &dyn ScanSource,
    residual: &[Predicate],
    range: Range<usize>,
    exact: bool,
    count_range: bool,
    acc: &mut AggAccumulator,
    counters: &mut ScanCounters,
    scratch: &mut BlockScratch,
) {
    let range = range.start.min(source.num_rows())..range.end.min(source.num_rows());
    ResolvedQuery::new(source, residual, acc.aggregation()).scan_range(
        range,
        exact,
        count_range,
        KernelTier::default(),
        &mut Density::default(),
        acc,
        counters,
        scratch,
    );
}

/// The aggregation input for one grid chunk, with **chunk-local** row
/// indexing (index `i` = physical row `chunk_start + i`): a plain slice, a
/// window into an encoded block's packed payload, or nothing (`COUNT`, or
/// no input column).
#[derive(Clone, Copy)]
enum AggView<'a> {
    None,
    Slice(&'a [Value]),
    Block { eb: &'a EncodedBlock, offset: usize },
}

impl AggView<'_> {
    /// Chunk-local row `i`'s aggregation input value. Only called on
    /// [`AggView::Slice`] / [`AggView::Block`].
    #[inline(always)]
    fn fetch(&self, i: usize) -> Value {
        match self {
            AggView::Slice(s) => s[i],
            AggView::Block { eb, offset } => eb.value_at(offset + i),
            AggView::None => unreachable!("no aggregation input to fetch"),
        }
    }
}

/// Mask-native aggregation of one chunk's selection bitmap, shared by the
/// bitmap tier, the packed path, and the tombstone-aware dense path.
/// Returns the number of selected rows.
fn aggregate_mask(
    agg: Aggregation,
    col: &AggView,
    words: &[u64],
    acc: &mut AggAccumulator,
) -> usize {
    match (agg, col) {
        (Aggregation::Count, _) | (_, AggView::None) => {
            let n = kernels::mask_count(words);
            acc.add_bulk(n as u64, 0);
            n
        }
        (Aggregation::Sum(_) | Aggregation::Avg(_), AggView::Slice(s)) => {
            let (n, sum) = kernels::mask_sum(s, words);
            acc.add_bulk(n, sum);
            n as usize
        }
        (Aggregation::Min(_), AggView::Slice(s)) => {
            let (n, lo) = kernels::mask_min(s, words);
            acc.add_block(n, 0, lo, None);
            n as usize
        }
        (Aggregation::Max(_), AggView::Slice(s)) => {
            let (n, hi) = kernels::mask_max(s, words);
            acc.add_block(n, 0, None, hi);
            n as usize
        }
        (Aggregation::Sum(_) | Aggregation::Avg(_), AggView::Block { eb, offset }) => {
            // FOR-packed aggregation block with word-aligned bitmap groups:
            // sum the packed codes straight off the selection bitmap.
            if let BlockData::For { class, packed } = eb.data() {
                if offset & (class.per_word() - 1) == 0 {
                    let (n, code_sum) = kernels::mask_sum_packed(words, packed, *class, *offset);
                    let reference = eb.bounds().0 as u128;
                    acc.add_bulk(n, code_sum + n as u128 * reference);
                    return n as usize;
                }
            }
            let (n, sum) = kernels::mask_sum_fetch(words, |i| col.fetch(i));
            acc.add_bulk(n, sum);
            n as usize
        }
        (Aggregation::Min(_), _) => {
            let (n, lo) =
                kernels::mask_extreme_fetch(words, Value::MAX, Value::min, |i| col.fetch(i));
            acc.add_block(n, 0, lo, None);
            n as usize
        }
        (Aggregation::Max(_), _) => {
            let (n, hi) =
                kernels::mask_extreme_fetch(words, Value::MIN, Value::max, |i| col.fetch(i));
            acc.add_block(n, 0, None, hi);
            n as usize
        }
    }
}

/// Aggregates every row of one dense chunk (exact-range fast path).
fn aggregate_dense_view(agg: Aggregation, col: &AggView, len: usize, acc: &mut AggAccumulator) {
    let n = len as u64;
    match (agg, col) {
        (Aggregation::Count, _) | (_, AggView::None) => acc.add_bulk(n, 0),
        (Aggregation::Sum(_) | Aggregation::Avg(_), AggView::Slice(s)) => {
            let sum: u128 = s[..len].iter().map(|&v| v as u128).sum();
            acc.add_bulk(n, sum);
        }
        // MIN/MAX cannot use the bulk-sum shortcut: even an exact range needs
        // its values inspected. Fold the slice tightly instead.
        (Aggregation::Min(_), AggView::Slice(s)) => {
            acc.add_block(n, 0, s[..len].iter().copied().min(), None);
        }
        (Aggregation::Max(_), AggView::Slice(s)) => {
            acc.add_block(n, 0, None, s[..len].iter().copied().max());
        }
        (Aggregation::Sum(_) | Aggregation::Avg(_), AggView::Block { eb, offset }) => {
            // A FOR block sums without decoding: every field matches the
            // trivial `code >= 0` test, so the masked-sum kernel degenerates
            // to a straight lane-wise fold of the packed payloads.
            if let BlockData::For { class, packed } = eb.data() {
                let (rows, code_sum) =
                    kernels::packed_sum_same_layout(packed, packed, *class, *offset, len, 0, None);
                debug_assert_eq!(rows, n);
                acc.add_bulk(n, code_sum + n as u128 * eb.bounds().0 as u128);
                return;
            }
            let sum: u128 = (0..len).map(|i| col.fetch(i) as u128).sum();
            acc.add_bulk(n, sum);
        }
        (Aggregation::Min(_), _) => {
            acc.add_block(n, 0, (0..len).map(|i| col.fetch(i)).min(), None);
        }
        (Aggregation::Max(_), _) => {
            acc.add_block(n, 0, None, (0..len).map(|i| col.fetch(i)).max());
        }
    }
}

/// Aggregates the selected rows of one chunk (`sel` holds chunk-local
/// indices).
fn aggregate_selected(agg: Aggregation, col: &AggView, sel: &[u32], acc: &mut AggAccumulator) {
    if sel.is_empty() {
        return;
    }
    let n = sel.len() as u64;
    match (agg, col) {
        (Aggregation::Count, _) | (_, AggView::None) => acc.add_bulk(n, 0),
        (Aggregation::Sum(_) | Aggregation::Avg(_), _) => {
            let sum: u128 = sel.iter().map(|&i| col.fetch(i as usize) as u128).sum();
            acc.add_bulk(n, sum);
        }
        (Aggregation::Min(_), _) => {
            let lo = sel.iter().map(|&i| col.fetch(i as usize)).min();
            acc.add_block(n, 0, lo, None);
        }
        (Aggregation::Max(_), _) => {
            let hi = sel.iter().map(|&i| col.fetch(i as usize)).max();
            acc.add_block(n, 0, None, hi);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Predicate, Query};

    fn source() -> Dataset {
        // dim0: 0..1000, dim1: reversed, dim2: i*3 % 101.
        Dataset::from_columns(vec![
            (0..1000u64).collect(),
            (0..1000u64).rev().collect(),
            (0..1000u64).map(|v| v * 3 % 101).collect(),
        ])
        .unwrap()
    }

    fn count(preds: Vec<Predicate>) -> Query {
        Query::count(preds).unwrap()
    }

    #[test]
    fn plan_push_merges_adjacent_equal_exactness() {
        let mut plan = ScanPlan::new();
        plan.push(0..10, false);
        plan.push(10..20, false);
        plan.push(20..30, true);
        plan.push(30..40, true);
        plan.push(50..60, true);
        plan.push(60..60, true); // dropped: empty
        assert_eq!(plan.num_ranges(), 3);
        assert_eq!(plan.ranges()[0].range, 0..20);
        assert!(!plan.ranges()[0].exact);
        assert_eq!(plan.ranges()[1].range, 20..40);
        assert!(plan.ranges()[1].exact);
        assert_eq!(plan.ranges()[2].range, 50..60);
        assert_eq!(plan.total_points(), 50);
    }

    #[test]
    fn clamped_borrows_in_bounds_plans_and_trims_others() {
        let plan = ScanPlan::from_ranges([(0..10, false), (20..30, true)]);
        assert!(matches!(plan.clamped(30), Cow::Borrowed(_)));

        let plan = ScanPlan::from_ranges([(0..10, false), (20..50, true), (60..70, false)]);
        let clamped = plan.clamped(25);
        assert!(matches!(clamped, Cow::Owned(_)));
        assert_eq!(clamped.num_ranges(), 2);
        assert_eq!(clamped.ranges()[1].range, 20..25);
        assert!(clamped.ranges()[1].exact);
        assert_eq!(clamped.total_points(), 15);
    }

    #[test]
    fn executor_matches_oracle_on_full_scan() {
        let ds = source();
        let q = count(vec![Predicate::range(0, 100, 499).unwrap()]);
        let (res, counters) = execute_plan(&ds, &q, &ScanPlan::full(ds.len()));
        assert_eq!(res, q.execute_full_scan(&ds));
        assert_eq!(counters.ranges, 1);
        assert_eq!(counters.points, 1000);
        assert_eq!(counters.matched, 400);
    }

    #[test]
    fn executor_handles_multi_predicate_blocks() {
        let ds = source();
        let q = count(vec![
            Predicate::range(0, 0, 899).unwrap(),
            Predicate::range(1, 200, 999).unwrap(),
            Predicate::range(2, 0, 50).unwrap(),
        ]);
        let (res, _) = execute_plan(&ds, &q, &ScanPlan::full(ds.len()));
        assert_eq!(res, q.execute_full_scan(&ds));
    }

    #[test]
    fn every_tier_is_bit_identical_including_counters() {
        let ds = source();
        let plan = ScanPlan::from_ranges([(0..300, false), (450..700, false), (800..1000, true)]);
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ] {
            let q = Query::new(
                vec![
                    Predicate::range(0, 50, 650).unwrap(),
                    Predicate::range(2, 5, 95).unwrap(),
                ],
                agg,
            )
            .unwrap();
            let (expected, expected_counters) =
                execute_plan_tiered(&ds, &q, &plan, KernelTier::Scalar);
            for tier in KernelTier::ALL {
                let (res, counters) = execute_plan_tiered(&ds, &q, &plan, tier);
                assert_eq!(res, expected, "{agg:?} via {tier:?}");
                assert_eq!(counters, expected_counters, "{agg:?} counters via {tier:?}");
            }
        }
    }

    #[test]
    fn bitmap_tier_handles_all_aggregations_on_dense_selections() {
        // ~99% dense selection: the bitmap's fully-set-word fast paths run.
        let ds = source();
        let preds = vec![Predicate::range(0, 5, 994).unwrap()];
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ] {
            let q = Query::new(preds.clone(), agg).unwrap();
            let (res, _) =
                execute_plan_tiered(&ds, &q, &ScanPlan::full(ds.len()), KernelTier::Bitmap);
            assert_eq!(res, q.execute_full_scan(&ds), "{agg:?}");
        }
    }

    #[test]
    fn adaptive_tier_switches_to_bitmap_on_observed_density() {
        // First block seeds the estimate on the vector path; subsequent
        // blocks of this ~90%-dense scan take the bitmap path and must stay
        // correct. (Representation choice is unobservable except through
        // timing, so this asserts end-to-end equality on a multi-block scan.)
        let n = 8 * BLOCK_ROWS as u64;
        let ds = Dataset::from_columns(vec![(0..n).map(|v| v % 10).collect()]).unwrap();
        let q = count(vec![Predicate::range(0, 1, 9).unwrap()]);
        let expected = q.execute_full_scan(&ds);
        let (res, counters) =
            execute_plan_tiered(&ds, &q, &ScanPlan::full(ds.len()), KernelTier::Adaptive);
        assert_eq!(res, expected);
        assert_eq!(Some(counters.matched as u64), expected.as_count());
    }

    #[test]
    fn exact_ranges_skip_residual_checks() {
        let ds = source();
        // The filter matches only 0..10 but the plan claims 0..20 is exact:
        // the executor must trust the plan and count all 20.
        let q = count(vec![Predicate::range(0, 0, 9).unwrap()]);
        let (res, counters) = execute_plan(&ds, &q, &ScanPlan::from_ranges([(0..20, true)]));
        assert_eq!(res, AggResult::Count(20));
        assert_eq!(counters.matched, 20);
    }

    #[test]
    fn exact_min_max_uses_value_fold() {
        let ds = source();
        let q = Query::new(vec![], Aggregation::Min(1)).unwrap();
        let (res, _) = execute_plan(&ds, &q, &ScanPlan::from_ranges([(5..10, true)]));
        assert_eq!(res, AggResult::Min(Some(990)));
        let q = Query::new(vec![], Aggregation::Max(1)).unwrap();
        let (res, _) = execute_plan(&ds, &q, &ScanPlan::from_ranges([(5..10, true)]));
        assert_eq!(res, AggResult::Max(Some(994)));
    }

    #[test]
    fn residual_predicates_replace_query_predicates() {
        let ds = source();
        // Query filters dim0 and dim2, but the plan declares only dim2 as
        // residual (claiming dim0 is guaranteed by construction).
        let q = count(vec![
            Predicate::range(0, 500, 509).unwrap(),
            Predicate::range(2, 0, 100).unwrap(),
        ]);
        let plan = ScanPlan::from_ranges([(500..510, false)])
            .with_residual(vec![Predicate::range(2, 0, 100).unwrap()]);
        let (res, _) = execute_plan(&ds, &q, &plan);
        // dim2 predicate matches everything (domain is 0..=100): all 10 rows.
        assert_eq!(res, AggResult::Count(10));
    }

    #[test]
    fn out_of_bounds_ranges_are_clamped() {
        let ds = source();
        let q = count(vec![]);
        let (res, counters) = execute_plan(&ds, &q, &ScanPlan::from_ranges([(990..5000, false)]));
        assert_eq!(res, AggResult::Count(10));
        assert_eq!(counters.points, 10);
        let (res, counters) = execute_plan(&ds, &q, &ScanPlan::from_ranges([(5000..6000, false)]));
        assert_eq!(res, AggResult::Count(0));
        assert_eq!(counters.ranges, 0);
    }

    #[test]
    fn all_aggregations_match_oracle_over_fragmented_plans() {
        let ds = source();
        let preds = vec![Predicate::range(2, 10, 60).unwrap()];
        let plan = ScanPlan::from_ranges([(0..300, false), (300..700, false), (800..1000, false)]);
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ] {
            let q = Query::new(preds.clone(), agg).unwrap();
            // The oracle over the same rows: 0..700 and 800..1000.
            let rows: Vec<usize> = (0..700).chain(800..1000).collect();
            let expected = q.execute_full_scan(&ds.select_rows(&rows));
            let (res, _) = execute_plan(&ds, &q, &plan);
            assert_eq!(res, expected, "{agg:?}");
        }
    }

    #[test]
    fn parallel_executor_matches_serial_results_and_counters() {
        // Big enough to clear the parallel threshold, with a mix of exact and
        // non-exact fragments.
        let n = 40_000u64;
        let ds = Dataset::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|v| v * 7 % 1_000).collect(),
        ])
        .unwrap();
        let plan = ScanPlan::from_ranges([
            (0..15_000, false),
            (15_000..16_000, true),
            (20_000..40_000, false),
        ]);
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ] {
            let q = Query::new(vec![Predicate::range(1, 100, 800).unwrap()], agg).unwrap();
            let (serial, serial_counters) = execute_plan(&ds, &q, &plan);
            for threads in [2, 3, 8] {
                for tier in KernelTier::ALL {
                    let (parallel, parallel_counters) =
                        execute_plan_parallel_tiered(&ds, &q, &plan, threads, tier);
                    assert_eq!(parallel, serial, "{agg:?} with {threads} threads {tier:?}");
                    assert_eq!(
                        parallel_counters, serial_counters,
                        "{agg:?} counters with {threads} threads {tier:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn spawn_baseline_matches_serial_results_and_counters() {
        let n = 20_000u64;
        let ds = Dataset::from_columns(vec![(0..n).collect(), (0..n).map(|v| v % 777).collect()])
            .unwrap();
        let q = Query::new(
            vec![Predicate::range(1, 50, 600).unwrap()],
            Aggregation::Sum(0),
        )
        .unwrap();
        let plan = ScanPlan::from_ranges([(0..9_000, false), (9_500..20_000, false)]);
        let (serial, sc) = execute_plan(&ds, &q, &plan);
        let (spawned, pc) = execute_plan_spawn_tiered(&ds, &q, &plan, 4, KernelTier::default());
        assert_eq!(serial, spawned);
        assert_eq!(sc, pc);
    }

    #[test]
    fn pooled_executor_matches_serial_across_morsel_sizes() {
        // Morsel sizes deliberately straddling BLOCK_ROWS boundaries: pieces
        // that start mid-block re-align blockwise inside scan_range, so
        // selection (and thus results and counters) must not change.
        let n = 30_000u64;
        let ds = Dataset::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|v| v * 13 % 509).collect(),
        ])
        .unwrap();
        let plan = ScanPlan::from_ranges([
            (0..11_111, false),
            (11_111..12_000, true),
            (13_001..30_000, false),
        ]);
        let q = Query::new(
            vec![Predicate::range(1, 40, 333).unwrap()],
            Aggregation::Avg(0),
        )
        .unwrap();
        let (serial, sc) = execute_plan(&ds, &q, &plan);
        let pool = WorkStealingPool::new(2);
        for morsel in [BLOCK_ROWS, BLOCK_ROWS + 1, 1_500, 3 * BLOCK_ROWS + 17] {
            for threads in [2, 5] {
                let (pooled, pc) = execute_plan_pooled_tiered(
                    &ds,
                    &q,
                    &plan,
                    &pool,
                    threads,
                    morsel,
                    KernelTier::default(),
                );
                assert_eq!(serial, pooled, "morsel={morsel} threads={threads}");
                assert_eq!(sc, pc, "counters morsel={morsel} threads={threads}");
            }
        }
    }

    #[test]
    fn parallel_executor_degrades_to_serial_for_tiny_plans() {
        let ds = source();
        let q = count(vec![Predicate::range(0, 0, 99).unwrap()]);
        let plan = ScanPlan::full(ds.len());
        let (serial, sc) = execute_plan(&ds, &q, &plan);
        let (parallel, pc) = execute_plan_parallel(&ds, &q, &plan, 8);
        assert_eq!(serial, parallel);
        assert_eq!(sc, pc);
    }

    #[test]
    fn empty_plan_yields_empty_aggregates() {
        let ds = source();
        let q = Query::new(vec![], Aggregation::Min(0)).unwrap();
        let (res, counters) = execute_plan(&ds, &q, &ScanPlan::new());
        assert_eq!(res, AggResult::Min(None));
        assert_eq!(counters, ScanCounters::default());
    }

    /// A dataset with a deletion bitmap bolted on, for exercising the
    /// executor's liveness paths without the store crate.
    struct TombSource {
        ds: Dataset,
        t: TombstoneSet,
    }

    impl ScanSource for TombSource {
        fn num_rows(&self) -> usize {
            self.ds.len()
        }
        fn num_dims(&self) -> usize {
            self.ds.num_dims()
        }
        fn column_data(&self, dim: usize) -> ColumnData<'_> {
            ColumnData::Plain(self.ds.column(dim))
        }
        fn tombstones(&self) -> Option<&TombstoneSet> {
            Some(&self.t)
        }
    }

    #[test]
    fn tombstones_are_excluded_by_every_tier_and_path() {
        let ds = source();
        let mut t = TombstoneSet::new(ds.len());
        // A mix of deletions: word-aligned runs, scattered rows, a row
        // inside the exact range of the plan below.
        for row in (0..200).chain([255, 256, 300, 511, 512, 513, 850, 999]) {
            t.mark(row);
        }
        let live: Vec<usize> = t.live_rows();
        let tomb = TombSource { ds: ds.clone(), t };
        // Oracle: the same plan rows with deleted rows physically absent.
        let plan = ScanPlan::from_ranges([(0..300, false), (450..700, false), (800..1000, true)]);
        let plan_rows: Vec<usize> = (0..300)
            .chain(450..700)
            .chain(800..1000)
            .filter(|r| live.binary_search(r).is_ok())
            .collect();
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(1),
            Aggregation::Min(1),
            Aggregation::Max(1),
            Aggregation::Avg(1),
        ] {
            let q = Query::new(
                vec![
                    Predicate::range(0, 50, 950).unwrap(),
                    Predicate::range(2, 5, 95).unwrap(),
                ],
                agg,
            )
            .unwrap();
            // Exact ranges trust the plan, so the oracle applies predicates
            // only to the non-exact prefix rows.
            let oracle_rows: Vec<usize> = plan_rows
                .iter()
                .copied()
                .filter(|&r| r >= 800 || q.predicates().iter().all(|p| p.matches(ds.get(r, p.dim))))
                .collect();
            let no_pred = Query::new(vec![], agg).unwrap();
            let expected = no_pred.execute_full_scan(&ds.select_rows(&oracle_rows));
            let (scalar, scalar_counters) =
                execute_plan_tiered(&tomb, &q, &plan, KernelTier::Scalar);
            assert_eq!(scalar, expected, "{agg:?} scalar vs rebuilt oracle");
            assert_eq!(scalar_counters.matched, oracle_rows.len());
            for tier in KernelTier::ALL {
                let (res, counters) = execute_plan_tiered(&tomb, &q, &plan, tier);
                assert_eq!(res, expected, "{agg:?} via {tier:?}");
                assert_eq!(counters, scalar_counters, "{agg:?} counters via {tier:?}");
                let (par, par_counters) = execute_plan_parallel_tiered(&tomb, &q, &plan, 4, tier);
                assert_eq!(par, expected, "{agg:?} parallel via {tier:?}");
                assert_eq!(par_counters, scalar_counters, "{agg:?} parallel counters");
            }
        }
    }

    #[test]
    fn empty_tombstone_set_changes_nothing() {
        let ds = source();
        let tomb = TombSource {
            ds: ds.clone(),
            t: TombstoneSet::new(ds.len()),
        };
        let q = count(vec![Predicate::range(0, 100, 499).unwrap()]);
        let plan = ScanPlan::full(ds.len());
        let (plain, pc) = execute_plan(&ds, &q, &plan);
        let (with_t, tc) = execute_plan(&tomb, &q, &plan);
        assert_eq!(plain, with_t);
        assert_eq!(pc, tc);
    }

    #[test]
    fn tier_labels_are_stable() {
        let labels: Vec<&str> = KernelTier::ALL.iter().map(|t| t.label()).collect();
        assert_eq!(labels, vec!["scalar", "vector", "bitmap", "adaptive"]);
        assert_eq!(KernelTier::default(), KernelTier::Adaptive);
    }

    #[test]
    fn adaptive_first_block_probes_with_scalar() {
        // The probe block must be scalar: a vector probe's unconditional
        // full-block stores into a cold selection buffer is pure overhead on
        // sparse scans (the `BENCH_scan.json` sparse-SUM regression), while
        // the scalar loop is free there and one block is noise on dense
        // scans.
        let d = Density::default();
        for num_preds in 1..=4 {
            assert_eq!(d.choose(num_preds), BlockRepr::Scalar);
        }
        // After a dense observation the estimate takes over as before.
        let mut d = Density::default();
        d.observe(1024, 1000);
        assert_eq!(d.choose(1), BlockRepr::Bitmap);
        let mut d = Density::default();
        d.observe(1024, 10);
        assert_eq!(d.choose(1), BlockRepr::Scalar);
        let mut d = Density::default();
        d.observe(1024, 300);
        assert_eq!(d.choose(1), BlockRepr::Vector);
    }

    /// A scan source with per-block encoded columns plus a plain tail, for
    /// exercising the packed executor paths without the store crate.
    struct EncodedSource {
        cols: Vec<(Vec<EncodedBlock>, Vec<Value>)>,
        num_rows: usize,
        t: Option<TombstoneSet>,
    }

    impl EncodedSource {
        /// Encodes every full block of `ds`'s columns, leaving `tail_rows`
        /// rows plain. Rows already tombstoned in `t` are dead at encode
        /// time, so block live bounds reflect them.
        fn encode(ds: &Dataset, tail_rows: usize, t: Option<TombstoneSet>) -> Self {
            let opts = crate::encode::EncodeOptions::default();
            let encoded_rows = (ds.len() - tail_rows) / BLOCK_ROWS * BLOCK_ROWS;
            let cols = (0..ds.num_dims())
                .map(|d| {
                    let col = ds.column(d);
                    let blocks: Vec<EncodedBlock> = (0..encoded_rows / BLOCK_ROWS)
                        .map(|b| {
                            let start = b * BLOCK_ROWS;
                            EncodedBlock::encode(
                                &col[start..start + BLOCK_ROWS],
                                |i| t.as_ref().is_none_or(|t| !t.is_deleted(start + i)),
                                &opts,
                            )
                        })
                        .collect();
                    (blocks, col[encoded_rows..].to_vec())
                })
                .collect();
            Self {
                cols,
                num_rows: ds.len(),
                t,
            }
        }
    }

    impl ScanSource for EncodedSource {
        fn num_rows(&self) -> usize {
            self.num_rows
        }
        fn num_dims(&self) -> usize {
            self.cols.len()
        }
        fn column_data(&self, dim: usize) -> ColumnData<'_> {
            let (blocks, tail) = &self.cols[dim];
            ColumnData::Encoded { blocks, tail }
        }
        fn tombstones(&self) -> Option<&TombstoneSet> {
            self.t.as_ref()
        }
    }

    /// Columns spanning every encoding: dim0 FOR-compressible (12-bit
    /// domain), dim1 low-cardinality (dict), dim2 incompressible (plain
    /// fallback), dim3 a second FOR column for same-layout SUM fast paths.
    fn encodable_dataset(n: u64) -> Dataset {
        Dataset::from_columns(vec![
            (0..n).map(|v| v * 37 % 4096).collect(),
            (0..n).map(|v| (v * 13 % 23) * 1_000_000_007).collect(),
            (0..n)
                .map(|v| v.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .collect(),
            (0..n).map(|v| v * 91 % 4096).collect(),
        ])
        .unwrap()
    }

    #[test]
    fn encoded_source_matches_plain_dataset_across_tiers() {
        let n = 6 * BLOCK_ROWS as u64 + 700;
        let ds = encodable_dataset(n);
        // Mixed: 4 encoded blocks, then 2 full blocks + 700 rows plain tail.
        for tail in [700, 2 * BLOCK_ROWS + 700] {
            let src = EncodedSource::encode(&ds, tail, None);
            let plan = ScanPlan::from_ranges([
                (3..2_000, false),
                (2_000..2_500, true),
                (2_600..ds.len(), false),
            ]);
            for agg in [
                Aggregation::Count,
                Aggregation::Sum(3),
                Aggregation::Sum(2),
                Aggregation::Min(3),
                Aggregation::Max(2),
                Aggregation::Avg(0),
            ] {
                for preds in [
                    vec![Predicate::range(0, 1000, 3000).unwrap()],
                    vec![Predicate::range(1, 5 * 1_000_000_007, 14 * 1_000_000_007).unwrap()],
                    vec![Predicate::range(2, 0, u64::MAX / 2).unwrap()],
                    vec![
                        Predicate::range(0, 100, 3800).unwrap(),
                        Predicate::range(1, 2 * 1_000_000_007, 20 * 1_000_000_007).unwrap(),
                        Predicate::range(2, u64::MAX / 4, u64::MAX).unwrap(),
                    ],
                    // Out-of-domain bounds: every block classifies Skip /
                    // AllLive in turn.
                    vec![Predicate::range(0, 5000, 6000).unwrap()],
                    vec![Predicate::range(0, 0, 4100).unwrap()],
                ] {
                    let q = Query::new(preds.clone(), agg).unwrap();
                    let (expected, expected_counters) =
                        execute_plan_tiered(&ds, &q, &plan, KernelTier::Scalar);
                    for tier in KernelTier::ALL {
                        let (res, counters) = execute_plan_tiered(&src, &q, &plan, tier);
                        assert_eq!(res, expected, "tail={tail} {agg:?} {preds:?} via {tier:?}");
                        assert_eq!(counters, expected_counters, "counters via {tier:?}");
                        let (par, pc) = execute_plan_parallel_tiered(&src, &q, &plan, 4, tier);
                        assert_eq!(par, expected, "parallel tail={tail} {agg:?} via {tier:?}");
                        assert_eq!(pc, expected_counters, "parallel counters via {tier:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn encoded_source_respects_tombstones_in_every_tier() {
        let n = 5 * BLOCK_ROWS as u64 + 321;
        let ds = encodable_dataset(n);
        let mut t = TombstoneSet::new(ds.len());
        // Kill a whole block (its live bounds go None => Skip), the extreme
        // rows of another, scattered rows, and some tail rows.
        for row in BLOCK_ROWS..2 * BLOCK_ROWS {
            t.mark(row);
        }
        for row in (0..ds.len()).step_by(97) {
            t.mark(row);
        }
        for row in 5 * BLOCK_ROWS..5 * BLOCK_ROWS + 100 {
            t.mark(row);
        }
        let src = EncodedSource::encode(&ds, 321, Some(t.clone()));
        let tomb = TombSource { ds: ds.clone(), t };
        let plan = ScanPlan::from_ranges([(0..4_000, false), (4_000..ds.len(), false)]);
        for agg in [Aggregation::Count, Aggregation::Sum(3), Aggregation::Min(0)] {
            let q = Query::new(
                vec![
                    Predicate::range(0, 200, 3900).unwrap(),
                    Predicate::range(1, 1_000_000_007, 21 * 1_000_000_007).unwrap(),
                ],
                agg,
            )
            .unwrap();
            let (expected, expected_counters) =
                execute_plan_tiered(&tomb, &q, &plan, KernelTier::Scalar);
            for tier in KernelTier::ALL {
                let (res, counters) = execute_plan_tiered(&src, &q, &plan, tier);
                assert_eq!(res, expected, "{agg:?} via {tier:?}");
                assert_eq!(counters, expected_counters, "{agg:?} counters via {tier:?}");
                let (par, pc) = execute_plan_parallel_tiered(&src, &q, &plan, 4, tier);
                assert_eq!(par, expected, "{agg:?} parallel via {tier:?}");
                assert_eq!(pc, expected_counters, "{agg:?} parallel counters");
            }
        }
    }

    #[test]
    fn fully_dead_encoded_block_is_skipped_but_results_stay_oracle_equal() {
        // One block entirely tombstoned: the packed path classifies it Skip
        // without touching payload, and the scalar oracle (which ignores
        // metadata) must agree because liveness masks every row anyway.
        let n = 3 * BLOCK_ROWS as u64;
        let ds = encodable_dataset(n);
        let mut t = TombstoneSet::new(ds.len());
        for row in 0..BLOCK_ROWS {
            t.mark(row);
        }
        let src = EncodedSource::encode(&ds, 0, Some(t));
        let q = Query::new(
            vec![Predicate::range(0, 0, 4095).unwrap()],
            Aggregation::Sum(3),
        )
        .unwrap();
        let plan = ScanPlan::full(ds.len());
        let (expected, ec) = execute_plan_tiered(&src, &q, &plan, KernelTier::Scalar);
        for tier in KernelTier::ALL {
            let (res, counters) = execute_plan_tiered(&src, &q, &plan, tier);
            assert_eq!(res, expected, "via {tier:?}");
            assert_eq!(counters, ec, "counters via {tier:?}");
        }
    }

    #[test]
    fn encoded_exact_ranges_aggregate_densely() {
        let n = 4 * BLOCK_ROWS as u64;
        let ds = encodable_dataset(n);
        let src = EncodedSource::encode(&ds, 0, None);
        // Exact ranges deliberately misaligned to the block grid.
        let plan = ScanPlan::from_ranges([(100..1_500, true), (1_700..3_900, true)]);
        for agg in [
            Aggregation::Count,
            Aggregation::Sum(0),
            Aggregation::Sum(2),
            Aggregation::Min(1),
            Aggregation::Max(3),
            Aggregation::Avg(2),
        ] {
            let q = Query::new(vec![], agg).unwrap();
            let (expected, ec) = execute_plan_tiered(&ds, &q, &plan, KernelTier::Scalar);
            for tier in KernelTier::ALL {
                let (res, counters) = execute_plan_tiered(&src, &q, &plan, tier);
                assert_eq!(res, expected, "{agg:?} via {tier:?}");
                assert_eq!(counters, ec, "{agg:?} counters via {tier:?}");
            }
        }
    }
}
