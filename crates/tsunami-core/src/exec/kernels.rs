//! Branchless block kernels for predicate evaluation and aggregation.
//!
//! Everything in this module operates on one *block* of at most
//! [`BLOCK_ROWS`] contiguous rows of a single column, in
//! one of two selection representations:
//!
//! * a **selection vector** — `u32` in-block row offsets of the matching
//!   rows, materialized with unconditional stores and a cursor advanced by
//!   the 0/1 compare result (no data-dependent branch in the loop body);
//! * a **selection bitmap** — one bit per row, packed into `u64` words, where
//!   the inner loop builds 8-lane mask groups (`u64x8`-style manual
//!   unrolling) that the compiler turns into SIMD compares.
//!
//! The refine kernels narrow an existing selection by another predicate
//! (`retain` for vectors, `AND` for bitmaps), and the aggregate kernels
//! reduce a selection against the aggregation input column. Bitmap
//! aggregation is mask-native: `COUNT` is a popcount, `SUM`/`MIN`/`MAX` are
//! masked folds with a whole-word fast path for fully set words.
//!
//! All kernels are deliberately total functions of their inputs — given the
//! same block and predicates they produce the same selection regardless of
//! representation, which is what makes the executor's kernel tiers
//! bit-identical (see the [`exec`](super) module docs).

use super::BLOCK_ROWS;
use crate::dataset::Value;
use crate::query::Predicate;

/// Bits per bitmap word.
pub(crate) const WORD_BITS: usize = 64;
/// Bitmap words per block.
pub(crate) const BLOCK_WORDS: usize = BLOCK_ROWS / WORD_BITS;
/// Manual unroll width of the mask kernels.
const LANES: usize = 8;

/// Reusable per-thread scratch space for the block kernels: a full-block
/// selection vector and a full-block selection bitmap. Executors allocate one
/// per call (or per worker thread) and reuse it across every block they scan.
#[derive(Debug, Clone)]
pub struct BlockScratch {
    /// Selection-vector buffer; always `BLOCK_ROWS` long, kernels return the
    /// live prefix length.
    pub(crate) sel: Vec<u32>,
    /// Selection-bitmap buffer; always `BLOCK_WORDS` words.
    pub(crate) words: Vec<u64>,
}

impl BlockScratch {
    /// Allocates scratch space for one scanning thread.
    pub fn new() -> Self {
        Self {
            sel: vec![0; BLOCK_ROWS],
            words: vec![0; BLOCK_WORDS],
        }
    }
}

impl Default for BlockScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Match mask of 8 consecutive values as the low 8 bits of a `u64`.
#[inline(always)]
fn lane_mask8(v: &[Value], p: Predicate) -> u64 {
    debug_assert_eq!(v.len(), LANES);
    (p.matches(v[0]) as u64)
        | (p.matches(v[1]) as u64) << 1
        | (p.matches(v[2]) as u64) << 2
        | (p.matches(v[3]) as u64) << 3
        | (p.matches(v[4]) as u64) << 4
        | (p.matches(v[5]) as u64) << 5
        | (p.matches(v[6]) as u64) << 6
        | (p.matches(v[7]) as u64) << 7
}

/// Match mask of up to 64 values as one bitmap word (bit `i` = value `i`
/// matches). Built from 8-lane groups; the partial tail is handled scalar.
#[inline(always)]
fn word_mask(chunk: &[Value], p: Predicate) -> u64 {
    debug_assert!(chunk.len() <= WORD_BITS);
    let mut word = 0u64;
    let mut shift = 0u32;
    let mut lanes = chunk.chunks_exact(LANES);
    for group in &mut lanes {
        word |= lane_mask8(group, p) << shift;
        shift += LANES as u32;
    }
    for (i, &v) in lanes.remainder().iter().enumerate() {
        word |= (p.matches(v) as u64) << (shift + i as u32);
    }
    word
}

/// Evaluates the first predicate of a block into a selection bitmap.
/// Returns the OR of all words, so callers can skip further refinement and
/// aggregation when the selection is already empty.
pub(crate) fn mask_first(block: &[Value], p: Predicate, words: &mut [u64]) -> u64 {
    let mut any = 0u64;
    for (w, chunk) in block.chunks(WORD_BITS).enumerate() {
        words[w] = word_mask(chunk, p);
        any |= words[w];
    }
    any
}

/// Refines an existing selection bitmap by another predicate (`AND`).
/// Returns the OR of all words after refinement (see [`mask_first`]).
pub(crate) fn mask_refine(block: &[Value], p: Predicate, words: &mut [u64]) -> u64 {
    let mut any = 0u64;
    for (w, chunk) in block.chunks(WORD_BITS).enumerate() {
        words[w] &= word_mask(chunk, p);
        any |= words[w];
    }
    any
}

/// Evaluates the first predicate of a block into a selection vector via
/// branchless cursor stores. Returns the number of selected rows; `sel` must
/// be at least as long as the block.
pub(crate) fn select_first(block: &[Value], p: Predicate, sel: &mut [u32]) -> usize {
    debug_assert!(sel.len() >= block.len());
    let mut n = 0usize;
    let mut base = 0usize;
    let mut lanes = block.chunks_exact(LANES);
    for group in &mut lanes {
        // 8-wide unrolled: the store is unconditional, only the cursor moves.
        for (j, &v) in group.iter().enumerate() {
            sel[n] = (base + j) as u32;
            n += p.matches(v) as usize;
        }
        base += LANES;
    }
    for (j, &v) in lanes.remainder().iter().enumerate() {
        sel[n] = (base + j) as u32;
        n += p.matches(v) as usize;
    }
    n
}

/// Refines the first `n` entries of a selection vector by another predicate,
/// compacting in place with branchless cursor stores. Returns the new length.
pub(crate) fn select_refine(block: &[Value], p: Predicate, sel: &mut [u32], n: usize) -> usize {
    let mut out = 0usize;
    for k in 0..n {
        let i = sel[k];
        sel[out] = i;
        out += p.matches(block[i as usize]) as usize;
    }
    out
}

/// Number of selected rows in a bitmap (popcount).
pub(crate) fn mask_count(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

/// Masked fold for `SUM`/`AVG`: `(selected rows, sum of their values)`.
/// Fully set words take a straight-line whole-word reduction.
pub(crate) fn mask_sum(vals: &[Value], words: &[u64]) -> (u64, u128) {
    let mut n = 0u64;
    let mut sum = 0u128;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        if word == u64::MAX {
            sum += vals[base..base + WORD_BITS]
                .iter()
                .map(|&v| v as u128)
                .sum::<u128>();
            n += WORD_BITS as u64;
        } else {
            let mut m = word;
            while m != 0 {
                sum += vals[base + m.trailing_zeros() as usize] as u128;
                m &= m - 1;
            }
            n += word.count_ones() as u64;
        }
    }
    (n, sum)
}

/// Masked fold for `MIN`: `(selected rows, minimum of their values)`.
pub(crate) fn mask_min(vals: &[Value], words: &[u64]) -> (u64, Option<Value>) {
    mask_extreme(vals, words, Value::MAX, Value::min)
}

/// Masked fold for `MAX`: `(selected rows, maximum of their values)`.
pub(crate) fn mask_max(vals: &[Value], words: &[u64]) -> (u64, Option<Value>) {
    mask_extreme(vals, words, Value::MIN, Value::max)
}

#[inline(always)]
fn mask_extreme(
    vals: &[Value],
    words: &[u64],
    identity: Value,
    fold: fn(Value, Value) -> Value,
) -> (u64, Option<Value>) {
    let mut n = 0u64;
    let mut best = identity;
    for (w, &word) in words.iter().enumerate() {
        if word == 0 {
            continue;
        }
        let base = w * WORD_BITS;
        if word == u64::MAX {
            best = vals[base..base + WORD_BITS]
                .iter()
                .fold(best, |acc, &v| fold(acc, v));
            n += WORD_BITS as u64;
        } else {
            let mut m = word;
            while m != 0 {
                best = fold(best, vals[base + m.trailing_zeros() as usize]);
                m &= m - 1;
            }
            n += word.count_ones() as u64;
        }
    }
    (n, (n > 0).then_some(best))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(lo: Value, hi: Value) -> Predicate {
        Predicate::range(0, lo, hi).unwrap()
    }

    /// Reference selection: the plainly branchy filter.
    fn oracle(block: &[Value], p: Predicate) -> Vec<u32> {
        block
            .iter()
            .enumerate()
            .filter(|&(_, &v)| p.matches(v))
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn blocks() -> Vec<Vec<Value>> {
        // Full block, one word, partial word, partial lanes, empty.
        vec![
            (0..BLOCK_ROWS as u64).map(|v| v * 7 % 1000).collect(),
            (0..64u64).collect(),
            (0..100u64).map(|v| v * 3 % 37).collect(),
            (0..5u64).collect(),
            Vec::new(),
        ]
    }

    #[test]
    fn mask_and_select_agree_with_oracle_on_odd_block_sizes() {
        for block in blocks() {
            for p in [
                pred(0, 10),
                pred(3, 500),
                pred(2000, 3000),
                pred(0, u64::MAX),
            ] {
                let expected = oracle(&block, p);

                let mut sel = vec![0u32; BLOCK_ROWS];
                let n = select_first(&block, p, &mut sel);
                assert_eq!(&sel[..n], &expected[..], "select_first {p:?}");

                let mut words = [0u64; BLOCK_WORDS];
                mask_first(&block, p, &mut words[..block.len().div_ceil(WORD_BITS)]);
                let from_bits: Vec<u32> = (0..block.len() as u32)
                    .filter(|&i| words[i as usize / WORD_BITS] >> (i as usize % WORD_BITS) & 1 == 1)
                    .collect();
                assert_eq!(from_bits, expected, "mask_first {p:?}");
            }
        }
    }

    #[test]
    fn refine_matches_sequential_filters() {
        let block: Vec<Value> = (0..777u64).map(|v| v * 13 % 101).collect();
        let p1 = pred(10, 80);
        let p2 = pred(20, 60);
        let expected: Vec<u32> = block
            .iter()
            .enumerate()
            .filter(|&(_, &v)| p1.matches(v) && p2.matches(v))
            .map(|(i, _)| i as u32)
            .collect();

        let mut sel = vec![0u32; BLOCK_ROWS];
        let n = select_first(&block, p1, &mut sel);
        let n = select_refine(&block, p2, &mut sel, n);
        assert_eq!(&sel[..n], &expected[..]);

        let nw = block.len().div_ceil(WORD_BITS);
        let mut words = vec![0u64; nw];
        mask_first(&block, p1, &mut words);
        mask_refine(&block, p2, &mut words);
        assert_eq!(mask_count(&words), expected.len());
    }

    #[test]
    fn mask_aggregates_match_selected_folds() {
        let vals: Vec<Value> = (0..300u64).map(|v| v * 17 % 999).collect();
        for p in [pred(0, 0), pred(100, 700), pred(0, u64::MAX)] {
            let nw = vals.len().div_ceil(WORD_BITS);
            let mut words = vec![0u64; nw];
            mask_first(&vals, p, &mut words);
            let selected: Vec<Value> = vals.iter().copied().filter(|&v| p.matches(v)).collect();

            assert_eq!(mask_count(&words), selected.len());
            let (n, sum) = mask_sum(&vals, &words);
            assert_eq!(n as usize, selected.len());
            assert_eq!(sum, selected.iter().map(|&v| v as u128).sum::<u128>());
            let (_, lo) = mask_min(&vals, &words);
            assert_eq!(lo, selected.iter().copied().min());
            let (_, hi) = mask_max(&vals, &words);
            assert_eq!(hi, selected.iter().copied().max());
        }
    }

    #[test]
    fn dense_word_fast_path_is_exercised() {
        // 128 values all matching: both words fully set.
        let vals: Vec<Value> = (0..128u64).collect();
        let p = pred(0, u64::MAX);
        let mut words = vec![0u64; 2];
        mask_first(&vals, p, &mut words);
        assert_eq!(words, vec![u64::MAX, u64::MAX]);
        let (n, sum) = mask_sum(&vals, &words);
        assert_eq!((n, sum), (128, (0..128u128).sum()));
        assert_eq!(mask_min(&vals, &words), (128, Some(0)));
        assert_eq!(mask_max(&vals, &words), (128, Some(127)));
    }

    #[test]
    fn scratch_buffers_are_block_sized() {
        let s = BlockScratch::new();
        assert_eq!(s.sel.len(), BLOCK_ROWS);
        assert_eq!(s.words.len(), BLOCK_WORDS);
    }
}
